//! Max-min fair fluid bandwidth sharing.
//!
//! Every in-flight transfer (network message, shared-memory copy, reduction
//! stream) is a **flow**: it has remaining bytes, a per-flow rate ceiling,
//! and a set of capacity-limited resources it traverses (sender NIC,
//! receiver NIC, leaf uplinks, memory bus). Rates are assigned by classic
//! progressive filling: repeatedly find the most constrained bottleneck
//! (either a resource shared by many unfrozen flows or a flow's own cap),
//! freeze the affected flows at that fair share, subtract, and continue.
//!
//! This is what makes the paper's Figure 1 *emerge* rather than be scripted:
//! e.g. on the Omni-Path model one large flow already reaches `node_bw`, so
//! adding flows just splits the same capacity (Zone C), while on the IB
//! model each flow is capped well below `node_bw` and concurrency adds real
//! throughput.

use crate::time::SimTime;
use std::collections::{HashMap, HashSet};

/// Identifies a capacity-limited resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub u32);

/// Identifies an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// Bytes below which a flow counts as drained (absorbs fp rounding).
const EPS_BYTES: f64 = 1e-6;

#[derive(Debug, Clone)]
struct FlowState<T> {
    claims: Vec<ResourceId>,
    cap: f64,
    remaining: f64,
    rate: f64,
    token: T,
}

/// Per-resource occupancy accumulators (see
/// [`FluidSystem::enable_utilization`]).
#[derive(Debug, Clone, Copy, Default)]
struct UtilState {
    /// ∫ rate dt: total bytes served by the resource.
    busy_bytes: f64,
    /// Peak instantaneous load as a fraction of capacity.
    peak_frac: f64,
}

/// The fluid system: resources with capacities and the active flows over
/// them. Generic over a `token` payload used by the engine to identify what
/// a completed flow was carrying.
///
/// Recomputation is **component-incremental**: adding or removing a flow
/// marks its resources dirty, and [`FluidSystem::recompute`] re-fills only
/// the connected component of flows reachable from dirty resources (flows
/// on other nodes' memory buses, say, are untouched). Max-min fairness is
/// decomposable across components, so this is exact, and it is what keeps
/// 10,000-rank simulations tractable.
#[derive(Debug)]
pub struct FluidSystem<T> {
    caps: Vec<f64>,
    flows: HashMap<u64, FlowState<T>>,
    res_flows: Vec<HashSet<u64>>,
    dirty_resources: Vec<u32>,
    next_flow: u64,
    last_update: SimTime,
    dirty: bool,
    // Stamped scratch arrays: O(1) reset between recomputes.
    scratch_residual: Vec<f64>,
    scratch_count: Vec<u32>,
    scratch_stamp: Vec<u64>,
    stamp: u64,
    // Optional per-resource occupancy accounting (profiling runs only;
    // `None` costs nothing on the hot path).
    util: Option<Vec<UtilState>>,
    util_scratch: Vec<f64>,
}

impl<T> FluidSystem<T> {
    /// New empty system at time zero.
    pub fn new() -> Self {
        FluidSystem {
            caps: Vec::new(),
            flows: HashMap::new(),
            res_flows: Vec::new(),
            dirty_resources: Vec::new(),
            next_flow: 0,
            last_update: SimTime::ZERO,
            dirty: false,
            scratch_residual: Vec::new(),
            scratch_count: Vec::new(),
            scratch_stamp: Vec::new(),
            stamp: 0,
            util: None,
            util_scratch: Vec::new(),
        }
    }

    /// Turn on per-resource occupancy accounting: from now on every
    /// [`FluidSystem::advance_to`] integrates each resource's served bytes
    /// and tracks its peak load fraction. Used by profiling runs; leaves
    /// the non-profiled hot path untouched.
    pub fn enable_utilization(&mut self) {
        if self.util.is_none() {
            self.util = Some(vec![UtilState::default(); self.caps.len()]);
        }
    }

    /// Occupancy of `r` since [`FluidSystem::enable_utilization`]:
    /// `(bytes_served, peak_load_fraction)`. `None` unless enabled.
    pub fn utilization_of(&self, r: ResourceId) -> Option<(f64, f64)> {
        let u = self.util.as_ref()?.get(r.0 as usize)?;
        Some((u.busy_bytes, u.peak_frac))
    }

    /// Register a resource of `capacity` bytes/second.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        assert!(capacity > 0.0, "resource capacity must be positive");
        self.caps.push(capacity);
        self.res_flows.push(HashSet::new());
        self.scratch_residual.push(0.0);
        self.scratch_count.push(0);
        self.scratch_stamp.push(0);
        if let Some(u) = &mut self.util {
            u.push(UtilState::default());
        }
        ResourceId(self.caps.len() as u32 - 1)
    }

    /// Change a resource's capacity in place — the fault-injection hook
    /// for link degradation and restoration. Unlike [`FluidSystem::add_resource`],
    /// a capacity of `0.0` is allowed: flows over a dead resource are
    /// *starved* (rate 0, skipped by [`FluidSystem::next_completion`])
    /// until the capacity is restored. Marks the resource dirty; call
    /// [`FluidSystem::recompute`] before the next rate query.
    pub fn set_capacity(&mut self, r: ResourceId, capacity: f64) {
        assert!(
            capacity >= 0.0 && capacity.is_finite(),
            "capacity must be finite and >= 0"
        );
        let ri = r.0 as usize;
        assert!(ri < self.caps.len(), "unknown resource {r:?}");
        if self.caps[ri] != capacity {
            self.caps[ri] = capacity;
            self.dirty_resources.push(r.0);
            self.dirty = true;
        }
    }

    /// Current capacity of a resource.
    pub fn capacity_of(&self, r: ResourceId) -> f64 {
        self.caps[r.0 as usize]
    }

    /// True when `r` currently carries at least one flow (used to tell a
    /// genuine deadlock from flows starved by a downed link).
    pub fn resource_has_flows(&self, r: ResourceId) -> bool {
        !self.res_flows[r.0 as usize].is_empty()
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// True if rates need recomputation since the last change.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Add a flow of `bytes` over `claims` with per-flow ceiling `cap`.
    /// The system becomes dirty; call [`FluidSystem::recompute`].
    pub fn add_flow(&mut self, claims: Vec<ResourceId>, cap: f64, bytes: f64, token: T) -> FlowId {
        assert!(cap > 0.0, "flow cap must be positive");
        assert!(bytes >= 0.0, "flow bytes must be non-negative");
        for c in &claims {
            assert!((c.0 as usize) < self.caps.len(), "unknown resource {c:?}");
        }
        let id = self.next_flow;
        self.next_flow += 1;
        for c in &claims {
            self.res_flows[c.0 as usize].insert(id);
            self.dirty_resources.push(c.0);
        }
        self.flows.insert(
            id,
            FlowState {
                claims,
                cap,
                remaining: bytes,
                rate: 0.0,
                token,
            },
        );
        self.dirty = true;
        FlowId(id)
    }

    /// Remove a flow (normally after completion), returning its token.
    pub fn remove_flow(&mut self, id: FlowId) -> Option<T> {
        let f = self.flows.remove(&id.0)?;
        for c in &f.claims {
            self.res_flows[c.0 as usize].remove(&id.0);
            self.dirty_resources.push(c.0);
        }
        self.dirty = true;
        Some(f.token)
    }

    /// Advance virtual time: drain every flow by `rate * dt`.
    pub fn advance_to(&mut self, now: SimTime) {
        let dt = now - self.last_update;
        debug_assert!(dt >= -1e-12, "time went backwards: {dt}");
        if dt > 0.0 {
            if self.util.is_some() {
                self.account_utilization(dt);
            }
            for f in self.flows.values_mut() {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.last_update = now;
    }

    /// Integrate per-resource load over an elapsed interval of `dt`
    /// seconds at the current (constant) rates.
    fn account_utilization(&mut self, dt: f64) {
        let mut loads = std::mem::take(&mut self.util_scratch);
        loads.clear();
        loads.resize(self.caps.len(), 0.0);
        // HashMap iteration order is seeded per process; accumulate in
        // flow-id order so the floating-point sums (and the peak_util they
        // feed) are bit-identical across runs.
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let f = &self.flows[&id];
            if f.rate > 0.0 {
                for c in &f.claims {
                    loads[c.0 as usize] += f.rate;
                }
            }
        }
        let util = self.util.as_mut().expect("checked by caller");
        for (ri, &load) in loads.iter().enumerate() {
            if load > 0.0 {
                let u = &mut util[ri];
                u.busy_bytes += load * dt;
                let frac = if self.caps[ri] > 0.0 {
                    load / self.caps[ri]
                } else {
                    0.0
                };
                u.peak_frac = u.peak_frac.max(frac);
            }
        }
        self.util_scratch = loads;
    }

    /// Recompute max-min fair rates (progressive filling with per-flow
    /// caps) over the connected component(s) touched since the last
    /// recompute. Clears the dirty bit.
    pub fn recompute(&mut self) {
        self.dirty = false;
        if self.flows.is_empty() {
            self.dirty_resources.clear();
            return;
        }
        // Gather the affected component: BFS from dirty resources over the
        // resource↔flow bipartite graph. `scratch_stamp` doubles as the
        // visited marker (a fresh stamp per recompute).
        self.stamp += 1;
        let bfs_stamp = self.stamp;
        let mut flow_seen: HashSet<u64> = HashSet::new();
        let mut res_queue: Vec<u32> = std::mem::take(&mut self.dirty_resources);
        let mut affected: Vec<u64> = Vec::new();
        while let Some(r) = res_queue.pop() {
            let ri = r as usize;
            if self.scratch_stamp[ri] == bfs_stamp {
                continue;
            }
            self.scratch_stamp[ri] = bfs_stamp;
            for &fid in &self.res_flows[ri] {
                if flow_seen.insert(fid) {
                    affected.push(fid);
                    for c in &self.flows[&fid].claims {
                        if self.scratch_stamp[c.0 as usize] != bfs_stamp {
                            res_queue.push(c.0);
                        }
                    }
                }
            }
        }
        if affected.is_empty() {
            return;
        }
        // Deterministic order.
        affected.sort_unstable();
        self.fill_component(&affected);
    }

    /// Progressive filling restricted to one component (the flows share no
    /// resources with any flow outside it).
    fn fill_component(&mut self, component: &[u64]) {
        #[cfg(feature = "fluid-stats")]
        {
            use std::sync::atomic::{AtomicU64, Ordering};
            static CALLS: AtomicU64 = AtomicU64::new(0);
            static WORK: AtomicU64 = AtomicU64::new(0);
            let c = CALLS.fetch_add(1, Ordering::Relaxed) + 1;
            let w =
                WORK.fetch_add(component.len() as u64, Ordering::Relaxed) + component.len() as u64;
            if c.is_multiple_of(10_000) {
                eprintln!("fill_component calls={c} total_flows_filled={w}");
            }
        }
        // Local working copies to avoid repeated hashing in the hot loop.
        struct Work {
            id: u64,
            cap: f64,
            claims: Vec<u32>,
        }
        let mut work: Vec<Work> = component
            .iter()
            .map(|&id| {
                let f = &self.flows[&id];
                Work {
                    id,
                    cap: f.cap,
                    claims: f.claims.iter().map(|c| c.0).collect(),
                }
            })
            .collect();
        // Stamped scratch reset: only the component's resources are touched.
        self.stamp += 1;
        let fill_stamp = self.stamp;
        for w in &work {
            for &r in &w.claims {
                let ri = r as usize;
                if self.scratch_stamp[ri] != fill_stamp {
                    self.scratch_stamp[ri] = fill_stamp;
                    self.scratch_residual[ri] = self.caps[ri];
                    self.scratch_count[ri] = 0;
                }
                self.scratch_count[ri] += 1;
            }
        }
        let mut cands: Vec<f64> = vec![0.0; work.len()];
        while !work.is_empty() {
            let mut min_share = f64::INFINITY;
            for (w, cand) in work.iter().zip(cands.iter_mut()) {
                let mut share = w.cap;
                for &r in &w.claims {
                    let ri = r as usize;
                    let n = self.scratch_count[ri];
                    if n > 0 {
                        share = share.min(self.scratch_residual[ri] / n as f64);
                    }
                }
                *cand = share;
                min_share = min_share.min(share);
            }
            debug_assert!(min_share.is_finite() && min_share >= 0.0);
            let mut still = Vec::with_capacity(work.len());
            let mut still_c = Vec::with_capacity(work.len());
            let mut froze_any = false;
            for (w, cand) in work.drain(..).zip(cands.drain(..)) {
                if cand <= min_share * (1.0 + 1e-12) {
                    for &r in &w.claims {
                        let ri = r as usize;
                        self.scratch_residual[ri] =
                            (self.scratch_residual[ri] - min_share).max(0.0);
                        self.scratch_count[ri] -= 1;
                    }
                    // invariant: `work` was built from `self.flows` at the
                    // top of this call and nothing removes flows mid-fill.
                    self.flows.get_mut(&w.id).expect("live flow").rate = min_share;
                    froze_any = true;
                } else {
                    still.push(w);
                    still_c.push(0.0);
                }
            }
            debug_assert!(froze_any, "progressive filling made no progress");
            work = still;
            cands = still_c;
        }
    }

    /// The earliest predicted completion among active flows, given current
    /// rates. Returns `(time, flow)`; zero-byte flows complete "now".
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        debug_assert!(!self.dirty, "call recompute() before next_completion()");
        let mut best: Option<(SimTime, FlowId)> = None;
        for (&id, f) in &self.flows {
            let t = if f.remaining <= EPS_BYTES {
                self.last_update
            } else if f.rate > 0.0 {
                self.last_update.after(f.remaining / f.rate)
            } else {
                continue; // starved flow: cannot finish until rates change
            };
            match best {
                Some((bt, bid)) if (bt, bid) <= (t, FlowId(id)) => {}
                _ => best = Some((t, FlowId(id))),
            }
        }
        best
    }

    /// All flows that have fully drained as of the last `advance_to`.
    pub fn drained_flows(&self) -> Vec<FlowId> {
        let mut v: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= EPS_BYTES)
            .map(|(&id, _)| FlowId(id))
            .collect();
        v.sort_unstable();
        v
    }

    /// Current rate of a flow (test/diagnostic).
    pub fn rate_of(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id.0).map(|f| f.rate)
    }

    /// Aggregate current rate over all flows (test/diagnostic).
    pub fn total_rate(&self) -> f64 {
        self.flows.values().map(|f| f.rate).sum()
    }
}

impl<T> Default for FluidSystem<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0), "{a} != {b}");
    }

    #[test]
    fn single_flow_gets_min_of_cap_and_resource() {
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        let f = s.add_flow(vec![r], 3.0, 100.0, ());
        s.recompute();
        approx(s.rate_of(f).unwrap(), 3.0);

        let f2 = s.add_flow(vec![r], 30.0, 100.0, ());
        s.recompute();
        // f frozen at cap 3, f2 takes min(30, (10-? )) — progressive fill:
        // equal share would be 5 each; f capped at 3, leftover 7 to f2.
        approx(s.rate_of(f).unwrap(), 3.0);
        approx(s.rate_of(f2).unwrap(), 7.0);
    }

    #[test]
    fn equal_flows_share_equally() {
        let mut s: FluidSystem<u32> = FluidSystem::new();
        let r = s.add_resource(12.0);
        let flows: Vec<FlowId> = (0..4)
            .map(|i| s.add_flow(vec![r], 100.0, 50.0, i))
            .collect();
        s.recompute();
        for f in &flows {
            approx(s.rate_of(*f).unwrap(), 3.0);
        }
        approx(s.total_rate(), 12.0);
    }

    #[test]
    fn two_resource_bottleneck() {
        // Flow A uses r1 only; flows B, C use r1 and r2. r2 is tight.
        let mut s: FluidSystem<&str> = FluidSystem::new();
        let r1 = s.add_resource(30.0);
        let r2 = s.add_resource(4.0);
        let a = s.add_flow(vec![r1], 100.0, 1.0, "a");
        let b = s.add_flow(vec![r1, r2], 100.0, 1.0, "b");
        let c = s.add_flow(vec![r1, r2], 100.0, 1.0, "c");
        s.recompute();
        // b, c limited by r2: 2 each. a gets the rest of r1: 30-4=26.
        approx(s.rate_of(b).unwrap(), 2.0);
        approx(s.rate_of(c).unwrap(), 2.0);
        approx(s.rate_of(a).unwrap(), 26.0);
    }

    #[test]
    fn advance_drains_and_completes() {
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        let f = s.add_flow(vec![r], 10.0, 100.0, ());
        s.recompute();
        let (t, id) = s.next_completion().unwrap();
        assert_eq!(id, f);
        approx(t.seconds(), 10.0);
        s.advance_to(SimTime::new(10.0));
        assert_eq!(s.drained_flows(), vec![f]);
        s.remove_flow(f).unwrap();
        assert_eq!(s.active_flows(), 0);
    }

    #[test]
    fn rates_rebalance_after_removal() {
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        let f1 = s.add_flow(vec![r], 100.0, 100.0, ());
        let f2 = s.add_flow(vec![r], 100.0, 100.0, ());
        s.recompute();
        approx(s.rate_of(f1).unwrap(), 5.0);
        s.advance_to(SimTime::new(2.0)); // both at 90 remaining
        s.remove_flow(f2);
        assert!(s.is_dirty());
        s.recompute();
        approx(s.rate_of(f1).unwrap(), 10.0);
        let (t, _) = s.next_completion().unwrap();
        approx(t.seconds(), 2.0 + 9.0);
    }

    #[test]
    fn utilization_integrates_bytes_and_peak() {
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        s.enable_utilization();
        // Two flows of 10 bytes each: combined rate 10 (peak 100%).
        s.add_flow(vec![r], 100.0, 10.0, ());
        s.add_flow(vec![r], 100.0, 10.0, ());
        s.recompute();
        s.advance_to(SimTime::new(2.0)); // both drained
        let (bytes, peak) = s.utilization_of(r).unwrap();
        approx(bytes, 20.0);
        approx(peak, 1.0);
        // Disabled systems report None.
        let s2: FluidSystem<()> = FluidSystem::new();
        assert!(s2.utilization_of(r).is_none());
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        let f = s.add_flow(vec![r], 1.0, 0.0, ());
        s.recompute();
        let (t, id) = s.next_completion().unwrap();
        assert_eq!(id, f);
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn max_min_is_work_conserving_under_caps() {
        // 3 flows capped at 2 on a resource of 10: total 6 (caps bind).
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        for _ in 0..3 {
            s.add_flow(vec![r], 2.0, 1.0, ());
        }
        s.recompute();
        approx(s.total_rate(), 6.0);
        // A 4th uncapped flow soaks the rest.
        s.add_flow(vec![r], 100.0, 1.0, ());
        s.recompute();
        approx(s.total_rate(), 10.0);
    }

    #[test]
    fn set_capacity_degrades_and_restores() {
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        let f = s.add_flow(vec![r], 100.0, 100.0, ());
        s.recompute();
        approx(s.rate_of(f).unwrap(), 10.0);
        // Degrade to half.
        s.set_capacity(r, 5.0);
        assert!(s.is_dirty());
        s.recompute();
        approx(s.rate_of(f).unwrap(), 5.0);
        // Sever: the flow starves and next_completion has nothing to offer.
        s.set_capacity(r, 0.0);
        s.recompute();
        approx(s.rate_of(f).unwrap(), 0.0);
        assert!(s.next_completion().is_none());
        assert!(s.resource_has_flows(r));
        assert_eq!(s.capacity_of(r), 0.0);
        // Restore: completion is predicted again.
        s.set_capacity(r, 10.0);
        s.recompute();
        approx(s.rate_of(f).unwrap(), 10.0);
        assert!(s.next_completion().is_some());
        // Setting the same capacity again does not dirty the system.
        s.set_capacity(r, 10.0);
        assert!(!s.is_dirty());
    }

    #[test]
    fn zero_capacity_starves_only_dead_component_flows() {
        let mut s: FluidSystem<u32> = FluidSystem::new();
        let dead = s.add_resource(10.0);
        let live = s.add_resource(10.0);
        let fd = s.add_flow(vec![dead], 100.0, 1.0, 0);
        let fl = s.add_flow(vec![live], 100.0, 1.0, 1);
        s.set_capacity(dead, 0.0);
        s.recompute();
        approx(s.rate_of(fd).unwrap(), 0.0);
        approx(s.rate_of(fl).unwrap(), 10.0);
    }

    #[test]
    fn deterministic_across_insertion_orders() {
        let build = |order: &[usize]| {
            let mut s: FluidSystem<usize> = FluidSystem::new();
            let r1 = s.add_resource(10.0);
            let r2 = s.add_resource(6.0);
            let specs = [(vec![r1], 4.0), (vec![r1, r2], 9.0), (vec![r2], 9.0)];
            // Insert all flows; ids follow insertion order but rates must
            // not depend on it.
            let mut rates = vec![0.0; 3];
            let mut ids = [FlowId(0); 3];
            for &i in order {
                ids[i] = s.add_flow(specs[i].0.clone(), specs[i].1, 1.0, i);
            }
            s.recompute();
            for i in 0..3 {
                rates[i] = s.rate_of(ids[i]).unwrap();
            }
            rates
        };
        let a = build(&[0, 1, 2]);
        let b = build(&[2, 0, 1]);
        for (x, y) in a.iter().zip(b.iter()) {
            approx(*x, *y);
        }
    }

    /// Regression: removing a flow mid-transfer must free its bandwidth
    /// share immediately — no residual reservation — and the occupancy
    /// accounting must replay bit-identically.
    #[test]
    fn cancelled_flow_frees_its_share_mid_transfer() {
        let run = |cancel: bool| {
            let mut s: FluidSystem<u32> = FluidSystem::new();
            s.enable_utilization();
            let r = s.add_resource(10.0);
            let a = s.add_flow(vec![r], 100.0, 100.0, 0);
            let b = s.add_flow(vec![r], 100.0, 100.0, 1);
            s.recompute(); // 5.0 each
            if cancel {
                s.advance_to(SimTime::new(4.0)); // 20 bytes drained each
                s.remove_flow(b);
                s.recompute();
            }
            let (t, fid) = s.next_completion().unwrap();
            assert_eq!(fid, a);
            s.advance_to(t);
            (t.seconds(), s.utilization_of(r).unwrap())
        };
        let (t_cancel, (bytes_cancel, peak_cancel)) = run(true);
        // Survivor sped up to the full resource: 20B at 5.0, 80B at 10.0.
        approx(t_cancel, 4.0 + 8.0);
        approx(bytes_cancel, 40.0 + 80.0);
        approx(peak_cancel, 1.0);
        let (t_both, (bytes_both, _)) = run(false);
        approx(t_both, 20.0);
        approx(bytes_both, 200.0);
        // Bit-deterministic across repeats, with and without the cancel.
        let again = run(true);
        assert_eq!(t_cancel.to_bits(), again.0.to_bits());
        assert_eq!(bytes_cancel.to_bits(), again.1 .0.to_bits());
    }

    use proptest::prelude::*;

    proptest! {
        /// Max-min invariants: no resource over capacity, no flow over its
        /// cap, and every flow is bottlenecked somewhere (work conserving).
        #[test]
        fn prop_maxmin_invariants(
            caps in proptest::collection::vec(1.0f64..100.0, 1..4),
            flows in proptest::collection::vec(
                (proptest::collection::vec(0usize..4, 1..4), 0.5f64..50.0),
                1..12,
            ),
        ) {
            let mut s: FluidSystem<usize> = FluidSystem::new();
            let rids: Vec<ResourceId> = caps.iter().map(|&c| s.add_resource(c)).collect();
            let mut ids = Vec::new();
            for (i, (claims, cap)) in flows.iter().enumerate() {
                let mut cl: Vec<ResourceId> = claims
                    .iter()
                    .map(|&c| rids[c % rids.len()])
                    .collect();
                cl.sort_by_key(|r| r.0);
                cl.dedup();
                ids.push(s.add_flow(cl, *cap, 1.0, i));
            }
            s.recompute();

            // 1. Resource capacities respected.
            for (ri, &cap) in rids.iter().zip(caps.iter()) {
                let used: f64 = flows
                    .iter()
                    .enumerate()
                    .filter(|(i, (claims, _))| {
                        claims.iter().any(|&c| rids[c % rids.len()] == *ri)
                            && s.rate_of(ids[*i]).is_some()
                    })
                    .map(|(i, _)| s.rate_of(ids[i]).unwrap())
                    .sum();
                prop_assert!(used <= cap * (1.0 + 1e-6), "resource over capacity: {used} > {cap}");
            }
            // 2. Flow caps respected; rates positive.
            for (i, (_, cap)) in flows.iter().enumerate() {
                let r = s.rate_of(ids[i]).unwrap();
                prop_assert!(r <= cap * (1.0 + 1e-6));
                prop_assert!(r > 0.0);
            }
        }
    }
}
