//! Max-min fair fluid bandwidth sharing.
//!
//! Every in-flight transfer (network message, shared-memory copy, reduction
//! stream) is a **flow**: it has remaining bytes, a per-flow rate ceiling,
//! and a set of capacity-limited resources it traverses (sender NIC,
//! receiver NIC, leaf uplinks, memory bus). Rates are assigned by classic
//! progressive filling: repeatedly find the most constrained bottleneck
//! (either a resource shared by many unfrozen flows or a flow's own cap),
//! freeze the affected flows at that fair share, subtract, and continue.
//!
//! This is what makes the paper's Figure 1 *emerge* rather than be scripted:
//! e.g. on the Omni-Path model one large flow already reaches `node_bw`, so
//! adding flows just splits the same capacity (Zone C), while on the IB
//! model each flow is capped well below `node_bw` and concurrency adds real
//! throughput.
//!
//! ## Incremental water-filling (DESIGN.md §11)
//!
//! Flow arrival/teardown marks only the touched resources dirty;
//! [`FluidSystem::recompute`] walks the resource↔flow bipartite graph from
//! the dirty set and re-levels just that bottleneck-connected region. All
//! state lives in slot-indexed slabs ([`FluidSystem`]'s `flows` +
//! per-resource flow index `res_flows`), so the walk and the fill do no
//! hashing — visited marks are generation stamps, membership removal is an
//! O(1) swap-remove via per-claim back-pointers. When the dirty set grows
//! past [`FULL_SOLVE_THRESHOLD`] of all resources the incremental walk
//! stops paying for itself and [`FluidSystem::recompute_full`] re-levels
//! every component from scratch instead. Both paths run the identical
//! per-component progressive fill in flow-id order, so they agree to the
//! bit — `prop_incremental_matches_scratch_to_0_ulp` holds them to 0 ULP.

use crate::time::SimTime;
use std::collections::HashMap;

/// Identifies a capacity-limited resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub u32);

/// Identifies an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// Bytes below which a flow counts as drained (absorbs fp rounding).
const EPS_BYTES: f64 = 1e-6;

/// When more than this fraction of all resources is dirty, the incremental
/// walk would visit most of the graph anyway — recompute from scratch.
const FULL_SOLVE_THRESHOLD: f64 = 0.5;

#[derive(Debug, Clone)]
struct FlowState<T> {
    /// Monotonic public identity (never reused, unlike the slot).
    id: u64,
    claims: Vec<ResourceId>,
    /// `claim_pos[k]` = this flow's index within `res_flows[claims[k]]`.
    claim_pos: Vec<u32>,
    cap: f64,
    remaining: f64,
    rate: f64,
    token: T,
}

/// Per-resource occupancy accumulators (see
/// [`FluidSystem::enable_utilization`]).
#[derive(Debug, Clone, Copy, Default)]
struct UtilState {
    /// ∫ rate dt: total bytes served by the resource.
    busy_bytes: f64,
    /// Peak instantaneous load as a fraction of capacity.
    peak_frac: f64,
}

/// The fluid system: resources with capacities and the active flows over
/// them. Generic over a `token` payload used by the engine to identify what
/// a completed flow was carrying.
///
/// Recomputation is **component-incremental**: adding or removing a flow
/// marks its resources dirty, and [`FluidSystem::recompute`] re-fills only
/// the connected component of flows reachable from dirty resources (flows
/// on other nodes' memory buses, say, are untouched). Max-min fairness is
/// decomposable across components, so this is exact, and it is what keeps
/// 10,000-rank simulations tractable.
#[derive(Debug)]
pub struct FluidSystem<T> {
    caps: Vec<f64>,
    /// Slot-indexed flow slab; freed slots go to `free_slots` for reuse.
    flows: Vec<Option<FlowState<T>>>,
    free_slots: Vec<u32>,
    /// Public-id → slot (only consulted at the FlowId-keyed API edge:
    /// add/remove/rate_of; every hot loop walks the slab directly).
    slot_of: HashMap<u64, u32>,
    live: usize,
    /// Per-resource flow index: the slots of the flows claiming each
    /// resource, as `(slot, claim_index)` so removal is one swap_remove
    /// plus a back-pointer fix.
    res_flows: Vec<Vec<(u32, u32)>>,
    dirty_resources: Vec<u32>,
    next_flow: u64,
    last_update: SimTime,
    dirty: bool,
    // Stamped scratch arrays: O(1) reset between recomputes.
    scratch_residual: Vec<f64>,
    scratch_count: Vec<u32>,
    scratch_stamp: Vec<u64>,
    flow_stamp: Vec<u64>,
    stamp: u64,
    // Optional per-resource occupancy accounting (profiling runs only;
    // `None` costs nothing on the hot path).
    util: Option<Vec<UtilState>>,
    util_scratch: Vec<f64>,
}

impl<T> FluidSystem<T> {
    /// New empty system at time zero.
    pub fn new() -> Self {
        FluidSystem {
            caps: Vec::new(),
            flows: Vec::new(),
            free_slots: Vec::new(),
            slot_of: HashMap::new(),
            live: 0,
            res_flows: Vec::new(),
            dirty_resources: Vec::new(),
            next_flow: 0,
            last_update: SimTime::ZERO,
            dirty: false,
            scratch_residual: Vec::new(),
            scratch_count: Vec::new(),
            scratch_stamp: Vec::new(),
            flow_stamp: Vec::new(),
            stamp: 0,
            util: None,
            util_scratch: Vec::new(),
        }
    }

    /// Turn on per-resource occupancy accounting: from now on every
    /// [`FluidSystem::advance_to`] integrates each resource's served bytes
    /// and tracks its peak load fraction. Used by profiling runs; leaves
    /// the non-profiled hot path untouched.
    pub fn enable_utilization(&mut self) {
        if self.util.is_none() {
            self.util = Some(vec![UtilState::default(); self.caps.len()]);
        }
    }

    /// Occupancy of `r` since [`FluidSystem::enable_utilization`]:
    /// `(bytes_served, peak_load_fraction)`. `None` unless enabled.
    pub fn utilization_of(&self, r: ResourceId) -> Option<(f64, f64)> {
        let u = self.util.as_ref()?.get(r.0 as usize)?;
        Some((u.busy_bytes, u.peak_frac))
    }

    /// Register a resource of `capacity` bytes/second.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        assert!(capacity > 0.0, "resource capacity must be positive");
        self.caps.push(capacity);
        self.res_flows.push(Vec::new());
        self.scratch_residual.push(0.0);
        self.scratch_count.push(0);
        self.scratch_stamp.push(0);
        if let Some(u) = &mut self.util {
            u.push(UtilState::default());
        }
        ResourceId(self.caps.len() as u32 - 1)
    }

    /// Change a resource's capacity in place — the fault-injection hook
    /// for link degradation and restoration. Unlike [`FluidSystem::add_resource`],
    /// a capacity of `0.0` is allowed: flows over a dead resource are
    /// *starved* (rate 0, skipped by [`FluidSystem::next_completion`])
    /// until the capacity is restored. Marks the resource dirty; call
    /// [`FluidSystem::recompute`] before the next rate query.
    pub fn set_capacity(&mut self, r: ResourceId, capacity: f64) {
        assert!(
            capacity >= 0.0 && capacity.is_finite(),
            "capacity must be finite and >= 0"
        );
        let ri = r.0 as usize;
        assert!(ri < self.caps.len(), "unknown resource {r:?}");
        if self.caps[ri] != capacity {
            self.caps[ri] = capacity;
            self.dirty_resources.push(r.0);
            self.dirty = true;
        }
    }

    /// Current capacity of a resource.
    pub fn capacity_of(&self, r: ResourceId) -> f64 {
        self.caps[r.0 as usize]
    }

    /// True when `r` currently carries at least one flow (used to tell a
    /// genuine deadlock from flows starved by a downed link).
    pub fn resource_has_flows(&self, r: ResourceId) -> bool {
        !self.res_flows[r.0 as usize].is_empty()
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.live
    }

    /// True if rates need recomputation since the last change.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Add a flow of `bytes` over `claims` with per-flow ceiling `cap`.
    /// The system becomes dirty; call [`FluidSystem::recompute`].
    pub fn add_flow(&mut self, claims: Vec<ResourceId>, cap: f64, bytes: f64, token: T) -> FlowId {
        assert!(cap > 0.0, "flow cap must be positive");
        assert!(bytes >= 0.0, "flow bytes must be non-negative");
        for (k, c) in claims.iter().enumerate() {
            assert!((c.0 as usize) < self.caps.len(), "unknown resource {c:?}");
            debug_assert!(
                !claims[..k].contains(c),
                "duplicate claim {c:?}: the per-resource flow index stores one entry per flow"
            );
        }
        let id = self.next_flow;
        self.next_flow += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.flows.push(None);
                self.flow_stamp.push(0);
                self.flows.len() as u32 - 1
            }
        };
        let mut claim_pos = Vec::with_capacity(claims.len());
        for (k, c) in claims.iter().enumerate() {
            let list = &mut self.res_flows[c.0 as usize];
            claim_pos.push(list.len() as u32);
            list.push((slot, k as u32));
            self.dirty_resources.push(c.0);
        }
        self.flows[slot as usize] = Some(FlowState {
            id,
            claims,
            claim_pos,
            cap,
            remaining: bytes,
            rate: 0.0,
            token,
        });
        self.slot_of.insert(id, slot);
        self.live += 1;
        self.dirty = true;
        FlowId(id)
    }

    /// Remove a flow (normally after completion), returning its token.
    pub fn remove_flow(&mut self, id: FlowId) -> Option<T> {
        let slot = self.slot_of.remove(&id.0)?;
        let f = self.flows[slot as usize].take().expect("indexed live flow");
        for (c, &pos) in f.claims.iter().zip(f.claim_pos.iter()) {
            let list = &mut self.res_flows[c.0 as usize];
            list.swap_remove(pos as usize);
            if let Some(&(moved_slot, moved_k)) = list.get(pos as usize) {
                self.flows[moved_slot as usize]
                    .as_mut()
                    .expect("indexed live flow")
                    .claim_pos[moved_k as usize] = pos;
            }
            self.dirty_resources.push(c.0);
        }
        self.free_slots.push(slot);
        self.live -= 1;
        self.dirty = true;
        Some(f.token)
    }

    /// Advance virtual time: drain every flow by `rate * dt`. Flows at
    /// rate zero are skipped — subtracting `0.0 * dt` is the identity on
    /// a non-negative `remaining`, so the fast path is bit-identical.
    pub fn advance_to(&mut self, now: SimTime) {
        let dt = now - self.last_update;
        debug_assert!(dt >= -1e-12, "time went backwards: {dt}");
        if dt > 0.0 {
            if self.util.is_some() {
                self.account_utilization(dt);
            }
            for f in self.flows.iter_mut().flatten() {
                if f.rate > 0.0 {
                    f.remaining = (f.remaining - f.rate * dt).max(0.0);
                }
            }
        }
        self.last_update = now;
    }

    /// Integrate per-resource load over an elapsed interval of `dt`
    /// seconds at the current (constant) rates.
    fn account_utilization(&mut self, dt: f64) {
        let mut loads = std::mem::take(&mut self.util_scratch);
        loads.clear();
        loads.resize(self.caps.len(), 0.0);
        // Accumulate in flow-id order (slots are reused, so slab order is
        // not id order) so the floating-point sums — and the peak_util
        // they feed — are bit-identical across runs.
        let mut order: Vec<(u64, u32)> = self
            .flows
            .iter()
            .enumerate()
            .filter_map(|(slot, f)| f.as_ref().map(|f| (f.id, slot as u32)))
            .collect();
        order.sort_unstable();
        for (_, slot) in order {
            let f = self.flows[slot as usize].as_ref().expect("live slot");
            if f.rate > 0.0 {
                for c in &f.claims {
                    loads[c.0 as usize] += f.rate;
                }
            }
        }
        let util = self.util.as_mut().expect("checked by caller");
        for (ri, &load) in loads.iter().enumerate() {
            if load > 0.0 {
                let u = &mut util[ri];
                u.busy_bytes += load * dt;
                let frac = if self.caps[ri] > 0.0 {
                    load / self.caps[ri]
                } else {
                    0.0
                };
                u.peak_frac = u.peak_frac.max(frac);
            }
        }
        self.util_scratch = loads;
    }

    /// Recompute max-min fair rates (progressive filling with per-flow
    /// caps) over the connected component(s) touched since the last
    /// recompute, or from scratch when the dirty set is large. Clears the
    /// dirty bit.
    pub fn recompute(&mut self) {
        self.dirty = false;
        if self.live == 0 {
            self.dirty_resources.clear();
            return;
        }
        if self.dirty_resources.len() as f64 > FULL_SOLVE_THRESHOLD * self.caps.len() as f64 {
            self.dirty_resources.clear();
            self.recompute_full();
            return;
        }
        // Gather the affected region: BFS from dirty resources over the
        // resource↔flow bipartite graph. `scratch_stamp`/`flow_stamp`
        // double as visited markers (a fresh stamp per recompute).
        self.stamp += 1;
        let bfs_stamp = self.stamp;
        let mut res_queue: Vec<u32> = std::mem::take(&mut self.dirty_resources);
        let mut affected: Vec<(u64, u32)> = Vec::new();
        while let Some(r) = res_queue.pop() {
            let ri = r as usize;
            if self.scratch_stamp[ri] == bfs_stamp {
                continue;
            }
            self.scratch_stamp[ri] = bfs_stamp;
            for idx in 0..self.res_flows[ri].len() {
                let (slot, _) = self.res_flows[ri][idx];
                if self.flow_stamp[slot as usize] != bfs_stamp {
                    self.flow_stamp[slot as usize] = bfs_stamp;
                    let f = self.flows[slot as usize].as_ref().expect("indexed flow");
                    affected.push((f.id, slot));
                    for c in &f.claims {
                        if self.scratch_stamp[c.0 as usize] != bfs_stamp {
                            res_queue.push(c.0);
                        }
                    }
                }
            }
        }
        self.dirty_resources = res_queue; // return the (drained) buffer
        if affected.is_empty() {
            return;
        }
        // Deterministic order: fill walks flows by ascending id.
        affected.sort_unstable();
        self.fill_region(&affected);
    }

    /// From-scratch re-level: partition all live flows into bottleneck
    /// components and fill each one, in ascending-flow-id order. Used
    /// directly by [`FluidSystem::recompute`] past the dirty-set
    /// threshold; also the reference the incremental path is property-
    /// tested against (they must agree to 0 ULP — fills run the same
    /// arithmetic in the same order either way).
    pub fn recompute_full(&mut self) {
        self.dirty = false;
        self.dirty_resources.clear();
        let mut order: Vec<(u64, u32)> = self
            .flows
            .iter()
            .enumerate()
            .filter_map(|(slot, f)| f.as_ref().map(|f| (f.id, slot as u32)))
            .collect();
        order.sort_unstable();
        self.stamp += 1;
        let visit_stamp = self.stamp;
        let mut component: Vec<(u64, u32)> = Vec::new();
        let mut res_queue: Vec<u32> = Vec::new();
        for &(id, slot) in &order {
            if self.flow_stamp[slot as usize] == visit_stamp {
                continue;
            }
            // BFS this flow's component.
            component.clear();
            self.flow_stamp[slot as usize] = visit_stamp;
            component.push((id, slot));
            res_queue.extend(
                self.flows[slot as usize]
                    .as_ref()
                    .expect("live slot")
                    .claims
                    .iter()
                    .map(|c| c.0),
            );
            while let Some(r) = res_queue.pop() {
                let ri = r as usize;
                if self.scratch_stamp[ri] == visit_stamp {
                    continue;
                }
                self.scratch_stamp[ri] = visit_stamp;
                for idx in 0..self.res_flows[ri].len() {
                    let (s2, _) = self.res_flows[ri][idx];
                    if self.flow_stamp[s2 as usize] != visit_stamp {
                        self.flow_stamp[s2 as usize] = visit_stamp;
                        let f = self.flows[s2 as usize].as_ref().expect("indexed flow");
                        component.push((f.id, s2));
                        for c in &f.claims {
                            if self.scratch_stamp[c.0 as usize] != visit_stamp {
                                res_queue.push(c.0);
                            }
                        }
                    }
                }
            }
            component.sort_unstable();
            let comp = std::mem::take(&mut component);
            self.fill_region(&comp);
            component = comp;
        }
    }

    /// Progressive filling over one bottleneck-connected region (the
    /// flows share no resources with any flow outside it), given as
    /// `(id, slot)` pairs in ascending-id order.
    fn fill_region(&mut self, region: &[(u64, u32)]) {
        #[cfg(feature = "fluid-stats")]
        {
            use std::sync::atomic::{AtomicU64, Ordering};
            static CALLS: AtomicU64 = AtomicU64::new(0);
            static WORK: AtomicU64 = AtomicU64::new(0);
            let c = CALLS.fetch_add(1, Ordering::Relaxed) + 1;
            let w = WORK.fetch_add(region.len() as u64, Ordering::Relaxed) + region.len() as u64;
            if c.is_multiple_of(10_000) {
                eprintln!("fill_region calls={c} total_flows_filled={w}");
            }
        }
        // Scratch moves to locals so the fill can read flow claims from
        // the slab without aliasing (no per-flow claim-vector clones).
        let mut residual = std::mem::take(&mut self.scratch_residual);
        let mut count = std::mem::take(&mut self.scratch_count);
        let mut stamps = std::mem::take(&mut self.scratch_stamp);
        self.stamp += 1;
        let fill_stamp = self.stamp;
        for &(_, slot) in region {
            let f = self.flows[slot as usize].as_ref().expect("live slot");
            for c in &f.claims {
                let ri = c.0 as usize;
                if stamps[ri] != fill_stamp {
                    stamps[ri] = fill_stamp;
                    residual[ri] = self.caps[ri];
                    count[ri] = 0;
                }
                count[ri] += 1;
            }
        }
        let mut work: Vec<u32> = region.iter().map(|&(_, slot)| slot).collect();
        let mut cands: Vec<f64> = vec![0.0; work.len()];
        let mut frozen: Vec<u32> = Vec::new();
        while !work.is_empty() {
            let mut min_share = f64::INFINITY;
            for (&slot, cand) in work.iter().zip(cands.iter_mut()) {
                let f = self.flows[slot as usize].as_ref().expect("live slot");
                let mut share = f.cap;
                for c in &f.claims {
                    let ri = c.0 as usize;
                    let n = count[ri];
                    if n > 0 {
                        share = share.min(residual[ri] / n as f64);
                    }
                }
                *cand = share;
                min_share = min_share.min(share);
            }
            debug_assert!(min_share.is_finite() && min_share >= 0.0);
            let mut still = Vec::with_capacity(work.len());
            let mut still_c = Vec::with_capacity(work.len());
            frozen.clear();
            for (slot, cand) in work.drain(..).zip(cands.drain(..)) {
                if cand <= min_share * (1.0 + 1e-12) {
                    let f = self.flows[slot as usize].as_ref().expect("live slot");
                    for c in &f.claims {
                        let ri = c.0 as usize;
                        residual[ri] = (residual[ri] - min_share).max(0.0);
                        count[ri] -= 1;
                    }
                    frozen.push(slot);
                } else {
                    still.push(slot);
                    still_c.push(0.0);
                }
            }
            debug_assert!(!frozen.is_empty(), "progressive filling made no progress");
            for &slot in &frozen {
                self.flows[slot as usize].as_mut().expect("live slot").rate = min_share;
            }
            work = still;
            cands = still_c;
        }
        self.scratch_residual = residual;
        self.scratch_count = count;
        self.scratch_stamp = stamps;
    }

    /// The earliest predicted completion among active flows, given current
    /// rates. Returns `(time, flow)`; zero-byte flows complete "now".
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        debug_assert!(!self.dirty, "call recompute() before next_completion()");
        let mut best: Option<(SimTime, FlowId)> = None;
        for f in self.flows.iter().flatten() {
            let t = if f.remaining <= EPS_BYTES {
                self.last_update
            } else if f.rate > 0.0 {
                self.last_update.after(f.remaining / f.rate)
            } else {
                continue; // starved flow: cannot finish until rates change
            };
            match best {
                Some((bt, bid)) if (bt, bid) <= (t, FlowId(f.id)) => {}
                _ => best = Some((t, FlowId(f.id))),
            }
        }
        best
    }

    /// All flows that have fully drained as of the last `advance_to`.
    pub fn drained_flows(&self) -> Vec<FlowId> {
        let mut v: Vec<FlowId> = self
            .flows
            .iter()
            .flatten()
            .filter(|f| f.remaining <= EPS_BYTES)
            .map(|f| FlowId(f.id))
            .collect();
        v.sort_unstable();
        v
    }

    /// Current rate of a flow (test/diagnostic).
    pub fn rate_of(&self, id: FlowId) -> Option<f64> {
        let slot = *self.slot_of.get(&id.0)?;
        self.flows[slot as usize].as_ref().map(|f| f.rate)
    }

    /// Aggregate current rate over all flows (test/diagnostic).
    pub fn total_rate(&self) -> f64 {
        self.flows.iter().flatten().map(|f| f.rate).sum()
    }
}

impl<T> Default for FluidSystem<T> {
    fn default() -> Self {
        Self::new()
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0), "{a} != {b}");
    }

    #[test]
    fn single_flow_gets_min_of_cap_and_resource() {
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        let f = s.add_flow(vec![r], 3.0, 100.0, ());
        s.recompute();
        approx(s.rate_of(f).unwrap(), 3.0);

        let f2 = s.add_flow(vec![r], 30.0, 100.0, ());
        s.recompute();
        // f frozen at cap 3, f2 takes min(30, (10-? )) — progressive fill:
        // equal share would be 5 each; f capped at 3, leftover 7 to f2.
        approx(s.rate_of(f).unwrap(), 3.0);
        approx(s.rate_of(f2).unwrap(), 7.0);
    }

    #[test]
    fn equal_flows_share_equally() {
        let mut s: FluidSystem<u32> = FluidSystem::new();
        let r = s.add_resource(12.0);
        let flows: Vec<FlowId> = (0..4)
            .map(|i| s.add_flow(vec![r], 100.0, 50.0, i))
            .collect();
        s.recompute();
        for f in &flows {
            approx(s.rate_of(*f).unwrap(), 3.0);
        }
        approx(s.total_rate(), 12.0);
    }

    #[test]
    fn two_resource_bottleneck() {
        // Flow A uses r1 only; flows B, C use r1 and r2. r2 is tight.
        let mut s: FluidSystem<&str> = FluidSystem::new();
        let r1 = s.add_resource(30.0);
        let r2 = s.add_resource(4.0);
        let a = s.add_flow(vec![r1], 100.0, 1.0, "a");
        let b = s.add_flow(vec![r1, r2], 100.0, 1.0, "b");
        let c = s.add_flow(vec![r1, r2], 100.0, 1.0, "c");
        s.recompute();
        // b, c limited by r2: 2 each. a gets the rest of r1: 30-4=26.
        approx(s.rate_of(b).unwrap(), 2.0);
        approx(s.rate_of(c).unwrap(), 2.0);
        approx(s.rate_of(a).unwrap(), 26.0);
    }

    #[test]
    fn advance_drains_and_completes() {
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        let f = s.add_flow(vec![r], 10.0, 100.0, ());
        s.recompute();
        let (t, id) = s.next_completion().unwrap();
        assert_eq!(id, f);
        approx(t.seconds(), 10.0);
        s.advance_to(SimTime::new(10.0));
        assert_eq!(s.drained_flows(), vec![f]);
        s.remove_flow(f).unwrap();
        assert_eq!(s.active_flows(), 0);
    }

    #[test]
    fn rates_rebalance_after_removal() {
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        let f1 = s.add_flow(vec![r], 100.0, 100.0, ());
        let f2 = s.add_flow(vec![r], 100.0, 100.0, ());
        s.recompute();
        approx(s.rate_of(f1).unwrap(), 5.0);
        s.advance_to(SimTime::new(2.0)); // both at 90 remaining
        s.remove_flow(f2);
        assert!(s.is_dirty());
        s.recompute();
        approx(s.rate_of(f1).unwrap(), 10.0);
        let (t, _) = s.next_completion().unwrap();
        approx(t.seconds(), 2.0 + 9.0);
    }

    #[test]
    fn utilization_integrates_bytes_and_peak() {
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        s.enable_utilization();
        // Two flows of 10 bytes each: combined rate 10 (peak 100%).
        s.add_flow(vec![r], 100.0, 10.0, ());
        s.add_flow(vec![r], 100.0, 10.0, ());
        s.recompute();
        s.advance_to(SimTime::new(2.0)); // both drained
        let (bytes, peak) = s.utilization_of(r).unwrap();
        approx(bytes, 20.0);
        approx(peak, 1.0);
        // Disabled systems report None.
        let s2: FluidSystem<()> = FluidSystem::new();
        assert!(s2.utilization_of(r).is_none());
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        let f = s.add_flow(vec![r], 1.0, 0.0, ());
        s.recompute();
        let (t, id) = s.next_completion().unwrap();
        assert_eq!(id, f);
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn max_min_is_work_conserving_under_caps() {
        // 3 flows capped at 2 on a resource of 10: total 6 (caps bind).
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        for _ in 0..3 {
            s.add_flow(vec![r], 2.0, 1.0, ());
        }
        s.recompute();
        approx(s.total_rate(), 6.0);
        // A 4th uncapped flow soaks the rest.
        s.add_flow(vec![r], 100.0, 1.0, ());
        s.recompute();
        approx(s.total_rate(), 10.0);
    }

    #[test]
    fn set_capacity_degrades_and_restores() {
        let mut s: FluidSystem<()> = FluidSystem::new();
        let r = s.add_resource(10.0);
        let f = s.add_flow(vec![r], 100.0, 100.0, ());
        s.recompute();
        approx(s.rate_of(f).unwrap(), 10.0);
        // Degrade to half.
        s.set_capacity(r, 5.0);
        assert!(s.is_dirty());
        s.recompute();
        approx(s.rate_of(f).unwrap(), 5.0);
        // Sever: the flow starves and next_completion has nothing to offer.
        s.set_capacity(r, 0.0);
        s.recompute();
        approx(s.rate_of(f).unwrap(), 0.0);
        assert!(s.next_completion().is_none());
        assert!(s.resource_has_flows(r));
        assert_eq!(s.capacity_of(r), 0.0);
        // Restore: completion is predicted again.
        s.set_capacity(r, 10.0);
        s.recompute();
        approx(s.rate_of(f).unwrap(), 10.0);
        assert!(s.next_completion().is_some());
        // Setting the same capacity again does not dirty the system.
        s.set_capacity(r, 10.0);
        assert!(!s.is_dirty());
    }

    #[test]
    fn zero_capacity_starves_only_dead_component_flows() {
        let mut s: FluidSystem<u32> = FluidSystem::new();
        let dead = s.add_resource(10.0);
        let live = s.add_resource(10.0);
        let fd = s.add_flow(vec![dead], 100.0, 1.0, 0);
        let fl = s.add_flow(vec![live], 100.0, 1.0, 1);
        s.set_capacity(dead, 0.0);
        s.recompute();
        approx(s.rate_of(fd).unwrap(), 0.0);
        approx(s.rate_of(fl).unwrap(), 10.0);
    }

    #[test]
    fn deterministic_across_insertion_orders() {
        let build = |order: &[usize]| {
            let mut s: FluidSystem<usize> = FluidSystem::new();
            let r1 = s.add_resource(10.0);
            let r2 = s.add_resource(6.0);
            let specs = [(vec![r1], 4.0), (vec![r1, r2], 9.0), (vec![r2], 9.0)];
            // Insert all flows; ids follow insertion order but rates must
            // not depend on it.
            let mut rates = vec![0.0; 3];
            let mut ids = [FlowId(0); 3];
            for &i in order {
                ids[i] = s.add_flow(specs[i].0.clone(), specs[i].1, 1.0, i);
            }
            s.recompute();
            for i in 0..3 {
                rates[i] = s.rate_of(ids[i]).unwrap();
            }
            rates
        };
        let a = build(&[0, 1, 2]);
        let b = build(&[2, 0, 1]);
        for (x, y) in a.iter().zip(b.iter()) {
            approx(*x, *y);
        }
    }

    /// Regression: removing a flow mid-transfer must free its bandwidth
    /// share immediately — no residual reservation — and the occupancy
    /// accounting must replay bit-identically.
    #[test]
    fn cancelled_flow_frees_its_share_mid_transfer() {
        let run = |cancel: bool| {
            let mut s: FluidSystem<u32> = FluidSystem::new();
            s.enable_utilization();
            let r = s.add_resource(10.0);
            let a = s.add_flow(vec![r], 100.0, 100.0, 0);
            let b = s.add_flow(vec![r], 100.0, 100.0, 1);
            s.recompute(); // 5.0 each
            if cancel {
                s.advance_to(SimTime::new(4.0)); // 20 bytes drained each
                s.remove_flow(b);
                s.recompute();
            }
            let (t, fid) = s.next_completion().unwrap();
            assert_eq!(fid, a);
            s.advance_to(t);
            (t.seconds(), s.utilization_of(r).unwrap())
        };
        let (t_cancel, (bytes_cancel, peak_cancel)) = run(true);
        // Survivor sped up to the full resource: 20B at 5.0, 80B at 10.0.
        approx(t_cancel, 4.0 + 8.0);
        approx(bytes_cancel, 40.0 + 80.0);
        approx(peak_cancel, 1.0);
        let (t_both, (bytes_both, _)) = run(false);
        approx(t_both, 20.0);
        approx(bytes_both, 200.0);
        // Bit-deterministic across repeats, with and without the cancel.
        let again = run(true);
        assert_eq!(t_cancel.to_bits(), again.0.to_bits());
        assert_eq!(bytes_cancel.to_bits(), again.1 .0.to_bits());
    }

    use proptest::prelude::*;

    proptest! {
        /// Max-min invariants: no resource over capacity, no flow over its
        /// cap, and every flow is bottlenecked somewhere (work conserving).
        #[test]
        fn prop_maxmin_invariants(
            caps in proptest::collection::vec(1.0f64..100.0, 1..4),
            flows in proptest::collection::vec(
                (proptest::collection::vec(0usize..4, 1..4), 0.5f64..50.0),
                1..12,
            ),
        ) {
            let mut s: FluidSystem<usize> = FluidSystem::new();
            let rids: Vec<ResourceId> = caps.iter().map(|&c| s.add_resource(c)).collect();
            let mut ids = Vec::new();
            for (i, (claims, cap)) in flows.iter().enumerate() {
                let mut cl: Vec<ResourceId> = claims
                    .iter()
                    .map(|&c| rids[c % rids.len()])
                    .collect();
                cl.sort_by_key(|r| r.0);
                cl.dedup();
                ids.push(s.add_flow(cl, *cap, 1.0, i));
            }
            s.recompute();

            // 1. Resource capacities respected.
            for (ri, &cap) in rids.iter().zip(caps.iter()) {
                let used: f64 = flows
                    .iter()
                    .enumerate()
                    .filter(|(i, (claims, _))| {
                        claims.iter().any(|&c| rids[c % rids.len()] == *ri)
                            && s.rate_of(ids[*i]).is_some()
                    })
                    .map(|(i, _)| s.rate_of(ids[i]).unwrap())
                    .sum();
                prop_assert!(used <= cap * (1.0 + 1e-6), "resource over capacity: {used} > {cap}");
            }
            // 2. Flow caps respected; rates positive.
            for (i, (_, cap)) in flows.iter().enumerate() {
                let r = s.rate_of(ids[i]).unwrap();
                prop_assert!(r <= cap * (1.0 + 1e-6));
                prop_assert!(r > 0.0);
            }
        }

        /// The tentpole equivalence (DESIGN.md §11): after an arbitrary
        /// interleaving of arrivals, teardowns, capacity faults, and
        /// incremental recomputes, a from-scratch re-level of the whole
        /// system reproduces every incrementally-maintained rate to 0 ULP.
        #[test]
        fn prop_incremental_matches_scratch_to_0_ulp(
            caps in proptest::collection::vec(1.0f64..100.0, 2..6),
            ops in proptest::collection::vec(
                (0u8..4, proptest::collection::vec(0usize..6, 1..4), 0.5f64..50.0, 1.0f64..80.0),
                1..40,
            ),
        ) {
            let mut s: FluidSystem<usize> = FluidSystem::new();
            let rids: Vec<ResourceId> = caps.iter().map(|&c| s.add_resource(c)).collect();
            let mut live: Vec<FlowId> = Vec::new();
            let mut t = 0.0f64;
            for (i, (kind, picks, cap, bytes)) in ops.iter().enumerate() {
                match kind {
                    // Arrival.
                    0 | 1 => {
                        let mut cl: Vec<ResourceId> =
                            picks.iter().map(|&c| rids[c % rids.len()]).collect();
                        cl.sort_by_key(|r| r.0);
                        cl.dedup();
                        live.push(s.add_flow(cl, *cap, *bytes, i));
                    }
                    // Teardown of the oldest live flow.
                    2 => {
                        if !live.is_empty() {
                            s.remove_flow(live.remove(0));
                        }
                    }
                    // Capacity fault on some resource.
                    _ => {
                        let r = rids[picks[0] % rids.len()];
                        s.set_capacity(r, *cap);
                    }
                }
                // Drain a little and re-level incrementally.
                t += 0.01;
                s.recompute();
                s.advance_to(SimTime::new(t));
            }
            let incremental: Vec<Option<u64>> = live
                .iter()
                .map(|&f| s.rate_of(f).map(f64::to_bits))
                .collect();
            s.recompute_full();
            let scratch: Vec<Option<u64>> = live
                .iter()
                .map(|&f| s.rate_of(f).map(f64::to_bits))
                .collect();
            prop_assert_eq!(incremental, scratch, "incremental vs from-scratch rates differ");
        }

        /// Max-min optimality: every flow is bottlenecked — pinned at its
        /// own cap, or crossing a resource that is saturated (or dead).
        #[test]
        fn prop_every_flow_is_bottlenecked(
            caps in proptest::collection::vec(1.0f64..100.0, 1..5),
            flows in proptest::collection::vec(
                (proptest::collection::vec(0usize..5, 1..4), 0.5f64..50.0),
                1..12,
            ),
        ) {
            let mut s: FluidSystem<usize> = FluidSystem::new();
            let rids: Vec<ResourceId> = caps.iter().map(|&c| s.add_resource(c)).collect();
            let mut ids = Vec::new();
            for (i, (claims, cap)) in flows.iter().enumerate() {
                let mut cl: Vec<ResourceId> =
                    claims.iter().map(|&c| rids[c % rids.len()]).collect();
                cl.sort_by_key(|r| r.0);
                cl.dedup();
                ids.push((s.add_flow(cl.clone(), *cap, 1.0, i), cl, *cap));
            }
            s.recompute();
            // Total load per resource, summed over the flows crossing it.
            let mut load = vec![0.0f64; rids.len()];
            for (fid, cl, _) in &ids {
                let r = s.rate_of(*fid).unwrap();
                for c in cl {
                    load[c.0 as usize] += r;
                }
            }
            for (fid, cl, cap) in &ids {
                let r = s.rate_of(*fid).unwrap();
                let at_cap = r >= cap * (1.0 - 1e-9);
                let at_saturated_resource = cl.iter().any(|c| {
                    let ri = c.0 as usize;
                    load[ri] >= caps[ri] * (1.0 - 1e-6)
                });
                prop_assert!(
                    at_cap || at_saturated_resource,
                    "flow {fid:?} rate {r} is below cap {cap} yet crosses no saturated resource"
                );
            }
        }
    }
}
