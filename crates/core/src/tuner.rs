//! Empirical auto-tuning of the allreduce dispatch table.
//!
//! Section 6.4 of the paper: *"we performed empirical evaluation of
//! different configurations on the four clusters and chose the best
//! configuration for each message size"*. This module automates exactly
//! that — sweep candidate algorithms over a size grid on the modeled
//! cluster, keep the argmin per size, and compress the result into a
//! serializable dispatch table that can be compared against (or replace)
//! the hand-written [`crate::selector::Library::DpmlTuned`] tables.

use crate::algorithms::{Algorithm, FlatAlg};
use crate::run::run_allreduce;
use dpml_fabric::Preset;
use dpml_topology::ClusterSpec;
use serde::{Deserialize, Serialize};

/// One row of a tuned dispatch table: use `algorithm` for messages of at
/// most `max_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunedEntry {
    /// Upper size bound (inclusive) for this entry.
    pub max_bytes: u64,
    /// The winning algorithm.
    pub algorithm: Algorithm,
    /// Its measured latency at the tuning size, microseconds.
    pub latency_us: f64,
}

/// An empirically tuned dispatch table for one cluster shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunedTable {
    /// Cluster preset id the table was tuned on.
    pub cluster: String,
    /// Nodes × ppn the table was tuned for.
    pub nodes: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Entries sorted by `max_bytes`; the last entry also covers larger
    /// messages.
    pub entries: Vec<TunedEntry>,
}

impl TunedTable {
    /// The algorithm to use for `bytes`.
    pub fn choose(&self, bytes: u64) -> Algorithm {
        for e in &self.entries {
            if bytes <= e.max_bytes {
                return e.algorithm;
            }
        }
        self.entries.last().expect("non-empty table").algorithm
    }
}

/// The candidate set the paper's tuning sweeps over: every leader count,
/// pipelining for the largest sizes, the classic designs, and SHArP where
/// the fabric supports it.
pub fn default_candidates(preset: &Preset, spec: &ClusterSpec) -> Vec<Algorithm> {
    let mut out = vec![
        Algorithm::RecursiveDoubling,
        Algorithm::Rabenseifner,
        Algorithm::SingleLeader {
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::SingleLeader {
            inner: FlatAlg::Rabenseifner,
        },
    ];
    let mut l = 2u32;
    while l <= spec.ppn.min(16) {
        out.push(Algorithm::Dpml {
            leaders: l,
            inner: FlatAlg::RecursiveDoubling,
        });
        l *= 2;
    }
    let lmax = spec.ppn.clamp(1, 16);
    for k in [4u32, 8] {
        out.push(Algorithm::DpmlPipelined {
            leaders: lmax,
            chunks: k,
        });
    }
    if preset.fabric.has_sharp() && spec.ppn >= 1 {
        out.push(Algorithm::SharpNodeLeader);
        if spec.sockets_per_node > 1 && spec.ppn > 1 {
            out.push(Algorithm::SharpSocketLeader);
        }
    }
    out
}

/// Tune: evaluate every candidate at every size, keep the winner.
pub fn tune(
    preset: &Preset,
    spec: &ClusterSpec,
    sizes: &[u64],
    candidates: &[Algorithm],
) -> TunedTable {
    assert!(!sizes.is_empty() && !candidates.is_empty());
    let mut entries = Vec::with_capacity(sizes.len());
    for &bytes in sizes {
        let mut best: Option<(Algorithm, f64)> = None;
        for &alg in candidates {
            let Ok(rep) = run_allreduce(preset, spec, alg, bytes) else {
                continue; // e.g. leaders > ppn on small shapes
            };
            if best.is_none_or(|(_, b)| rep.latency_us < b) {
                best = Some((alg, rep.latency_us));
            }
        }
        let (algorithm, latency_us) = best.expect("at least one candidate must run");
        entries.push(TunedEntry {
            max_bytes: bytes,
            algorithm,
            latency_us,
        });
    }
    TunedTable {
        cluster: preset.id.to_string(),
        nodes: spec.num_nodes,
        ppn: spec.ppn,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpml_fabric::presets::{cluster_a, cluster_b};

    fn sizes() -> Vec<u64> {
        vec![64, 4 * 1024, 256 * 1024]
    }

    #[test]
    fn tuned_table_is_argmin_of_candidates() {
        let preset = cluster_b();
        let spec = preset.spec(4, 8).unwrap();
        let cands = default_candidates(&preset, &spec);
        let table = tune(&preset, &spec, &sizes(), &cands);
        assert_eq!(table.entries.len(), 3);
        for e in &table.entries {
            for &alg in &cands {
                if let Ok(rep) = run_allreduce(&preset, &spec, alg, e.max_bytes) {
                    assert!(
                        e.latency_us <= rep.latency_us + 1e-9,
                        "{}B: table {} ({:.1}us) worse than {} ({:.1}us)",
                        e.max_bytes,
                        e.algorithm.name(),
                        e.latency_us,
                        alg.name(),
                        rep.latency_us
                    );
                }
            }
        }
    }

    #[test]
    fn choose_picks_by_size_bound() {
        let preset = cluster_b();
        let spec = preset.spec(4, 8).unwrap();
        let table = tune(
            &preset,
            &spec,
            &sizes(),
            &default_candidates(&preset, &spec),
        );
        let small = table.choose(32);
        let big = table.choose(10 << 20); // beyond the grid: last entry
        assert_eq!(small, table.entries[0].algorithm);
        assert_eq!(big, table.entries[2].algorithm);
    }

    #[test]
    fn large_messages_tune_to_multi_leader() {
        let preset = cluster_b();
        let spec = preset.spec(8, 28).unwrap();
        let table = tune(
            &preset,
            &spec,
            &[512 * 1024],
            &default_candidates(&preset, &spec),
        );
        match table.entries[0].algorithm {
            Algorithm::Dpml { leaders, .. } | Algorithm::DpmlPipelined { leaders, .. } => {
                assert!(leaders >= 8, "leaders {leaders}")
            }
            other => panic!("expected DPML to win at 512KB, got {other:?}"),
        }
    }

    #[test]
    fn sharp_wins_small_on_cluster_a() {
        let preset = cluster_a();
        let spec = preset.spec(4, 8).unwrap();
        let table = tune(&preset, &spec, &[64], &default_candidates(&preset, &spec));
        assert!(
            table.entries[0].algorithm.needs_sharp(),
            "{:?}",
            table.entries[0]
        );
    }

    #[test]
    fn serde_round_trip() {
        let preset = cluster_b();
        let spec = preset.spec(2, 4).unwrap();
        let table = tune(&preset, &spec, &[64], &default_candidates(&preset, &spec));
        let json = serde_json::to_string(&table).unwrap();
        let back: TunedTable = serde_json::from_str(&json).unwrap();
        assert_eq!(table, back);
    }
}
