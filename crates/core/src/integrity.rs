//! Self-verifying allreduce: end-to-end integrity under injected
//! silent-corruption faults.
//!
//! The engine's transport already detects corrupted or dropped wire
//! payloads and retransmits them ([`dpml_faults::DataFaults`]); this
//! module adds the layers above it so a collective under data faults
//! either returns a result **bit-identical to a fault-free run** or a
//! structured [`IntegrityError`] — never silently wrong data and never a
//! hang. The degradation ladder, cheapest rung first:
//!
//! 1. **Wire CRC + retransmit** (engine): corrupted payloads are NACKed,
//!    dropped ones hit the sender's ack timeout; both retransmit with
//!    capped exponential backoff up to the plan's retry budget.
//! 2. **Checksum-on-publish redo** (engine): a shared-memory deposit that
//!    fails its publish checksum is re-copied from the source buffer.
//! 3. **Partition re-reduce** (this module): when an inter-leader
//!    transfer of a DPML run exhausts its budget, only the affected
//!    partition — `1/l` of the vector — is re-reduced from the surviving
//!    phase-1 shared-memory deposits, reusing the fail-stop healing
//!    continuation with nobody dead.
//! 4. **Full restart** (this module): algorithms without DPML's durable
//!    deposits re-run from scratch, up to [`IntegrityPolicy::max_restarts`].
//! 5. **[`IntegrityError`]**: every budget exhausted. The caller gets a
//!    structured failure, not a wrong answer.
//!
//! Verification itself is not free: every rank checksums its final
//! result vector before declaring completion, modeled as an appended
//! compute of `verify_base_us + bytes / verify_bw` per rank. The same
//! instructions are appended to the fault-free baseline, so the
//! faulted-vs-clean comparison stays apples-to-apples and
//! [`IntegrityReport::verify_overhead_us`] isolates the pure cost of
//! checking (the overhead measured at corruption rate zero).
//!
//! Process (fail-stop) faults are the province of
//! [`crate::heal::run_dpml_failstop`]; a plan carrying them surfaces
//! `RankDead` as a plain [`RunError`] here.

use crate::algorithms::{Algorithm, FlatAlg};
use crate::heal::{build_continuation, REPLAN_BASE_US, REPLAN_PER_RANK_US};
use crate::run::RunError;
use dpml_engine::program::ByteRange;
use dpml_engine::{Phase, RunReport, SimConfig, SimError, Simulator, WorldProgram};
use dpml_fabric::Preset;
use dpml_faults::{DataFaults, FaultPlan, ProcessFaults};
use dpml_sharp::SharpFabric;
use dpml_topology::{ClusterSpec, LeaderPolicy, Rank, RankMap};
use serde::{Deserialize, Serialize};

/// Knobs for the self-verifying runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntegrityPolicy {
    /// Checksum scan bandwidth, bytes/second (hardware CRC32C streams
    /// near memory bandwidth).
    pub verify_bw: f64,
    /// Fixed per-rank verification setup cost, microseconds.
    pub verify_base_us: f64,
    /// Full re-runs allowed after a retry-budget exhaustion on an
    /// algorithm without partition-scoped recovery.
    pub max_restarts: u32,
    /// Partition re-reduction passes allowed for a DPML run before the
    /// recovery itself is declared failed.
    pub max_recovery_passes: u32,
}

impl Default for IntegrityPolicy {
    fn default() -> Self {
        IntegrityPolicy {
            verify_bw: 1.0e11,
            verify_base_us: 0.3,
            max_restarts: 2,
            max_recovery_passes: 3,
        }
    }
}

impl IntegrityPolicy {
    /// Virtual-time cost of one rank checksumming `bytes` of result.
    pub fn verify_secs(&self, bytes: u64) -> f64 {
        self.verify_base_us * 1e-6 + bytes as f64 / self.verify_bw
    }
}

/// One rung of the degradation ladder, as exported for outcome-coverage
/// accounting (the chaos campaign engine keys its coverage map on which
/// rungs a run actually exercised).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LadderRung {
    /// Rung 1: a receiver-side CRC failure or dropped message was
    /// re-delivered over the wire.
    WireRetransmit,
    /// Rung 2: a shared-memory publish failed its checksum and was
    /// redone from clean state.
    ShmRedo,
    /// Rung 3: one partition was re-reduced from surviving deposits.
    PartitionRereduce,
    /// Rung 4: the whole collective restarted with a reseeded plan.
    FullRestart,
}

impl LadderRung {
    /// Stable kebab-case coverage label. Renaming one invalidates the
    /// committed chaos regression corpus.
    pub fn label(&self) -> &'static str {
        match self {
            LadderRung::WireRetransmit => "retransmit",
            LadderRung::ShmRedo => "shm-redo",
            LadderRung::PartitionRereduce => "partition-rereduce",
            LadderRung::FullRestart => "restart",
        }
    }
}

/// Why a self-verifying run gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntegrityErrorKind {
    /// Wire retry budget and restart budget both exhausted.
    BudgetExhausted,
    /// Partition-scoped recovery kept exhausting its own retry budget.
    RecoveryFailed,
    /// A completed run failed end-to-end verification or diverged from
    /// the fault-free baseline (an escape the ladder exists to prevent;
    /// reaching this kind is a bug in the protocol, not in the caller).
    VerifyMismatch,
}

impl IntegrityErrorKind {
    /// Stable kebab-case coverage label (see [`LadderRung::label`]).
    pub fn label(&self) -> &'static str {
        match self {
            IntegrityErrorKind::BudgetExhausted => "integrity-budget-exhausted",
            IntegrityErrorKind::RecoveryFailed => "integrity-recovery-failed",
            IntegrityErrorKind::VerifyMismatch => "integrity-verify-mismatch",
        }
    }
}

/// Structured failure of a self-verifying allreduce: the collective did
/// not complete with a trustworthy result, and says so instead of
/// returning corrupt data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntegrityError {
    /// Which rung of the ladder gave out.
    pub kind: IntegrityErrorKind,
    /// Delivery attempts the losing transfer made.
    pub attempts: u32,
    /// Human-readable diagnosis.
    pub detail: String,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            IntegrityErrorKind::BudgetExhausted => "retry budget exhausted",
            IntegrityErrorKind::RecoveryFailed => "partition recovery failed",
            IntegrityErrorKind::VerifyMismatch => "verification mismatch",
        };
        write!(f, "integrity: {kind}: {}", self.detail)
    }
}

impl std::error::Error for IntegrityError {}

/// Error from [`run_allreduce_verified`]: either ordinary infrastructure
/// failure or a structured integrity give-up.
#[derive(Debug)]
pub enum VerifiedError {
    /// Topology/build/simulation error unrelated to data integrity.
    Run(RunError),
    /// The degradation ladder ran out of rungs.
    Integrity(IntegrityError),
}

impl std::fmt::Display for VerifiedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifiedError::Run(e) => write!(f, "{e}"),
            VerifiedError::Integrity(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VerifiedError {}

impl From<RunError> for VerifiedError {
    fn from(e: RunError) -> Self {
        VerifiedError::Run(e)
    }
}

impl From<IntegrityError> for VerifiedError {
    fn from(e: IntegrityError) -> Self {
        VerifiedError::Integrity(e)
    }
}

impl From<crate::algorithms::BuildError> for VerifiedError {
    fn from(e: crate::algorithms::BuildError) -> Self {
        VerifiedError::Run(RunError::Build(e))
    }
}

impl From<dpml_topology::TopologyError> for VerifiedError {
    fn from(e: dpml_topology::TopologyError) -> Self {
        VerifiedError::Run(RunError::Topology(e))
    }
}

/// Accounting for one partition-scoped recovery (ladder rung 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionRecovery {
    /// Leader/partition index that was re-reduced.
    pub partition: u32,
    /// Recovery passes run (the last one succeeded).
    pub passes: u32,
    /// When the exhausted transfer surfaced, microseconds from start.
    pub detected_at_us: f64,
    /// Re-planning cost charged before the continuation ran.
    pub replan_us: f64,
}

/// A verified allreduce: the result is bit-identical to a fault-free
/// run's, and the report says what the integrity machinery paid for it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntegrityReport {
    /// Requested algorithm name.
    pub algorithm: String,
    /// Vector size in bytes.
    pub bytes: u64,
    /// The engine report of the run (or continuation) that completed.
    pub report: RunReport,
    /// Fault-free latency *without* verification, microseconds.
    pub base_latency_us: f64,
    /// Fault-free latency *with* verification, microseconds.
    pub clean_latency_us: f64,
    /// Pure cost of self-verification (`clean - base`), microseconds —
    /// the overhead a corruption-rate-zero sweep point measures.
    pub verify_overhead_us: f64,
    /// End-to-end latency including aborted attempts, detection,
    /// re-planning, and recovery, microseconds.
    pub total_latency_us: f64,
    /// Full restarts taken (ladder rung 4).
    pub restarts: u32,
    /// Partition-scoped recovery taken, if any (ladder rung 3).
    pub recovery: Option<PartitionRecovery>,
}

impl IntegrityReport {
    /// Wire retransmissions of the completing run.
    pub fn retransmits(&self) -> u64 {
        self.report.stats.retransmits
    }

    /// Deliveries the receiver-side CRC rejected.
    pub fn corruptions_detected(&self) -> u64 {
        self.report.stats.corruptions_detected
    }

    /// Shared-memory publishes redone after a checksum failure.
    pub fn shm_crc_fails(&self) -> u64 {
        self.report.stats.shm_crc_fails
    }

    /// Residual silent-corruption exposure (`detected * 2^-32`).
    pub fn undetected_risk(&self) -> f64 {
        self.report.stats.undetected_risk
    }

    /// Which degradation-ladder rungs this run exercised, ascending —
    /// the coverage export consumed by the chaos campaign engine.
    pub fn rungs(&self) -> Vec<LadderRung> {
        let mut out = Vec::new();
        if self.retransmits() > 0 {
            out.push(LadderRung::WireRetransmit);
        }
        if self.shm_crc_fails() > 0 {
            out.push(LadderRung::ShmRedo);
        }
        if self.recovery.is_some() {
            out.push(LadderRung::PartitionRereduce);
        }
        if self.restarts > 0 {
            out.push(LadderRung::FullRestart);
        }
        out
    }

    /// Slowdown of the end-to-end verified run over the unverified
    /// fault-free baseline, as a fraction (0.03 = 3%).
    pub fn overhead_fraction(&self) -> f64 {
        if self.base_latency_us == 0.0 {
            0.0
        } else {
            self.total_latency_us / self.base_latency_us - 1.0
        }
    }
}

/// Run `alg` under `plan` with the full integrity ladder. On success the
/// result provably holds every rank's contribution over the whole vector
/// and matches the fault-free baseline segment-for-segment; on failure
/// the error is structured, never a silently wrong answer.
pub fn run_allreduce_verified(
    preset: &Preset,
    spec: &ClusterSpec,
    alg: Algorithm,
    bytes: u64,
    plan: &FaultPlan,
    policy: IntegrityPolicy,
) -> Result<IntegrityReport, VerifiedError> {
    let map = RankMap::block(spec);
    let vs = policy.verify_secs(bytes);

    let base_world = alg.build(&map, bytes)?;
    let mut world = base_world.clone();
    append_verify(&mut world, vs);

    // Fault-free baselines keep the plan's noise and link faults (they
    // perturb timing, never data) but scrub everything the ladder heals.
    let scrubbed = FaultPlan {
        data: DataFaults::default(),
        process: ProcessFaults::default(),
        ..plan.clone()
    };
    let base = run_world(preset, &map, alg, &base_world, &scrubbed, 0)?;
    let clean = run_world(preset, &map, alg, &world, &scrubbed, 0)?;
    clean.verify_allreduce().map_err(RunError::Verify)?;
    let baselines = Baselines {
        base_latency_us: base.latency_us(),
        clean_latency_us: clean.latency_us(),
    };

    let mut penalty_us = 0.0;
    let mut restarts = 0u32;
    loop {
        let attempt_plan = reseed(plan, restarts);
        match run_world(preset, &map, alg, &world, &attempt_plan, restarts) {
            Ok(report) => {
                let total = penalty_us + report.latency_us();
                return finish(alg, bytes, report, &clean, baselines, total, restarts, None);
            }
            Err(RunError::Sim(SimError::RetryBudgetExhausted {
                src,
                dst,
                attempts,
                at,
            })) => {
                // DPML's phase-1 deposits are durable in node shared
                // memory, so an exhausted *inter-node* transfer (always
                // phase 3, between leaders of one partition) only loses
                // that partition. Shm exhaustion (`src == dst`) means the
                // deposits themselves never landed: restart.
                if let Algorithm::Dpml { leaders, inner } = alg {
                    if src != dst {
                        return recover_partition(
                            preset, &map, leaders, inner, alg, bytes, plan, &policy, vs, &clean,
                            baselines, penalty_us, restarts, dst, attempts, at,
                        );
                    }
                }
                if restarts >= policy.max_restarts {
                    return Err(IntegrityError {
                        kind: IntegrityErrorKind::BudgetExhausted,
                        attempts,
                        detail: format!(
                            "transfer {src} -> {dst} unrecoverable after {attempts} delivery \
                             attempts and {restarts} full restarts"
                        ),
                    }
                    .into());
                }
                penalty_us += at * 1e6;
                restarts += 1;
            }
            Err(other) => return Err(other.into()),
        }
    }
}

#[derive(Clone, Copy)]
struct Baselines {
    base_latency_us: f64,
    clean_latency_us: f64,
}

/// Ladder rung 3: re-reduce one partition from the surviving shared-
/// memory deposits, reusing the fail-stop healing continuation with
/// nobody dead. The continuation runs under reseeded data faults (the
/// wire is as hostile as before) and may itself need several passes.
#[allow(clippy::too_many_arguments)]
fn recover_partition(
    preset: &Preset,
    map: &RankMap,
    leaders: u32,
    inner: FlatAlg,
    alg: Algorithm,
    bytes: u64,
    plan: &FaultPlan,
    policy: &IntegrityPolicy,
    verify_secs: f64,
    clean: &RunReport,
    baselines: Baselines,
    penalty_us: f64,
    restarts: u32,
    dst: u32,
    attempts: u32,
    at: f64,
) -> Result<IntegrityReport, VerifiedError> {
    let set = LeaderPolicy::PerNode(leaders)
        .build(map)
        .map_err(RunError::from)?;
    let Some(j) = set.leader_index(Rank(dst)) else {
        return Err(IntegrityError {
            kind: IntegrityErrorKind::RecoveryFailed,
            attempts,
            detail: format!("receiver rank {dst} is not a leader; cannot scope recovery"),
        }
        .into());
    };
    let l = set.leaders_per_node();
    let parts: Vec<ByteRange> = (0..l)
        .map(|i| ByteRange::whole(bytes).subrange(l, i))
        .collect();
    let mut cont = build_continuation(map, &set, &set, &parts, bytes, &[], &[j], inner);
    append_verify(&mut cont, verify_secs);

    let detected_at_us = at * 1e6;
    let replan_us = REPLAN_BASE_US + REPLAN_PER_RANK_US * set.leader_comm(j).len() as f64;
    let mut rec_penalty_us = 0.0;
    for pass in 0..policy.max_recovery_passes {
        let pass_plan = reseed(plan, RECOVERY_ROUND_BASE + pass);
        match run_world(preset, map, alg, &cont, &pass_plan, pass) {
            Ok(report) => {
                let total =
                    penalty_us + detected_at_us + replan_us + rec_penalty_us + report.latency_us();
                let recovery = PartitionRecovery {
                    partition: j,
                    passes: pass + 1,
                    detected_at_us,
                    replan_us,
                };
                return finish(
                    alg,
                    bytes,
                    report,
                    clean,
                    baselines,
                    total,
                    restarts,
                    Some(recovery),
                );
            }
            Err(RunError::Sim(SimError::RetryBudgetExhausted { at, .. })) => {
                rec_penalty_us += at * 1e6;
            }
            Err(other) => return Err(other.into()),
        }
    }
    Err(IntegrityError {
        kind: IntegrityErrorKind::RecoveryFailed,
        attempts,
        detail: format!(
            "partition {j} re-reduction still exhausting its retry budget after {} passes",
            policy.max_recovery_passes
        ),
    }
    .into())
}

/// Gatekeeper every success path funnels through: the completed run must
/// verify end-to-end *and* match the fault-free baseline's result
/// coverage segment-for-segment before the caller sees a report.
#[allow(clippy::too_many_arguments)]
fn finish(
    alg: Algorithm,
    bytes: u64,
    report: RunReport,
    clean: &RunReport,
    baselines: Baselines,
    total_latency_us: f64,
    restarts: u32,
    recovery: Option<PartitionRecovery>,
) -> Result<IntegrityReport, VerifiedError> {
    if let Err(e) = report.verify_allreduce() {
        return Err(IntegrityError {
            kind: IntegrityErrorKind::VerifyMismatch,
            attempts: 0,
            detail: format!("end-to-end verification failed: {e}"),
        }
        .into());
    }
    if !results_match(&report, clean) {
        return Err(IntegrityError {
            kind: IntegrityErrorKind::VerifyMismatch,
            attempts: 0,
            detail: "result coverage diverged from the fault-free baseline".into(),
        }
        .into());
    }
    Ok(IntegrityReport {
        algorithm: alg.name(),
        bytes,
        report,
        base_latency_us: baselines.base_latency_us,
        clean_latency_us: baselines.clean_latency_us,
        verify_overhead_us: baselines.clean_latency_us - baselines.base_latency_us,
        total_latency_us,
        restarts,
        recovery,
    })
}

/// Restart rounds and recovery passes must see fresh fault draws, or a
/// re-run would hit the identical failure forever. Keep round 0 the
/// original plan so a clean first attempt stays bit-identical to
/// [`crate::resilience::run_allreduce_faulted`].
fn reseed(plan: &FaultPlan, round: u32) -> FaultPlan {
    if round == 0 {
        return plan.clone();
    }
    FaultPlan {
        seed: plan.seed ^ u64::from(round).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ..plan.clone()
    }
}

/// Offset separating recovery-pass reseeds from restart reseeds.
const RECOVERY_ROUND_BASE: u32 = 64;

/// Append the per-rank result-checksum compute that makes the schedule
/// self-verifying. Applied identically to baselines and faulted worlds.
fn append_verify(world: &mut WorldProgram, secs: f64) {
    for prog in &mut world.programs {
        prog.set_phase(Phase::App);
        prog.compute(secs);
    }
}

/// Semantic per-rank result equality: same segment boundaries, same
/// contributor sets. (Structural `==` on [`dpml_engine::CoverageMap`]
/// would also compare `RankSet` word-vector lengths, which delivery
/// order can legitimately vary.)
fn results_match(a: &RunReport, b: &RunReport) -> bool {
    a.result_coverage.len() == b.result_coverage.len()
        && a.result_coverage
            .iter()
            .zip(&b.result_coverage)
            .all(|(x, y)| {
                let xs: Vec<_> = x.segments().collect();
                let ys: Vec<_> = y.segments().collect();
                xs.len() == ys.len()
                    && xs
                        .iter()
                        .zip(&ys)
                        .all(|((s1, e1, r1), (s2, e2, r2))| s1 == s2 && e1 == e2 && r1.set_eq(r2))
            })
}

fn run_world(
    preset: &Preset,
    map: &RankMap,
    alg: Algorithm,
    world: &WorldProgram,
    plan: &FaultPlan,
    attempt: u32,
) -> Result<RunReport, RunError> {
    let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch)?;
    let report = if alg.needs_sharp() {
        let params = preset.fabric.sharp.ok_or(RunError::NoSharpOnFabric)?;
        let oracle = SharpFabric::new(params, cfg.tree.clone(), map.clone());
        Simulator::new(&cfg)
            .with_sharp(&oracle)
            .with_faults(plan)
            .with_fault_attempt(attempt)
            .run(world)?
    } else {
        Simulator::new(&cfg)
            .with_faults(plan)
            .with_fault_attempt(attempt)
            .run(world)?
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpml_fabric::presets::cluster_b;

    fn dpml2() -> Algorithm {
        Algorithm::Dpml {
            leaders: 2,
            inner: FlatAlg::RecursiveDoubling,
        }
    }

    fn wire_plan(seed: u64, corruption: f64, drop: f64, budget: u32) -> FaultPlan {
        FaultPlan {
            seed,
            data: DataFaults {
                max_retransmits: budget,
                ..DataFaults::wire(corruption, drop)
            },
            ..FaultPlan::zero()
        }
    }

    #[test]
    fn zero_plan_adds_only_verification_overhead() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        let rep = run_allreduce_verified(
            &p,
            &spec,
            dpml2(),
            1 << 18,
            &FaultPlan::zero(),
            IntegrityPolicy::default(),
        )
        .unwrap();
        assert_eq!(rep.restarts, 0);
        assert!(rep.recovery.is_none());
        assert_eq!(rep.retransmits(), 0);
        assert_eq!(rep.corruptions_detected(), 0);
        assert_eq!(rep.undetected_risk(), 0.0);
        // No faults: the run IS the verified baseline.
        assert_eq!(
            rep.total_latency_us.to_bits(),
            rep.clean_latency_us.to_bits()
        );
        assert!(rep.verify_overhead_us > 0.0);
        assert!(
            rep.overhead_fraction() < 0.05,
            "verification must stay under a few percent, got {:.3}",
            rep.overhead_fraction()
        );
    }

    #[test]
    fn corruption_retransmits_and_result_matches_baseline() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        // Hostile wire, deep budget: detection + retransmit must fully
        // absorb the faults without restarts or recovery.
        let plan = wire_plan(3, 0.2, 0.1, 64);
        let rep = run_allreduce_verified(
            &p,
            &spec,
            dpml2(),
            1 << 18,
            &plan,
            IntegrityPolicy::default(),
        )
        .unwrap();
        assert!(rep.retransmits() > 0);
        assert!(rep.corruptions_detected() > 0);
        assert!(rep.undetected_risk() > 0.0 && rep.undetected_risk() < 1e-6);
        assert!(rep.total_latency_us > rep.clean_latency_us);

        // Determinism: the same plan replays bit-identically.
        let again = run_allreduce_verified(
            &p,
            &spec,
            dpml2(),
            1 << 18,
            &plan,
            IntegrityPolicy::default(),
        )
        .unwrap();
        assert_eq!(
            rep.total_latency_us.to_bits(),
            again.total_latency_us.to_bits()
        );
        assert_eq!(rep.retransmits(), again.retransmits());
    }

    #[test]
    fn exhausted_interleader_budget_recovers_one_partition() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        // Shallow budget so a phase-3 transfer exhausts it (seed 9 hits
        // partition 1); the reseeded recovery passes then get the
        // partition through.
        let plan = wire_plan(9, 0.25, 0.1, 2);
        let rep = run_allreduce_verified(
            &p,
            &spec,
            dpml2(),
            1 << 18,
            &plan,
            IntegrityPolicy {
                max_recovery_passes: 8,
                ..IntegrityPolicy::default()
            },
        )
        .unwrap();
        let rec = rep.recovery.as_ref().expect("expected partition recovery");
        assert_eq!(rec.partition, 1);
        assert_eq!(rec.passes, 2);
        assert!(rec.detected_at_us > 0.0);
        assert!(
            rep.total_latency_us > rec.detected_at_us + rec.replan_us,
            "end-to-end latency must include detection and re-planning"
        );
    }

    #[test]
    fn hopeless_wire_degrades_to_structured_error() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        // Every delivery corrupt: no rung of the ladder can help.
        let plan = wire_plan(1, 1.0, 0.0, 2);
        let err = run_allreduce_verified(
            &p,
            &spec,
            dpml2(),
            1 << 16,
            &plan,
            IntegrityPolicy::default(),
        )
        .unwrap_err();
        let VerifiedError::Integrity(e) = err else {
            panic!("expected an integrity error, got {err:?}");
        };
        assert_eq!(e.kind, IntegrityErrorKind::RecoveryFailed);
        assert!(
            e.attempts >= 3,
            "budget 2 means 3 attempts, got {}",
            e.attempts
        );

        // A flat algorithm has no durable deposits: restart path, then
        // BudgetExhausted.
        let err = run_allreduce_verified(
            &p,
            &spec,
            Algorithm::Ring,
            1 << 16,
            &plan,
            IntegrityPolicy::default(),
        )
        .unwrap_err();
        let VerifiedError::Integrity(e) = err else {
            panic!("expected an integrity error, got {err:?}");
        };
        assert_eq!(e.kind, IntegrityErrorKind::BudgetExhausted);
    }

    #[test]
    fn flat_algorithm_restarts_until_a_quiet_run() {
        let p = cluster_b();
        let spec = p.spec(2, 4).unwrap();
        // Shallow budget on a moderately hostile wire: the ring run dies
        // sometimes and restarts reseed until an attempt survives.
        let plan = wire_plan(2, 0.35, 0.1, 2);
        let rep = run_allreduce_verified(
            &p,
            &spec,
            Algorithm::Ring,
            1 << 16,
            &plan,
            IntegrityPolicy {
                max_restarts: 20,
                ..IntegrityPolicy::default()
            },
        )
        .unwrap();
        assert!(
            rep.recovery.is_none(),
            "flat algorithms never partition-recover"
        );
        assert!(rep.total_latency_us >= rep.report.latency_us());
    }
}
