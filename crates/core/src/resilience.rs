//! Fault-aware execution: run collectives under an injected
//! [`FaultPlan`] with retry, backoff, and graceful fallback from SHArP
//! to host-based schedules.
//!
//! The paper's SHArP designs assume the fabric grants an aggregation
//! group and completes every operation; production fabrics deny groups
//! (resource exhaustion) and time out operations (congested or flapping
//! links). This module implements the degradation ladder an MPI library
//! uses in practice:
//!
//! 1. **Group denial** is detected at setup time → fall back immediately
//!    to a host-based schedule (no retry can help).
//! 2. **Operation timeout** is transient → retry the SHArP schedule with
//!    exponential backoff, up to [`FaultPolicy::max_sharp_retries`].
//! 3. **Retries exhausted** → fall back to the host-based schedule.
//!
//! Every path still verifies the collective's data movement, so a
//! degraded run can be slower but never wrong. The virtual-time cost of
//! failed attempts (each burns `op_timeout` waiting) and backoff is
//! accounted into [`ResilientReport::latency_us`].

use crate::algorithms::{Algorithm, FlatAlg};
use crate::run::{AllreduceReport, RunError};
use dpml_engine::{SimConfig, SimError, Simulator};
use dpml_fabric::Preset;
use dpml_faults::FaultPlan;
use dpml_sharp::SharpFabric;
use dpml_topology::{ClusterSpec, RankMap};
use serde::{Deserialize, Serialize};

/// Retry/backoff policy for SHArP resource faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPolicy {
    /// SHArP operation retries before falling back to a host schedule.
    pub max_sharp_retries: u32,
    /// Backoff before the first retry, doubling per retry (microseconds).
    pub backoff_us: f64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_sharp_retries: 2,
            backoff_us: 10.0,
        }
    }
}

/// Outcome of a fault-aware run: the verified report plus what the
/// degradation machinery had to do to get it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilientReport {
    /// The verified report of the schedule that completed.
    pub report: AllreduceReport,
    /// Name of the algorithm that actually completed (differs from the
    /// requested one after a fallback).
    pub completed_with: String,
    /// SHArP attempts that timed out and were retried.
    pub sharp_retries: u32,
    /// Whether the run fell back from SHArP to a host-based schedule.
    pub fell_back: bool,
    /// End-to-end latency including time burned by failed attempts and
    /// backoff (microseconds).
    pub latency_us: f64,
}

/// Run `alg` under `plan` with no degradation machinery: one attempt,
/// fault effects (noise, link degradation, SHArP faults) applied, errors
/// surfaced as-is. The zero plan reproduces [`crate::run::run_allreduce`]
/// bit-for-bit.
pub fn run_allreduce_faulted(
    preset: &Preset,
    spec: &ClusterSpec,
    alg: Algorithm,
    bytes: u64,
    plan: &FaultPlan,
) -> Result<AllreduceReport, RunError> {
    simulate_attempt(preset, spec, alg, bytes, plan, 0)
}

/// Run `alg` under `plan` with the full degradation ladder described in
/// the module docs. The returned report always verifies.
pub fn run_allreduce_resilient(
    preset: &Preset,
    spec: &ClusterSpec,
    alg: Algorithm,
    bytes: u64,
    plan: &FaultPlan,
    policy: FaultPolicy,
) -> Result<ResilientReport, RunError> {
    if !alg.needs_sharp() {
        let report = simulate_attempt(preset, spec, alg, bytes, plan, 0)?;
        return Ok(finish(report, 0, false, 0.0));
    }

    // SHArP path. Group denial is permanent: skip straight to fallback.
    if plan.sharp.deny_groups {
        return fallback(preset, spec, alg, bytes, plan, 0, 0.0);
    }

    let mut retries = 0u32;
    let mut penalty_us = 0.0;
    loop {
        match simulate_attempt(preset, spec, alg, bytes, plan, retries) {
            Ok(report) => return Ok(finish(report, retries, false, penalty_us)),
            Err(RunError::Sim(SimError::SharpTimeout { .. })) => {
                // The failed attempt sat on the fabric for the full op
                // timeout; the retry then waits out the backoff.
                penalty_us += plan.sharp.op_timeout * 1e6;
                if retries >= policy.max_sharp_retries {
                    return fallback(preset, spec, alg, bytes, plan, retries, penalty_us);
                }
                penalty_us += policy.backoff_us * f64::from(1u32 << retries.min(20));
                retries += 1;
            }
            Err(RunError::Sim(SimError::SharpDenied(_))) => {
                return fallback(preset, spec, alg, bytes, plan, retries, penalty_us);
            }
            Err(other) => return Err(other),
        }
    }
}

/// The host-based schedule used when SHArP is unavailable: the classic
/// single-leader hierarchy (flat recursive doubling at ppn=1) — latency
/// shaped, like the small-message sizes SHArP targets.
pub fn host_fallback_algorithm(spec: &ClusterSpec) -> Algorithm {
    if spec.ppn == 1 {
        Algorithm::RecursiveDoubling
    } else {
        Algorithm::SingleLeader {
            inner: FlatAlg::RecursiveDoubling,
        }
    }
}

fn fallback(
    preset: &Preset,
    spec: &ClusterSpec,
    requested: Algorithm,
    bytes: u64,
    plan: &FaultPlan,
    retries: u32,
    penalty_us: f64,
) -> Result<ResilientReport, RunError> {
    let host = host_fallback_algorithm(spec);
    debug_assert!(!host.needs_sharp(), "fallback must not require SHArP");
    let mut report = simulate_attempt(preset, spec, host, bytes, plan, 0)?;
    // The report records the *requested* algorithm so result tables stay
    // keyed by what the caller asked for; `completed_with` carries the
    // substitute.
    report.algorithm = requested.name();
    Ok(finish_with(report, host.name(), retries, true, penalty_us))
}

fn finish(
    report: AllreduceReport,
    retries: u32,
    fell_back: bool,
    penalty_us: f64,
) -> ResilientReport {
    let completed_with = report.algorithm.clone();
    finish_with(report, completed_with, retries, fell_back, penalty_us)
}

fn finish_with(
    mut report: AllreduceReport,
    completed_with: impl Into<String>,
    retries: u32,
    fell_back: bool,
    penalty_us: f64,
) -> ResilientReport {
    report.report.stats.sharp_retries = u64::from(retries);
    report.report.stats.sharp_fallbacks = u64::from(fell_back);
    let latency_us = report.latency_us + penalty_us;
    ResilientReport {
        report,
        completed_with: completed_with.into(),
        sharp_retries: retries,
        fell_back,
        latency_us,
    }
}

/// One simulation attempt with faults applied; mirrors
/// [`crate::run::run_allreduce_placed`] plus the fault plumbing.
fn simulate_attempt(
    preset: &Preset,
    spec: &ClusterSpec,
    alg: Algorithm,
    bytes: u64,
    plan: &FaultPlan,
    attempt: u32,
) -> Result<AllreduceReport, RunError> {
    let map = RankMap::block(spec);
    let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch)?;
    let world = alg.build(&map, bytes)?;
    let report = if alg.needs_sharp() {
        let params = preset.fabric.sharp.ok_or(RunError::NoSharpOnFabric)?;
        let oracle = SharpFabric::new(params, cfg.tree.clone(), map);
        Simulator::new(&cfg)
            .with_sharp(&oracle)
            .with_faults(plan)
            .with_fault_attempt(attempt)
            .run(&world)?
    } else {
        Simulator::new(&cfg)
            .with_faults(plan)
            .with_fault_attempt(attempt)
            .run(&world)?
    };
    report.verify_allreduce()?;
    Ok(AllreduceReport {
        algorithm: alg.name(),
        bytes,
        latency_us: report.latency_us(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpml_fabric::presets::{cluster_a, cluster_b};
    use dpml_faults::SharpFaults;

    #[test]
    fn zero_plan_matches_unfaulted_run() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        let alg = Algorithm::Dpml {
            leaders: 2,
            inner: FlatAlg::RecursiveDoubling,
        };
        let clean = crate::run::run_allreduce(&p, &spec, alg, 32 * 1024).unwrap();
        let faulted = run_allreduce_faulted(&p, &spec, alg, 32 * 1024, &FaultPlan::zero()).unwrap();
        assert_eq!(clean.latency_us.to_bits(), faulted.latency_us.to_bits());
        assert_eq!(clean.report, faulted.report);
    }

    #[test]
    fn denial_falls_back_and_verifies() {
        let p = cluster_a();
        let spec = p.spec(4, 4).unwrap();
        let plan = FaultPlan {
            sharp: SharpFaults {
                deny_groups: true,
                ..Default::default()
            },
            ..FaultPlan::zero()
        };
        let rep = run_allreduce_resilient(
            &p,
            &spec,
            Algorithm::SharpSocketLeader,
            256,
            &plan,
            FaultPolicy::default(),
        )
        .unwrap();
        assert!(rep.fell_back);
        assert_eq!(rep.sharp_retries, 0);
        assert_eq!(rep.report.report.stats.sharp_fallbacks, 1);
        assert_eq!(
            rep.report.report.stats.sharp_ops, 0,
            "no SHArP op may run after denial"
        );
        assert_eq!(rep.report.algorithm, Algorithm::SharpSocketLeader.name());
        assert_eq!(rep.completed_with, host_fallback_algorithm(&spec).name());
        rep.report.report.verify_allreduce().unwrap();
    }

    #[test]
    fn transient_timeouts_retry_then_succeed() {
        let p = cluster_a();
        let spec = p.spec(4, 4).unwrap();
        let plan = FaultPlan {
            sharp: SharpFaults {
                flaky_attempts: 2,
                op_timeout: 1e-4,
                ..Default::default()
            },
            ..FaultPlan::zero()
        };
        let rep = run_allreduce_resilient(
            &p,
            &spec,
            Algorithm::SharpSocketLeader,
            256,
            &plan,
            FaultPolicy {
                max_sharp_retries: 3,
                backoff_us: 10.0,
            },
        )
        .unwrap();
        assert!(!rep.fell_back);
        assert_eq!(rep.sharp_retries, 2);
        assert_eq!(rep.report.report.stats.sharp_ops, 1);
        // Two failed attempts burn 100us each plus 10+20us backoff.
        assert!(rep.latency_us > rep.report.latency_us + 220.0 - 1e-9);
    }

    #[test]
    fn exhausted_retries_fall_back() {
        let p = cluster_a();
        let spec = p.spec(4, 4).unwrap();
        let plan = FaultPlan {
            sharp: SharpFaults {
                flaky_attempts: 10,
                op_timeout: 1e-4,
                ..Default::default()
            },
            ..FaultPlan::zero()
        };
        let rep = run_allreduce_resilient(
            &p,
            &spec,
            Algorithm::SharpSocketLeader,
            256,
            &plan,
            FaultPolicy {
                max_sharp_retries: 2,
                backoff_us: 10.0,
            },
        )
        .unwrap();
        assert!(rep.fell_back);
        assert_eq!(rep.sharp_retries, 2);
        rep.report.report.verify_allreduce().unwrap();
    }

    #[test]
    fn non_sharp_algorithms_pass_through() {
        let p = cluster_b();
        let spec = p.spec(2, 4).unwrap();
        let plan = FaultPlan::canonical(7, 0.5);
        let rep = run_allreduce_resilient(
            &p,
            &spec,
            Algorithm::Ring,
            8 * 1024,
            &plan,
            FaultPolicy::default(),
        )
        .unwrap();
        assert!(!rep.fell_back);
        assert_eq!(rep.sharp_retries, 0);
        assert_eq!(rep.completed_with, Algorithm::Ring.name());
    }
}
