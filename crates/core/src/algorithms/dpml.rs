//! Data Partitioning-based Multi-Leader allreduce — paper Section 4.1
//! (Figure 2) and the pipelined variant of Section 4.2.
//!
//! With `l` leaders per node and input vector `V` of `n` bytes split into
//! partitions `P_0..P_{l-1}`:
//!
//! 1. **Local copy to shared memory** — every local rank `i` writes `D_ij`
//!    (its contribution to partition `j`) into slot `i` of leader `j`'s
//!    shared region: `l` concurrent shared-memory gathers.
//! 2. **Intra-node reduction by leaders** — leader `j` folds the `ppn`
//!    slots of partition `j` (`ppn - 1` passes over `n/l` bytes), all
//!    leaders in parallel.
//! 3. **Inter-node allreduce by leaders** — leader `j` allreduces partition
//!    `j` with the `j`-th leaders of all other nodes: `l` concurrent
//!    inter-node collectives on `n/l`-byte messages.
//! 4. **Local copy to individual processes** — each leader publishes its
//!    fully-reduced partition; every rank copies all `l` partitions out.
//!
//! `DPML-Pipelined` further splits each leader's partition into `k`
//! sub-partitions whose phase-3 exchanges proceed as `k` interleaved
//! non-blocking allreduces, keeping Omni-Path in its high-message-rate zone
//! even for very large vectors.

use crate::algorithms::flat::{emit_flat_range, prev_pow2};
use crate::algorithms::{BuildError, FlatAlg};
use dpml_engine::program::{
    BufKey, ByteRange, ProgramBuilder, WorldProgram, BUF_INPUT, BUF_RESULT,
};
use dpml_engine::Phase;
use dpml_topology::{LeaderPolicy, LeaderSet, NodeId, RankMap};

/// Emit phases 1 and 2 (shared-memory gather + leader reduction) plus the
/// gather barrier. Returns the leader set and per-leader partitions.
fn emit_local_phases(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    map: &RankMap,
    range: ByteRange,
    leaders: u32,
) -> Result<(LeaderSet, Vec<ByteRange>), BuildError> {
    let spec = *map.spec();
    let ppn = spec.ppn;
    if leaders == 0 || leaders > ppn {
        return Err(BuildError::TooManyLeaders { leaders, ppn });
    }
    let set = LeaderPolicy::PerNode(leaders)
        .build(map)
        .map_err(|_| BuildError::TooManyLeaders { leaders, ppn })?;
    let l = set.leaders_per_node();
    let parts: Vec<ByteRange> = (0..l).map(|j| range.subrange(l, j)).collect();

    // Shared slots: slot(j, i) = leader j's region, writer local rank i.
    let slot_base = b.fresh_shared(l * ppn);
    let slot = |j: u32, i: u32| BufKey::Shared(slot_base + j * ppn + i);

    for node in 0..spec.num_nodes {
        let node = NodeId(node);
        let members = map.ranks_on_node(node);
        let gather_done = b.fresh_barrier();
        w.register_barrier(gather_done, members.clone());

        for (i, &r) in members.iter().enumerate() {
            let my_socket = map.socket_of(r);
            let prog = w.rank(r);
            // Phase 1: deposit each partition into the owning leader's
            // region (cross-socket when the leader lives on the other
            // socket).
            prog.set_phase(Phase::ShmGather);
            for j in 0..l {
                if parts[j as usize].is_empty() {
                    continue;
                }
                let leader_rank = set.leader_rank(node, j);
                let cross = map.socket_of(leader_rank) != my_socket;
                prog.copy(BUF_INPUT, slot(j, i as u32), parts[j as usize], cross);
            }
            prog.barrier(gather_done);
            // Phase 2: leaders fold their partition across all ppn slots.
            if let Some(j) = set.leader_index(r) {
                let part = parts[j as usize];
                if !part.is_empty() {
                    prog.set_phase(Phase::LeaderReduce);
                    prog.copy(slot(j, 0), BUF_RESULT, part, false);
                    if ppn > 1 {
                        let srcs: Vec<BufKey> = (1..ppn).map(|i2| slot(j, i2)).collect();
                        prog.reduce(srcs, BUF_RESULT, part);
                    }
                }
            }
        }
    }
    Ok((set, parts))
}

/// Emit phase 4 (publish + local broadcast copies).
fn emit_broadcast_phase(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    map: &RankMap,
    set: &LeaderSet,
    parts: &[ByteRange],
) {
    let spec = *map.spec();
    let l = set.leaders_per_node();
    let bcast_base = b.fresh_shared(l);
    for node in 0..spec.num_nodes {
        let node = NodeId(node);
        let members = map.ranks_on_node(node);
        let publish_done = b.fresh_barrier();
        w.register_barrier(publish_done, members.clone());
        for &r in &members {
            let my_socket = map.socket_of(r);
            let my_leader = set.leader_index(r);
            let prog = w.rank(r);
            prog.set_phase(Phase::Broadcast);
            if let Some(j) = my_leader {
                if !parts[j as usize].is_empty() {
                    prog.copy(
                        BUF_RESULT,
                        BufKey::Shared(bcast_base + j),
                        parts[j as usize],
                        false,
                    );
                }
            }
            prog.barrier(publish_done);
            for j in 0..l {
                if Some(j) == my_leader || parts[j as usize].is_empty() {
                    continue;
                }
                let leader_rank = set.leader_rank(node, j);
                let cross = map.socket_of(leader_rank) != my_socket;
                prog.copy(
                    BufKey::Shared(bcast_base + j),
                    BUF_RESULT,
                    parts[j as usize],
                    cross,
                );
            }
        }
    }
}

/// Emit the full DPML allreduce with a blocking phase-3 algorithm.
pub fn emit_dpml(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    map: &RankMap,
    range: ByteRange,
    leaders: u32,
    inner: FlatAlg,
) -> Result<(), BuildError> {
    let (set, parts) = emit_local_phases(w, b, map, range, leaders)?;
    // Phase 3: l concurrent inter-node allreduces, one per leader index.
    for j in 0..set.leaders_per_node() {
        if parts[j as usize].is_empty() {
            continue;
        }
        let comm = set.leader_comm(j);
        emit_flat_range(w, b, &comm, BUF_RESULT, parts[j as usize], inner);
    }
    emit_broadcast_phase(w, b, map, &set, &parts);
    Ok(())
}

/// Emit DPML with the phase-3 allreduce pipelined over `k` sub-partitions
/// (Section 4.2). The `k` chunks advance as interleaved non-blocking
/// recursive-doubling allreduces: while chunk `c`'s received data is being
/// reduced, chunk `c+1`'s messages are already in flight.
pub fn emit_dpml_pipelined(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    map: &RankMap,
    range: ByteRange,
    leaders: u32,
    k: u32,
) -> Result<(), BuildError> {
    if k == 0 {
        return Err(BuildError::ZeroChunks);
    }
    let (set, parts) = emit_local_phases(w, b, map, range, leaders)?;
    for j in 0..set.leaders_per_node() {
        let part = parts[j as usize];
        if part.is_empty() {
            continue;
        }
        let comm = set.leader_comm(j);
        emit_pipelined_rd(w, b, &comm, BUF_RESULT, part, k);
    }
    emit_broadcast_phase(w, b, map, &set, &parts);
    Ok(())
}

/// Pipelined recursive doubling: `k` chunk-allreduces interleaved at step
/// granularity. Non-power-of-two member counts fold extras in/out exactly
/// like plain recursive doubling (whole-range pre/post exchanges).
fn emit_pipelined_rd(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[dpml_topology::Rank],
    buf: BufKey,
    range: ByteRange,
    k: u32,
) {
    let p = comm.len();
    if p <= 1 || range.is_empty() {
        return;
    }
    for &r in comm {
        w.rank(r).set_phase(Phase::InterLeader);
    }
    let chunks: Vec<ByteRange> = (0..k).map(|c| range.subrange(k, c)).collect();
    let scratch_base = b.fresh_priv(k);
    let scratch = |c: u32| BufKey::Priv(scratch_base + c);

    // Fold extras (same prologue as plain RD, over the whole range).
    let pof2 = prev_pow2(p);
    let rem = p - pof2;
    let pre_tag = b.fresh_tags(1);
    let whole_scratch = BufKey::Priv(b.fresh_priv(1));
    for i in 0..rem {
        let even = comm[2 * i];
        let odd = comm[2 * i + 1];
        w.rank(odd).send(even, pre_tag, buf, range);
        let pe = w.rank(even);
        pe.recv(odd, pre_tag, whole_scratch);
        pe.reduce(vec![whole_scratch], buf, range);
    }
    let core: Vec<dpml_topology::Rank> = (0..pof2)
        .map(|i| if i < rem { comm[2 * i] } else { comm[i + rem] })
        .collect();

    let steps = pof2.trailing_zeros();
    let tag0 = b.fresh_tags(steps * k);
    let tag = |step: u32, c: u32| tag0 + step * k + c;

    // Software-pipelined steps: post all chunks' exchanges for a step, then
    // for each chunk wait + reduce + (if not last step) immediately post
    // the next step's exchange for that chunk before touching the next
    // chunk. Request ids are tracked per chunk.
    for (i, &me) in core.iter().enumerate() {
        if steps == 0 {
            break;
        }
        let mut pending = Vec::with_capacity(k as usize);
        let peer0 = core[i ^ 1];
        {
            let prog = w.rank(me);
            for c in 0..k {
                if chunks[c as usize].is_empty() {
                    pending.push(None);
                    continue;
                }
                let s = prog.isend(peer0, tag(0, c), buf, chunks[c as usize]);
                let r = prog.irecv(peer0, tag(0, c), scratch(c));
                pending.push(Some((s, r)));
            }
        }
        for step in 0..steps {
            let next_peer = if step + 1 < steps {
                Some(core[i ^ (1 << (step + 1))])
            } else {
                None
            };
            let prog = w.rank(me);
            for c in 0..k {
                let Some((s, r)) = pending[c as usize] else {
                    continue;
                };
                prog.wait_all(vec![s, r]);
                prog.reduce(vec![scratch(c)], buf, chunks[c as usize]);
                if let Some(np) = next_peer {
                    let s2 = prog.isend(np, tag(step + 1, c), buf, chunks[c as usize]);
                    let r2 = prog.irecv(np, tag(step + 1, c), scratch(c));
                    pending[c as usize] = Some((s2, r2));
                }
            }
        }
    }

    // Unfold extras.
    let post_tag = b.fresh_tags(1);
    for i in 0..rem {
        let even = comm[2 * i];
        let odd = comm[2 * i + 1];
        w.rank(even).send(odd, post_tag, buf, range);
        w.rank(odd).recv(even, post_tag, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpml_engine::{SimConfig, Simulator};
    use dpml_fabric::presets::{cluster_b, cluster_c};
    use dpml_topology::ClusterSpec;

    fn sim(nodes: u32, ppn: u32) -> (RankMap, SimConfig) {
        let preset = cluster_b();
        let spec = ClusterSpec::new(nodes, 2, 14, ppn).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric, preset.switch).unwrap();
        (map, cfg)
    }

    fn run_dpml(nodes: u32, ppn: u32, n: u64, l: u32, inner: FlatAlg) -> dpml_engine::RunReport {
        let (map, cfg) = sim(nodes, ppn);
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), n);
        let mut b = ProgramBuilder::new();
        emit_dpml(&mut w, &mut b, &map, ByteRange::whole(n), l, inner).unwrap();
        let rep = Simulator::new(&cfg).run(&w).unwrap();
        rep.verify_allreduce()
            .unwrap_or_else(|e| panic!("l={l} nodes={nodes} ppn={ppn}: {e}"));
        rep
    }

    #[test]
    fn dpml_correct_basic() {
        run_dpml(4, 4, 4096, 2, FlatAlg::RecursiveDoubling);
    }

    #[test]
    fn dpml_correct_all_leader_counts() {
        for l in [1, 2, 4, 7, 8] {
            run_dpml(4, 8, 10_000, l, FlatAlg::RecursiveDoubling);
        }
    }

    #[test]
    fn dpml_correct_non_pow2_nodes() {
        run_dpml(6, 4, 2048, 4, FlatAlg::RecursiveDoubling);
        run_dpml(5, 3, 999, 3, FlatAlg::Rabenseifner);
    }

    #[test]
    fn dpml_correct_all_inner_algorithms() {
        for inner in [
            FlatAlg::RecursiveDoubling,
            FlatAlg::Rabenseifner,
            FlatAlg::Ring,
        ] {
            run_dpml(4, 4, 1 << 16, 4, inner);
        }
    }

    #[test]
    fn dpml_tiny_vector_more_leaders_than_bytes() {
        run_dpml(2, 8, 4, 8, FlatAlg::RecursiveDoubling);
    }

    #[test]
    fn dpml_single_node() {
        let rep = run_dpml(1, 8, 8192, 4, FlatAlg::RecursiveDoubling);
        assert_eq!(rep.stats.inter_node_messages, 0);
    }

    #[test]
    fn dpml_rejects_bad_leader_counts() {
        let (map, _) = sim(2, 4);
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), 64);
        let mut b = ProgramBuilder::new();
        assert_eq!(
            emit_dpml(&mut w, &mut b, &map, ByteRange::whole(64), 5, FlatAlg::Ring),
            Err(BuildError::TooManyLeaders { leaders: 5, ppn: 4 })
        );
        assert_eq!(
            emit_dpml(&mut w, &mut b, &map, ByteRange::whole(64), 0, FlatAlg::Ring),
            Err(BuildError::TooManyLeaders { leaders: 0, ppn: 4 })
        );
    }

    #[test]
    fn dpml_inter_node_bytes_shrink_with_leaders() {
        // Each leader ships 1/l of the vector per RD step: total inter-node
        // bytes are independent of l, but per-message size shrinks.
        let n = 1 << 20;
        let r1 = run_dpml(4, 8, n, 1, FlatAlg::RecursiveDoubling);
        let r4 = run_dpml(4, 8, n, 4, FlatAlg::RecursiveDoubling);
        assert_eq!(r1.stats.inter_node_bytes, r4.stats.inter_node_bytes);
        assert_eq!(
            r4.stats.inter_node_messages,
            4 * r1.stats.inter_node_messages
        );
    }

    #[test]
    fn dpml_large_messages_benefit_from_leaders() {
        // The paper's central claim (Figs. 4-7): more leaders cut latency
        // for large messages.
        let n = 1 << 20;
        let t1 = run_dpml(8, 28, n, 1, FlatAlg::RecursiveDoubling).makespan();
        let t4 = run_dpml(8, 28, n, 4, FlatAlg::RecursiveDoubling).makespan();
        let t16 = run_dpml(8, 28, n, 16, FlatAlg::RecursiveDoubling).makespan();
        assert!(t4.seconds() < t1.seconds(), "t1={t1} t4={t4}");
        assert!(t16.seconds() < t4.seconds(), "t4={t4} t16={t16}");
        assert!(
            t1.seconds() / t16.seconds() > 2.0,
            "expected >2x speedup, got {:.2}",
            t1.seconds() / t16.seconds()
        );
    }

    fn run_pipelined(nodes: u32, ppn: u32, n: u64, l: u32, k: u32) -> dpml_engine::RunReport {
        let (map, cfg) = sim(nodes, ppn);
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), n);
        let mut b = ProgramBuilder::new();
        emit_dpml_pipelined(&mut w, &mut b, &map, ByteRange::whole(n), l, k).unwrap();
        let rep = Simulator::new(&cfg).run(&w).unwrap();
        rep.verify_allreduce()
            .unwrap_or_else(|e| panic!("l={l} k={k}: {e}"));
        rep
    }

    #[test]
    fn pipelined_correct_various_k() {
        for k in [1, 2, 3, 8] {
            run_pipelined(4, 4, 100_000, 4, k);
        }
    }

    #[test]
    fn pipelined_correct_non_pow2_nodes() {
        run_pipelined(6, 4, 65536, 4, 4);
    }

    #[test]
    fn pipelined_k1_matches_plain_message_counts() {
        let n = 1 << 18;
        let plain = run_dpml(4, 4, n, 4, FlatAlg::RecursiveDoubling);
        let piped = run_pipelined(4, 4, n, 4, 1);
        assert_eq!(
            plain.stats.inter_node_messages,
            piped.stats.inter_node_messages
        );
    }

    #[test]
    fn pipelined_zero_chunks_rejected() {
        let (map, _) = sim(2, 2);
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), 64);
        let mut b = ProgramBuilder::new();
        assert_eq!(
            emit_dpml_pipelined(&mut w, &mut b, &map, ByteRange::whole(64), 2, 0),
            Err(BuildError::ZeroChunks)
        );
    }

    #[test]
    fn pipelined_helps_on_omni_path_large_messages() {
        // On the Omni-Path model (per-flow ≈ node bandwidth), chunking very
        // large per-leader messages overlaps latency with transfer.
        let preset = cluster_c();
        let spec = ClusterSpec::new(8, 2, 14, 28).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch).unwrap();
        let n = 4 << 20;
        let run_k = |k: u32| {
            let mut w = dpml_engine::WorldProgram::new(map.world_size(), n);
            let mut b = ProgramBuilder::new();
            emit_dpml_pipelined(&mut w, &mut b, &map, ByteRange::whole(n), 16, k).unwrap();
            let rep = Simulator::new(&cfg).run(&w).unwrap();
            rep.verify_allreduce().unwrap();
            rep.makespan().seconds()
        };
        let t1 = run_k(1);
        let t8 = run_k(8);
        assert!(t8 < t1, "pipelining should help: k1={t1} k8={t8}");
    }
}
