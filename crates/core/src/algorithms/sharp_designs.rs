//! SHArP-offloaded allreduce designs — paper Section 4.3.
//!
//! Both designs gather locally to a small number of leader processes, run a
//! *single* in-network aggregation over all leaders, and broadcast locally:
//!
//! * **Node-level leader**: one leader per node. Simple, but on dual-socket
//!   nodes half the ranks pay the inter-socket penalty during both gather
//!   and broadcast.
//! * **Socket-level leader**: one leader per socket. Gather/broadcast stay
//!   socket-local; the SHArP group doubles in size (2h members) but remains
//!   far below the fabric's concurrency limits.

use crate::algorithms::BuildError;
use dpml_engine::program::{
    BufKey, ByteRange, ProgramBuilder, WorldProgram, BUF_INPUT, BUF_RESULT,
};
use dpml_engine::Phase;
use dpml_topology::{LeaderPolicy, NodeId, RankMap};

/// Emit a SHArP-offloaded allreduce with the given leader policy
/// (`NodeLevel` or `SocketLevel`).
pub fn emit_sharp_leader(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    map: &RankMap,
    range: ByteRange,
    policy: LeaderPolicy,
) -> Result<(), BuildError> {
    let spec = *map.spec();
    let ppn = spec.ppn;
    let whole = range;
    let set = policy
        .build(map)
        .expect("node/socket leader policies always fit");
    let l = set.leaders_per_node();

    // One SHArP group containing every leader of every node.
    let group = b.fresh_group();
    let mut group_members = Vec::with_capacity((spec.num_nodes * l) as usize);
    for node in 0..spec.num_nodes {
        for j in 0..l {
            group_members.push(set.leader_rank(NodeId(node), j));
        }
    }
    w.register_sharp_group(group, group_members);

    // Shared slots: gather slot per local rank + bcast slot per leader.
    let gather_base = b.fresh_shared(ppn);
    let bcast_base = b.fresh_shared(l);

    for node in 0..spec.num_nodes {
        let node = NodeId(node);
        let members = map.ranks_on_node(node);
        let gather_done = b.fresh_barrier();
        let publish_done = b.fresh_barrier();
        w.register_barrier(gather_done, members.clone());
        w.register_barrier(publish_done, members.clone());

        for &r in &members {
            let local = map.local_of(r);
            let my_leader_j = set.leader_for_local(&spec, local);
            let leader_rank = set.leader_rank(node, my_leader_j);
            let cross = map.socket_of(leader_rank) != map.socket_of(r);
            let prog = w.rank(r);
            // Gather: deposit into own slot of the responsible leader's
            // region.
            prog.set_phase(Phase::ShmGather);
            prog.copy(
                BUF_INPUT,
                BufKey::Shared(gather_base + local.0),
                whole,
                cross,
            );
            prog.barrier(gather_done);
            if let Some(j) = set.leader_index(r) {
                // Leader folds the slots of the ranks it serves.
                let served: Vec<u32> = (0..ppn)
                    .filter(|&i| set.leader_for_local(&spec, dpml_topology::LocalRank(i)) == j)
                    .collect();
                let first = served[0];
                let prog = w.rank(r);
                prog.set_phase(Phase::LeaderReduce);
                prog.copy(
                    BufKey::Shared(gather_base + first),
                    BUF_RESULT,
                    whole,
                    false,
                );
                if served.len() > 1 {
                    let srcs: Vec<BufKey> = served[1..]
                        .iter()
                        .map(|&i| BufKey::Shared(gather_base + i))
                        .collect();
                    prog.reduce(srcs, BUF_RESULT, whole);
                }
                // In-network aggregation across all leaders everywhere.
                prog.set_phase(Phase::Sharp);
                prog.sharp(group, BUF_RESULT, BUF_RESULT, whole);
                // Publish for the local broadcast.
                prog.set_phase(Phase::Broadcast);
                prog.copy(BUF_RESULT, BufKey::Shared(bcast_base + j), whole, false);
            }
            let prog = w.rank(r);
            prog.set_phase(Phase::Broadcast);
            prog.barrier(publish_done);
            if set.leader_index(r).is_none() {
                let cross2 = map.socket_of(leader_rank) != map.socket_of(r);
                prog.copy(
                    BufKey::Shared(bcast_base + my_leader_j),
                    BUF_RESULT,
                    whole,
                    cross2,
                );
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpml_engine::{SimConfig, Simulator};
    use dpml_fabric::presets::cluster_a;
    use dpml_sharp::SharpFabric;
    use dpml_topology::ClusterSpec;

    fn run(nodes: u32, ppn: u32, n: u64, policy: LeaderPolicy) -> dpml_engine::RunReport {
        let preset = cluster_a();
        let spec = ClusterSpec::new(nodes, 2, 14, ppn).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch).unwrap();
        let oracle = SharpFabric::new(
            preset.fabric.sharp.expect("cluster A has SHArP"),
            cfg.tree.clone(),
            map.clone(),
        );
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), n);
        let mut b = ProgramBuilder::new();
        emit_sharp_leader(&mut w, &mut b, &map, ByteRange::whole(n), policy).unwrap();
        let rep = Simulator::new(&cfg).with_sharp(&oracle).run(&w).unwrap();
        rep.verify_allreduce().unwrap();
        rep
    }

    #[test]
    fn node_leader_correct() {
        let rep = run(4, 4, 1024, LeaderPolicy::NodeLevel);
        assert_eq!(rep.stats.sharp_ops, 1);
        assert_eq!(rep.stats.inter_node_messages, 0);
    }

    #[test]
    fn socket_leader_correct() {
        let rep = run(4, 8, 1024, LeaderPolicy::SocketLevel);
        assert_eq!(rep.stats.sharp_ops, 1);
    }

    #[test]
    fn single_ppn_designs_equivalent() {
        // With one process per node the two designs are the same schedule
        // (paper Section 6.3).
        let a = run(8, 1, 256, LeaderPolicy::NodeLevel);
        let b = run(8, 1, 256, LeaderPolicy::SocketLevel);
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    fn socket_leader_beats_node_leader_at_full_subscription() {
        // The cross-socket gather/broadcast penalty (Section 4.3).
        let node = run(8, 28, 2048, LeaderPolicy::NodeLevel);
        let socket = run(8, 28, 2048, LeaderPolicy::SocketLevel);
        assert!(
            socket.makespan() < node.makespan(),
            "socket {} vs node {}",
            socket.latency_us(),
            node.latency_us()
        );
    }

    #[test]
    fn odd_ppn_socket_leader() {
        run(3, 5, 500, LeaderPolicy::SocketLevel);
    }
}
