//! The classic single-leader hierarchical allreduce (paper Section 2.1).
//!
//! This is the "default host-based scheme" of the paper's figures: the
//! design MVAPICH2-2.2 uses for shared-memory-aware allreduce. Per node:
//!
//! 1. every local rank copies its input into its slot of the node's shared
//!    region,
//! 2. the node leader (local rank 0) folds all `ppn` slots — `ppn - 1`
//!    reduction passes on one core, the bottleneck DPML removes,
//! 3. leaders run an inter-node allreduce,
//! 4. the leader publishes the result in shared memory and every local rank
//!    copies it out.

use crate::algorithms::flat::emit_flat_range;
use crate::algorithms::{BuildError, FlatAlg};
use dpml_engine::program::{
    BufKey, ByteRange, ProgramBuilder, WorldProgram, BUF_INPUT, BUF_RESULT,
};
use dpml_engine::Phase;
use dpml_topology::{LeaderPolicy, NodeId, RankMap};

/// Emit the single-leader hierarchical allreduce.
pub fn emit_single_leader(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    map: &RankMap,
    range: ByteRange,
    inner: FlatAlg,
) -> Result<(), BuildError> {
    let spec = *map.spec();
    let ppn = spec.ppn;
    let whole = range;
    let set = LeaderPolicy::NodeLevel
        .build(map)
        .expect("one leader always fits");

    // Shared ids: one gather slot per local rank, one broadcast slot.
    let gather_base = b.fresh_shared(ppn);
    let bcast_slot = BufKey::Shared(b.fresh_shared(1));

    // Intra-node phases, one barrier pair per node.
    for node in 0..spec.num_nodes {
        let node = NodeId(node);
        let members = map.ranks_on_node(node);
        let gather_done = b.fresh_barrier();
        w.register_barrier(gather_done, members.clone());

        let leader = members[0];
        let leader_socket = map.socket_of(leader);
        for (i, &r) in members.iter().enumerate() {
            let cross = map.socket_of(r) != leader_socket;
            let slot = BufKey::Shared(gather_base + i as u32);
            let prog = w.rank(r);
            // Phase 1: everyone deposits into the leader's region.
            prog.set_phase(Phase::ShmGather);
            prog.copy(BUF_INPUT, slot, whole, cross);
            prog.barrier(gather_done);
            if r == leader {
                // Phase 2: leader folds ppn slots: one seed copy + ppn-1
                // reduction passes.
                prog.set_phase(Phase::LeaderReduce);
                prog.copy(BufKey::Shared(gather_base), BUF_RESULT, whole, false);
                if ppn > 1 {
                    let srcs: Vec<BufKey> =
                        (1..ppn).map(|j| BufKey::Shared(gather_base + j)).collect();
                    prog.reduce(srcs, BUF_RESULT, whole);
                }
            }
        }
        // Phase 4 is emitted after the inter-leader stage below (each
        // rank's program is sequential, so per-rank emission order is what
        // orders the phases).
    }

    // Phase 3: inter-node allreduce among leaders.
    let leader_comm = set.leader_comm(0);
    emit_flat_range(w, b, &leader_comm, BUF_RESULT, whole, inner);

    // Phase 4: publish + broadcast.
    for node in 0..spec.num_nodes {
        let node = NodeId(node);
        let members = map.ranks_on_node(node);
        let publish_done = b.fresh_barrier();
        w.register_barrier(publish_done, members.clone());
        let leader = members[0];
        let leader_socket = map.socket_of(leader);
        for &r in &members {
            let prog = w.rank(r);
            prog.set_phase(Phase::Broadcast);
            if r == leader {
                prog.copy(BUF_RESULT, bcast_slot, whole, false);
            }
            prog.barrier(publish_done);
            if r != leader {
                let cross = map.socket_of(r) != leader_socket;
                prog.copy(bcast_slot, BUF_RESULT, whole, cross);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpml_engine::{SimConfig, Simulator};
    use dpml_fabric::presets::cluster_b;
    use dpml_topology::ClusterSpec;

    fn run(nodes: u32, ppn: u32, n: u64, inner: FlatAlg) -> dpml_engine::RunReport {
        let preset = cluster_b();
        let spec = ClusterSpec::new(nodes, 2, 14, ppn).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric, preset.switch).unwrap();
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), n);
        let mut b = ProgramBuilder::new();
        emit_single_leader(&mut w, &mut b, &map, ByteRange::whole(n), inner).unwrap();
        let rep = Simulator::new(&cfg).run(&w).unwrap();
        rep.verify_allreduce().unwrap();
        rep
    }

    #[test]
    fn correct_small_cluster() {
        run(2, 4, 1024, FlatAlg::RecursiveDoubling);
    }

    #[test]
    fn correct_non_pow2_nodes_and_ppn() {
        run(3, 5, 997, FlatAlg::RecursiveDoubling);
        run(6, 3, 512, FlatAlg::Rabenseifner);
    }

    #[test]
    fn correct_single_node() {
        let rep = run(1, 8, 4096, FlatAlg::RecursiveDoubling);
        assert_eq!(rep.stats.inter_node_messages, 0);
    }

    #[test]
    fn correct_single_rank_per_node() {
        run(4, 1, 2048, FlatAlg::Ring);
    }

    #[test]
    fn only_leaders_talk_inter_node() {
        let rep = run(4, 4, 1 << 16, FlatAlg::RecursiveDoubling);
        // 4 leaders, lg(4)=2 RD steps, 1 msg each per step, both directions.
        assert_eq!(rep.stats.inter_node_messages, 4 * 2);
    }

    #[test]
    fn full_paper_shape_16x28() {
        let rep = run(16, 28, 8192, FlatAlg::RecursiveDoubling);
        assert!(rep.latency_us() > 0.0);
    }
}
