//! Allreduce schedule compilers.

pub mod dpml;
pub mod extensions;
pub mod flat;
pub mod hierarchical;
pub mod sharp_designs;

use dpml_engine::program::{ByteRange, ProgramBuilder, WorldProgram, BUF_RESULT};
use dpml_topology::{LeaderPolicy, RankMap};
use serde::{Deserialize, Serialize};

/// A flat (non-hierarchical) allreduce algorithm, used standalone or as the
/// inter-leader stage of hierarchical designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlatAlg {
    /// Recursive doubling: `ceil(lg p)` exchange-and-reduce steps on the
    /// full vector (latency-optimal for small messages).
    RecursiveDoubling,
    /// Rabenseifner: recursive-halving reduce-scatter followed by a
    /// recursive-doubling allgather (bandwidth-efficient).
    Rabenseifner,
    /// Ring reduce-scatter + ring allgather (`2(p-1)` steps; bandwidth
    /// optimal, latency poor).
    Ring,
}

/// An allreduce algorithm over the whole job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Flat recursive doubling over all `p` ranks.
    RecursiveDoubling,
    /// Flat Rabenseifner over all `p` ranks.
    Rabenseifner,
    /// Flat ring over all `p` ranks.
    Ring,
    /// Binomial-tree reduce to rank 0 followed by binomial broadcast.
    BinomialReduceBcast,
    /// Classic hierarchical design: shared-memory gather to one leader per
    /// node, `inner` allreduce among leaders, shared-memory broadcast.
    SingleLeader {
        /// Inter-leader stage.
        inner: FlatAlg,
    },
    /// Data Partitioning-based Multi-Leader allreduce (the paper's
    /// proposal): `leaders` per node each own `1/leaders` of the vector.
    Dpml {
        /// Leaders per node (`l`).
        leaders: u32,
        /// Inter-leader stage.
        inner: FlatAlg,
    },
    /// DPML with the phase-3 allreduce pipelined over `chunks`
    /// sub-partitions (Section 4.2).
    DpmlPipelined {
        /// Leaders per node (`l`).
        leaders: u32,
        /// Sub-partitions per leader (`k`).
        chunks: u32,
    },
    /// SHArP with a single node-level leader (Section 4.3).
    SharpNodeLeader,
    /// SHArP with one leader per socket (Section 4.3).
    SharpSocketLeader,
}

impl Algorithm {
    /// Human-readable name used by the bench harnesses.
    pub fn name(&self) -> String {
        match self {
            Algorithm::RecursiveDoubling => "recursive-doubling".into(),
            Algorithm::Rabenseifner => "rabenseifner".into(),
            Algorithm::Ring => "ring".into(),
            Algorithm::BinomialReduceBcast => "binomial".into(),
            Algorithm::SingleLeader { .. } => "single-leader".into(),
            Algorithm::Dpml { leaders, .. } => format!("dpml-l{leaders}"),
            Algorithm::DpmlPipelined { leaders, chunks } => format!("dpml-l{leaders}-k{chunks}"),
            Algorithm::SharpNodeLeader => "sharp-node-leader".into(),
            Algorithm::SharpSocketLeader => "sharp-socket-leader".into(),
        }
    }

    /// Parse a CLI/protocol algorithm spec:
    /// `rd | rabenseifner | ring | binomial | single-leader[:rd|rab|ring]
    ///  | dpml:<l>[:rd|rab|ring] | dpml-pipelined:<l>:<k>
    ///  | sharp-node | sharp-socket`.
    ///
    /// Shared by the `dpml` CLI and the `dpml-serve` network protocol, so
    /// a job spec uses exactly the grammar the command line does.
    pub fn parse(s: &str) -> Result<Algorithm, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let flat = |name: &str| -> Result<FlatAlg, String> {
            match name {
                "rd" => Ok(FlatAlg::RecursiveDoubling),
                "rab" | "rabenseifner" => Ok(FlatAlg::Rabenseifner),
                "ring" => Ok(FlatAlg::Ring),
                other => Err(format!("unknown inner algorithm `{other}`")),
            }
        };
        match parts[0] {
            "rd" | "recursive-doubling" => Ok(Algorithm::RecursiveDoubling),
            "rab" | "rabenseifner" => Ok(Algorithm::Rabenseifner),
            "ring" => Ok(Algorithm::Ring),
            "binomial" => Ok(Algorithm::BinomialReduceBcast),
            "single-leader" => {
                let inner = if parts.len() > 1 {
                    flat(parts[1])?
                } else {
                    FlatAlg::RecursiveDoubling
                };
                Ok(Algorithm::SingleLeader { inner })
            }
            "dpml" => {
                let leaders: u32 = parts
                    .get(1)
                    .ok_or("dpml needs a leader count, e.g. dpml:16")?
                    .parse()
                    .map_err(|e| format!("bad leader count: {e}"))?;
                let inner = if parts.len() > 2 {
                    flat(parts[2])?
                } else {
                    FlatAlg::RecursiveDoubling
                };
                Ok(Algorithm::Dpml { leaders, inner })
            }
            "dpml-pipelined" => {
                let leaders: u32 = parts
                    .get(1)
                    .ok_or("dpml-pipelined needs leaders, e.g. dpml-pipelined:16:8")?
                    .parse()
                    .map_err(|e| format!("bad leader count: {e}"))?;
                let chunks: u32 = parts
                    .get(2)
                    .ok_or("dpml-pipelined needs a chunk count, e.g. dpml-pipelined:16:8")?
                    .parse()
                    .map_err(|e| format!("bad chunk count: {e}"))?;
                Ok(Algorithm::DpmlPipelined { leaders, chunks })
            }
            "sharp-node" => Ok(Algorithm::SharpNodeLeader),
            "sharp-socket" => Ok(Algorithm::SharpSocketLeader),
            other => Err(format!("unknown algorithm `{other}` (see `dpml info`)")),
        }
    }

    /// True when the schedule issues `Sharp` instructions (requires a
    /// SHArP-capable fabric and oracle).
    pub fn needs_sharp(&self) -> bool {
        matches!(
            self,
            Algorithm::SharpNodeLeader | Algorithm::SharpSocketLeader
        )
    }

    /// Compile the schedule for a cluster and message size.
    pub fn build(&self, map: &RankMap, n: u64) -> Result<WorldProgram, BuildError> {
        if n == 0 {
            return Err(BuildError::EmptyVector);
        }
        let mut w = WorldProgram::new(map.world_size(), n);
        let mut b = ProgramBuilder::new();
        self.emit(&mut w, &mut b, map, ByteRange::whole(n))?;
        Ok(w)
    }

    /// Emit the allreduce over `range` into an existing world program —
    /// the composition entry point used by the application skeletons in
    /// `dpml-workloads`, which interleave compute steps with collectives
    /// of different sizes.
    pub fn emit(
        &self,
        w: &mut WorldProgram,
        b: &mut ProgramBuilder,
        map: &RankMap,
        range: ByteRange,
    ) -> Result<(), BuildError> {
        if range.is_empty() {
            return Err(BuildError::EmptyVector);
        }
        let all: Vec<dpml_topology::Rank> = map.all_ranks().collect();
        match *self {
            Algorithm::RecursiveDoubling => {
                flat::emit_initial_copy(w, &all, range);
                flat::emit_recursive_doubling_range(w, b, &all, BUF_RESULT, range);
                Ok(())
            }
            Algorithm::Rabenseifner => {
                flat::emit_initial_copy(w, &all, range);
                flat::emit_rabenseifner_range(w, b, &all, BUF_RESULT, range);
                Ok(())
            }
            Algorithm::Ring => {
                flat::emit_initial_copy(w, &all, range);
                flat::emit_ring_range(w, b, &all, BUF_RESULT, range);
                Ok(())
            }
            Algorithm::BinomialReduceBcast => {
                flat::emit_initial_copy(w, &all, range);
                flat::emit_binomial_range(w, b, &all, BUF_RESULT, range);
                Ok(())
            }
            Algorithm::SingleLeader { inner } => {
                hierarchical::emit_single_leader(w, b, map, range, inner)
            }
            Algorithm::Dpml { leaders, inner } => dpml::emit_dpml(w, b, map, range, leaders, inner),
            Algorithm::DpmlPipelined { leaders, chunks } => {
                dpml::emit_dpml_pipelined(w, b, map, range, leaders, chunks)
            }
            Algorithm::SharpNodeLeader => {
                sharp_designs::emit_sharp_leader(w, b, map, range, LeaderPolicy::NodeLevel)
            }
            Algorithm::SharpSocketLeader => {
                sharp_designs::emit_sharp_leader(w, b, map, range, LeaderPolicy::SocketLevel)
            }
        }
    }
}

/// Schedule compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Message size zero.
    EmptyVector,
    /// More leaders requested than processes per node.
    TooManyLeaders {
        /// Requested leader count.
        leaders: u32,
        /// Available processes per node.
        ppn: u32,
    },
    /// Pipelining needs at least one chunk.
    ZeroChunks,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::EmptyVector => write!(f, "allreduce vector must be non-empty"),
            BuildError::TooManyLeaders { leaders, ppn } => {
                write!(f, "{leaders} leaders > {ppn} processes per node")
            }
            BuildError::ZeroChunks => write!(f, "pipeline chunk count must be >= 1"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dpml_topology::ClusterSpec;

    #[test]
    fn names_are_distinct_and_stable() {
        assert_eq!(
            Algorithm::Dpml {
                leaders: 8,
                inner: FlatAlg::RecursiveDoubling
            }
            .name(),
            "dpml-l8"
        );
        assert_eq!(
            Algorithm::DpmlPipelined {
                leaders: 16,
                chunks: 4
            }
            .name(),
            "dpml-l16-k4"
        );
        assert_eq!(Algorithm::SharpSocketLeader.name(), "sharp-socket-leader");
    }

    #[test]
    fn parse_covers_the_cli_grammar() {
        assert_eq!(Algorithm::parse("rd"), Ok(Algorithm::RecursiveDoubling));
        assert_eq!(
            Algorithm::parse("recursive-doubling"),
            Ok(Algorithm::RecursiveDoubling)
        );
        assert_eq!(Algorithm::parse("rab"), Ok(Algorithm::Rabenseifner));
        assert_eq!(Algorithm::parse("ring"), Ok(Algorithm::Ring));
        assert_eq!(
            Algorithm::parse("binomial"),
            Ok(Algorithm::BinomialReduceBcast)
        );
        assert_eq!(
            Algorithm::parse("single-leader"),
            Ok(Algorithm::SingleLeader {
                inner: FlatAlg::RecursiveDoubling
            })
        );
        assert_eq!(
            Algorithm::parse("single-leader:ring"),
            Ok(Algorithm::SingleLeader {
                inner: FlatAlg::Ring
            })
        );
        assert_eq!(
            Algorithm::parse("dpml:16"),
            Ok(Algorithm::Dpml {
                leaders: 16,
                inner: FlatAlg::RecursiveDoubling
            })
        );
        assert_eq!(
            Algorithm::parse("dpml:8:rab"),
            Ok(Algorithm::Dpml {
                leaders: 8,
                inner: FlatAlg::Rabenseifner
            })
        );
        assert_eq!(
            Algorithm::parse("dpml-pipelined:16:8"),
            Ok(Algorithm::DpmlPipelined {
                leaders: 16,
                chunks: 8
            })
        );
        assert_eq!(
            Algorithm::parse("sharp-node"),
            Ok(Algorithm::SharpNodeLeader)
        );
        assert_eq!(
            Algorithm::parse("sharp-socket"),
            Ok(Algorithm::SharpSocketLeader)
        );
        assert!(Algorithm::parse("dpml").is_err());
        assert!(Algorithm::parse("dpml:x").is_err());
        assert!(Algorithm::parse("dpml:4:bogus").is_err());
        assert!(Algorithm::parse("dpml-pipelined:4").is_err());
        assert!(Algorithm::parse("no-such-alg").is_err());
    }

    #[test]
    fn zero_vector_rejected() {
        let spec = ClusterSpec::new(2, 1, 4, 2).unwrap();
        let map = RankMap::block(&spec);
        assert_eq!(Algorithm::Ring.build(&map, 0), Err(BuildError::EmptyVector));
    }

    #[test]
    fn needs_sharp_only_for_sharp_designs() {
        assert!(Algorithm::SharpNodeLeader.needs_sharp());
        assert!(Algorithm::SharpSocketLeader.needs_sharp());
        assert!(!Algorithm::Dpml {
            leaders: 4,
            inner: FlatAlg::Ring
        }
        .needs_sharp());
    }
}
