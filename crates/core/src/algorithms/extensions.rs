//! Extensions beyond the paper's evaluated design — its "future work"
//! (Section 8: *"we would like to explore the possibilities of exploiting
//! the DPML approach for other blocking and non-blocking collectives"*) and
//! the negative design point it argues against in Section 4.3.
//!
//! * [`emit_dpml_reduce`] — rooted `MPI_Reduce` via DPML: the same
//!   partitioned local phases, but phase 3 is an inter-node *reduce* to the
//!   root node's leaders and only the root assembles the result.
//! * [`emit_dpml_bcast`] — `MPI_Bcast` with multi-leader data partitioning:
//!   the root scatters partitions to its local leaders, leaders broadcast
//!   partition-wise inter-node, every node reassembles via shared memory.
//! * [`emit_sharp_per_dpml_leader`] — SHArP driven by *every* DPML leader
//!   (one group and one concurrent operation per partition). The paper
//!   rejects this because "SHArP can support only a small number of
//!   concurrent operations and SHArP communicators"; with the modeled
//!   Switch-IB 2 limits the schedule serializes on the switch and loses —
//!   `ablate_sharp_groups` quantifies it.

use crate::algorithms::BuildError;
use dpml_engine::program::{
    BufKey, ByteRange, ProgramBuilder, WorldProgram, BUF_INPUT, BUF_RESULT,
};
use dpml_engine::Phase;
use dpml_topology::{LeaderPolicy, NodeId, Rank, RankMap};

/// Binomial-tree reduce of `buf ∩ range` over `comm` to `comm[0]`.
fn emit_binomial_reduce_to_first(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    buf: BufKey,
    range: ByteRange,
) {
    let p = comm.len();
    if p <= 1 || range.is_empty() {
        return;
    }
    for &r in comm {
        w.rank(r).set_phase(Phase::InterLeader);
    }
    let scratch = BufKey::Priv(b.fresh_priv(1));
    let steps = usize::BITS - (p - 1).leading_zeros();
    let tag0 = b.fresh_tags(steps);
    for step in 0..steps {
        let mask = 1usize << step;
        let tag = tag0 + step;
        for (i, &me) in comm.iter().enumerate() {
            if i % (2 * mask) == mask {
                w.rank(me).send(comm[i - mask], tag, buf, range);
            } else if i % (2 * mask) == 0 && i + mask < p {
                let prog = w.rank(me);
                prog.recv(comm[i + mask], tag, scratch);
                prog.reduce(vec![scratch], buf, range);
            }
        }
    }
}

/// Binomial-tree broadcast of `buf ∩ range` from `comm[0]` over `comm`.
fn emit_binomial_bcast_from_first(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    buf: BufKey,
    range: ByteRange,
) {
    let p = comm.len();
    if p <= 1 || range.is_empty() {
        return;
    }
    for &r in comm {
        w.rank(r).set_phase(Phase::InterLeader);
    }
    let steps = usize::BITS - (p - 1).leading_zeros();
    let tag0 = b.fresh_tags(steps);
    for step in (0..steps).rev() {
        let mask = 1usize << step;
        let tag = tag0 + step;
        for (i, &me) in comm.iter().enumerate() {
            if i % (2 * mask) == 0 && i + mask < p {
                w.rank(me).send(comm[i + mask], tag, buf, range);
            } else if i % (2 * mask) == mask {
                w.rank(me).recv(comm[i - mask], tag, buf);
            }
        }
    }
}

/// DPML-based rooted reduce: the full result lands (only) in `root`'s
/// result buffer. Verify with
/// [`dpml_engine::RunReport::verify_reduce_at`].
pub fn emit_dpml_reduce(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    map: &RankMap,
    range: ByteRange,
    leaders: u32,
    root: Rank,
) -> Result<(), BuildError> {
    let spec = *map.spec();
    let ppn = spec.ppn;
    if leaders == 0 || leaders > ppn {
        return Err(BuildError::TooManyLeaders { leaders, ppn });
    }
    let set = LeaderPolicy::PerNode(leaders)
        .build(map)
        .map_err(|_| BuildError::TooManyLeaders { leaders, ppn })?;
    let l = set.leaders_per_node();
    let parts: Vec<ByteRange> = (0..l).map(|j| range.subrange(l, j)).collect();
    let root_node = map.node_of(root);

    // Phases 1 + 2: identical to allreduce — gather + leader fold.
    let slot_base = b.fresh_shared(l * ppn);
    let slot = |j: u32, i: u32| BufKey::Shared(slot_base + j * ppn + i);
    for node in 0..spec.num_nodes {
        let node = NodeId(node);
        let members = map.ranks_on_node(node);
        let gather_done = b.fresh_barrier();
        w.register_barrier(gather_done, members.clone());
        for (i, &r) in members.iter().enumerate() {
            let my_socket = map.socket_of(r);
            let prog = w.rank(r);
            prog.set_phase(Phase::ShmGather);
            for j in 0..l {
                if parts[j as usize].is_empty() {
                    continue;
                }
                let cross = map.socket_of(set.leader_rank(node, j)) != my_socket;
                prog.copy(BUF_INPUT, slot(j, i as u32), parts[j as usize], cross);
            }
            prog.barrier(gather_done);
            if let Some(j) = set.leader_index(r) {
                let part = parts[j as usize];
                if !part.is_empty() {
                    prog.set_phase(Phase::LeaderReduce);
                    prog.copy(slot(j, 0), BUF_RESULT, part, false);
                    if ppn > 1 {
                        let srcs: Vec<BufKey> = (1..ppn).map(|i2| slot(j, i2)).collect();
                        prog.reduce(srcs, BUF_RESULT, part);
                    }
                }
            }
        }
    }

    // Phase 3: per-leader inter-node *reduce* to the root node's leader j.
    for j in 0..l {
        if parts[j as usize].is_empty() {
            continue;
        }
        let mut comm = set.leader_comm(j);
        // Rotate so the root node's leader is first (the binomial root).
        let pos = comm
            .iter()
            .position(|&r| map.node_of(r) == root_node)
            .expect("root node has a leader");
        comm.rotate_left(pos);
        emit_binomial_reduce_to_first(w, b, &comm, BUF_RESULT, parts[j as usize]);
    }

    // Phase 4 (root node only): leaders publish, the root assembles.
    let members = map.ranks_on_node(root_node);
    let publish_done = b.fresh_barrier();
    w.register_barrier(publish_done, members.clone());
    let bcast_base = b.fresh_shared(l);
    for &r in &members {
        let prog = w.rank(r);
        prog.set_phase(Phase::Broadcast);
        if let Some(j) = set.leader_index(r) {
            if !parts[j as usize].is_empty() {
                prog.copy(
                    BUF_RESULT,
                    BufKey::Shared(bcast_base + j),
                    parts[j as usize],
                    false,
                );
            }
        }
        prog.barrier(publish_done);
        if r == root {
            let my_leader = set.leader_index(r);
            for j in 0..l {
                if Some(j) == my_leader || parts[j as usize].is_empty() {
                    continue;
                }
                let cross = map.socket_of(set.leader_rank(root_node, j)) != map.socket_of(r);
                prog.copy(
                    BufKey::Shared(bcast_base + j),
                    BUF_RESULT,
                    parts[j as usize],
                    cross,
                );
            }
        }
    }
    Ok(())
}

/// DPML-based broadcast from `root`: root scatters partitions to its local
/// leaders through shared memory, each leader runs a partition-wise
/// binomial broadcast to its peer leaders, and every node reassembles the
/// vector locally. Every rank ends with root's data in its result buffer
/// (verify with `verify_result_equals(&RankSet::singleton(root))`).
pub fn emit_dpml_bcast(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    map: &RankMap,
    range: ByteRange,
    leaders: u32,
    root: Rank,
) -> Result<(), BuildError> {
    let spec = *map.spec();
    let ppn = spec.ppn;
    if leaders == 0 || leaders > ppn {
        return Err(BuildError::TooManyLeaders { leaders, ppn });
    }
    let set = LeaderPolicy::PerNode(leaders)
        .build(map)
        .map_err(|_| BuildError::TooManyLeaders { leaders, ppn })?;
    let l = set.leaders_per_node();
    let parts: Vec<ByteRange> = (0..l).map(|j| range.subrange(l, j)).collect();
    let root_node = map.node_of(root);

    // Root scatters into its node's per-leader slots.
    let scatter_base = b.fresh_shared(l);
    {
        let members = map.ranks_on_node(root_node);
        let scatter_done = b.fresh_barrier();
        w.register_barrier(scatter_done, members.clone());
        for &r in &members {
            let prog = w.rank(r);
            prog.set_phase(Phase::ShmGather);
            if r == root {
                for j in 0..l {
                    if parts[j as usize].is_empty() {
                        continue;
                    }
                    let cross = map.socket_of(set.leader_rank(root_node, j)) != map.socket_of(r);
                    prog.copy(
                        BUF_INPUT,
                        BufKey::Shared(scatter_base + j),
                        parts[j as usize],
                        cross,
                    );
                }
            }
            prog.barrier(scatter_done);
            if let Some(j) = set.leader_index(r) {
                if !parts[j as usize].is_empty() {
                    prog.copy(
                        BufKey::Shared(scatter_base + j),
                        BUF_RESULT,
                        parts[j as usize],
                        false,
                    );
                }
            }
        }
    }

    // Per-leader inter-node binomial broadcast, rooted at the root node.
    for j in 0..l {
        if parts[j as usize].is_empty() {
            continue;
        }
        let mut comm = set.leader_comm(j);
        let pos = comm
            .iter()
            .position(|&r| map.node_of(r) == root_node)
            .expect("root node has a leader");
        comm.rotate_left(pos);
        emit_binomial_bcast_from_first(w, b, &comm, BUF_RESULT, parts[j as usize]);
    }

    // Local reassembly on every node (same as allreduce phase 4).
    let publish_base = b.fresh_shared(l);
    for node in 0..spec.num_nodes {
        let node = NodeId(node);
        let members = map.ranks_on_node(node);
        let publish_done = b.fresh_barrier();
        w.register_barrier(publish_done, members.clone());
        for &r in &members {
            let my_leader = set.leader_index(r);
            let prog = w.rank(r);
            prog.set_phase(Phase::Broadcast);
            if let Some(j) = my_leader {
                if !parts[j as usize].is_empty() {
                    prog.copy(
                        BUF_RESULT,
                        BufKey::Shared(publish_base + j),
                        parts[j as usize],
                        false,
                    );
                }
            }
            prog.barrier(publish_done);
            for j in 0..l {
                if Some(j) == my_leader || parts[j as usize].is_empty() {
                    continue;
                }
                let cross = map.socket_of(set.leader_rank(node, j)) != map.socket_of(r);
                prog.copy(
                    BufKey::Shared(publish_base + j),
                    BUF_RESULT,
                    parts[j as usize],
                    cross,
                );
            }
        }
    }
    Ok(())
}

/// Non-blocking SHArP allreduce with computation overlap — the paper's
/// Section 8 future work ("we plan to investigate the designs for
/// non-blocking collectives with SHArP"). Identical to the socket-leader
/// design except that leaders post the aggregation with `ISharp`, run
/// `overlap_seconds` of application compute while the switch works, and
/// only then wait — hiding the in-network latency behind computation.
/// Non-leaders run the same compute between the gather and release
/// barriers.
pub fn emit_sharp_nonblocking_overlap(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    map: &RankMap,
    range: ByteRange,
    policy: LeaderPolicy,
    overlap_seconds: f64,
) -> Result<(), BuildError> {
    let spec = *map.spec();
    let ppn = spec.ppn;
    let whole = range;
    let set = policy
        .build(map)
        .expect("node/socket leader policies always fit");
    let l = set.leaders_per_node();

    let group = b.fresh_group();
    let mut group_members = Vec::with_capacity((spec.num_nodes * l) as usize);
    for node in 0..spec.num_nodes {
        for j in 0..l {
            group_members.push(set.leader_rank(NodeId(node), j));
        }
    }
    w.register_sharp_group(group, group_members);

    let gather_base = b.fresh_shared(ppn);
    let bcast_base = b.fresh_shared(l);

    for node in 0..spec.num_nodes {
        let node = NodeId(node);
        let members = map.ranks_on_node(node);
        let gather_done = b.fresh_barrier();
        let publish_done = b.fresh_barrier();
        w.register_barrier(gather_done, members.clone());
        w.register_barrier(publish_done, members.clone());

        for &r in &members {
            let local = map.local_of(r);
            let my_leader_j = set.leader_for_local(&spec, local);
            let leader_rank = set.leader_rank(node, my_leader_j);
            let cross = map.socket_of(leader_rank) != map.socket_of(r);
            let prog = w.rank(r);
            prog.set_phase(Phase::ShmGather);
            prog.copy(
                BUF_INPUT,
                BufKey::Shared(gather_base + local.0),
                whole,
                cross,
            );
            prog.barrier(gather_done);
            if let Some(j) = set.leader_index(r) {
                let served: Vec<u32> = (0..ppn)
                    .filter(|&i| set.leader_for_local(&spec, dpml_topology::LocalRank(i)) == j)
                    .collect();
                let first = served[0];
                let prog = w.rank(r);
                prog.set_phase(Phase::LeaderReduce);
                prog.copy(
                    BufKey::Shared(gather_base + first),
                    BUF_RESULT,
                    whole,
                    false,
                );
                if served.len() > 1 {
                    let srcs: Vec<BufKey> = served[1..]
                        .iter()
                        .map(|&i| BufKey::Shared(gather_base + i))
                        .collect();
                    prog.reduce(srcs, BUF_RESULT, whole);
                }
                // Post the offloaded aggregation, overlap compute, wait.
                prog.set_phase(Phase::Sharp);
                let req = prog.isharp(group, BUF_RESULT, BUF_RESULT, whole);
                prog.set_phase(Phase::App);
                prog.compute(overlap_seconds);
                prog.set_phase(Phase::Sharp);
                prog.wait_all(vec![req]);
                prog.set_phase(Phase::Broadcast);
                prog.copy(BUF_RESULT, BufKey::Shared(bcast_base + j), whole, false);
            } else {
                let prog = w.rank(r);
                prog.set_phase(Phase::App);
                prog.compute(overlap_seconds);
            }
            let prog = w.rank(r);
            prog.set_phase(Phase::Broadcast);
            prog.barrier(publish_done);
            if set.leader_index(r).is_none() {
                let cross2 = map.socket_of(leader_rank) != map.socket_of(r);
                prog.copy(
                    BufKey::Shared(bcast_base + my_leader_j),
                    BUF_RESULT,
                    whole,
                    cross2,
                );
            }
        }
    }
    Ok(())
}

/// The design Section 4.3 rules out: every DPML leader drives its own SHArP
/// group/operation for its partition. Correct, but the switch's small
/// concurrent-operation budget serializes the `l` aggregations.
pub fn emit_sharp_per_dpml_leader(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    map: &RankMap,
    range: ByteRange,
    leaders: u32,
) -> Result<(), BuildError> {
    let spec = *map.spec();
    let ppn = spec.ppn;
    if leaders == 0 || leaders > ppn {
        return Err(BuildError::TooManyLeaders { leaders, ppn });
    }
    let set = LeaderPolicy::PerNode(leaders)
        .build(map)
        .map_err(|_| BuildError::TooManyLeaders { leaders, ppn })?;
    let l = set.leaders_per_node();
    let parts: Vec<ByteRange> = (0..l).map(|j| range.subrange(l, j)).collect();

    // One SHArP group per leader index.
    let mut groups = Vec::with_capacity(l as usize);
    for j in 0..l {
        let g = b.fresh_group();
        w.register_sharp_group(g, set.leader_comm(j));
        groups.push(g);
    }

    let slot_base = b.fresh_shared(l * ppn);
    let slot = |j: u32, i: u32| BufKey::Shared(slot_base + j * ppn + i);
    let bcast_base = b.fresh_shared(l);
    for node in 0..spec.num_nodes {
        let node = NodeId(node);
        let members = map.ranks_on_node(node);
        let gather_done = b.fresh_barrier();
        let publish_done = b.fresh_barrier();
        w.register_barrier(gather_done, members.clone());
        w.register_barrier(publish_done, members.clone());
        for (i, &r) in members.iter().enumerate() {
            let my_socket = map.socket_of(r);
            let my_leader = set.leader_index(r);
            let prog = w.rank(r);
            prog.set_phase(Phase::ShmGather);
            for j in 0..l {
                if parts[j as usize].is_empty() {
                    continue;
                }
                let cross = map.socket_of(set.leader_rank(node, j)) != my_socket;
                prog.copy(BUF_INPUT, slot(j, i as u32), parts[j as usize], cross);
            }
            prog.barrier(gather_done);
            if let Some(j) = my_leader {
                let part = parts[j as usize];
                if !part.is_empty() {
                    prog.set_phase(Phase::LeaderReduce);
                    prog.copy(slot(j, 0), BUF_RESULT, part, false);
                    if ppn > 1 {
                        let srcs: Vec<BufKey> = (1..ppn).map(|i2| slot(j, i2)).collect();
                        prog.reduce(srcs, BUF_RESULT, part);
                    }
                    // Offload the inter-node stage to the switch.
                    prog.set_phase(Phase::Sharp);
                    prog.sharp(groups[j as usize], BUF_RESULT, BUF_RESULT, part);
                    prog.set_phase(Phase::Broadcast);
                    prog.copy(BUF_RESULT, BufKey::Shared(bcast_base + j), part, false);
                }
            }
            let prog = w.rank(r);
            prog.set_phase(Phase::Broadcast);
            prog.barrier(publish_done);
            for j in 0..l {
                if Some(j) == my_leader || parts[j as usize].is_empty() {
                    continue;
                }
                let cross = map.socket_of(set.leader_rank(node, j)) != my_socket;
                prog.copy(
                    BufKey::Shared(bcast_base + j),
                    BUF_RESULT,
                    parts[j as usize],
                    cross,
                );
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpml_engine::coverage::RankSet;
    use dpml_engine::{SimConfig, Simulator};
    use dpml_fabric::presets::{cluster_a, cluster_b};
    use dpml_sharp::SharpFabric;
    use dpml_topology::ClusterSpec;

    fn sim_b(nodes: u32, ppn: u32) -> (RankMap, SimConfig) {
        let preset = cluster_b();
        let spec = ClusterSpec::new(nodes, 2, 14, ppn).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric, preset.switch).unwrap();
        (map, cfg)
    }

    #[test]
    fn dpml_reduce_lands_only_at_root() {
        let (map, cfg) = sim_b(4, 4);
        let n = 10_000u64;
        for root in [Rank(0), Rank(5), Rank(15)] {
            let mut w = WorldProgram::new(map.world_size(), n);
            let mut b = ProgramBuilder::new();
            emit_dpml_reduce(&mut w, &mut b, &map, ByteRange::whole(n), 4, root).unwrap();
            let rep = Simulator::new(&cfg).run(&w).unwrap();
            rep.verify_reduce_at(root.0)
                .unwrap_or_else(|e| panic!("root {root}: {e}"));
        }
    }

    #[test]
    fn dpml_reduce_various_shapes() {
        for (nodes, ppn, l) in [(2u32, 2u32, 1u32), (3, 5, 3), (6, 4, 4), (1, 8, 8)] {
            let (map, cfg) = sim_b(nodes, ppn);
            let mut w = WorldProgram::new(map.world_size(), 777);
            let mut b = ProgramBuilder::new();
            emit_dpml_reduce(&mut w, &mut b, &map, ByteRange::whole(777), l, Rank(0)).unwrap();
            let rep = Simulator::new(&cfg).run(&w).unwrap();
            rep.verify_reduce_at(0)
                .unwrap_or_else(|e| panic!("{nodes}x{ppn} l={l}: {e}"));
        }
    }

    #[test]
    fn dpml_bcast_delivers_root_data_everywhere() {
        let (map, cfg) = sim_b(4, 4);
        let n = 4096u64;
        for root in [Rank(0), Rank(7)] {
            let mut w = WorldProgram::new(map.world_size(), n);
            let mut b = ProgramBuilder::new();
            emit_dpml_bcast(&mut w, &mut b, &map, ByteRange::whole(n), 4, root).unwrap();
            let rep = Simulator::new(&cfg).run(&w).unwrap();
            rep.verify_result_equals(&RankSet::singleton(root.0))
                .unwrap_or_else(|e| panic!("root {root}: {e}"));
        }
    }

    #[test]
    fn dpml_bcast_odd_shapes() {
        for (nodes, ppn, l) in [(3u32, 3u32, 2u32), (5, 2, 2), (1, 6, 3)] {
            let (map, cfg) = sim_b(nodes, ppn);
            let mut w = WorldProgram::new(map.world_size(), 1001);
            let mut b = ProgramBuilder::new();
            emit_dpml_bcast(&mut w, &mut b, &map, ByteRange::whole(1001), l, Rank(1)).unwrap();
            let rep = Simulator::new(&cfg).run(&w).unwrap();
            rep.verify_result_equals(&RankSet::singleton(1))
                .unwrap_or_else(|e| panic!("{nodes}x{ppn} l={l}: {e}"));
        }
    }

    #[test]
    fn nonblocking_sharp_hides_latency_behind_compute() {
        let preset = cluster_a();
        let spec = ClusterSpec::new(8, 2, 14, 8).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch).unwrap();
        let oracle = SharpFabric::new(
            preset.fabric.sharp.expect("sharp"),
            cfg.tree.clone(),
            map.clone(),
        );
        let n = 1024u64;
        let compute = 40e-6; // longer than the SHArP op

        // Blocking: sharp allreduce then compute, serially.
        let blocking = {
            let mut w = WorldProgram::new(map.world_size(), n);
            let mut b = ProgramBuilder::new();
            crate::algorithms::sharp_designs::emit_sharp_leader(
                &mut w,
                &mut b,
                &map,
                ByteRange::whole(n),
                LeaderPolicy::SocketLevel,
            )
            .unwrap();
            for r in map.all_ranks() {
                w.rank(r).compute(compute);
            }
            let rep = Simulator::new(&cfg).with_sharp(&oracle).run(&w).unwrap();
            rep.verify_allreduce().unwrap();
            rep.makespan().seconds()
        };

        // Overlapped: the aggregation proceeds during the compute.
        let overlapped = {
            let mut w = WorldProgram::new(map.world_size(), n);
            let mut b = ProgramBuilder::new();
            emit_sharp_nonblocking_overlap(
                &mut w,
                &mut b,
                &map,
                ByteRange::whole(n),
                LeaderPolicy::SocketLevel,
                compute,
            )
            .unwrap();
            let rep = Simulator::new(&cfg).with_sharp(&oracle).run(&w).unwrap();
            rep.verify_allreduce().unwrap();
            rep.makespan().seconds()
        };
        assert!(
            overlapped < blocking - 2e-6,
            "overlap should hide the aggregation: {overlapped} vs {blocking}"
        );
    }

    #[test]
    fn nonblocking_sharp_correct_various_shapes() {
        let preset = cluster_a();
        for (nodes, ppn) in [(2u32, 2u32), (4, 8), (3, 5)] {
            let spec = ClusterSpec::new(nodes, 2, 14, ppn).unwrap();
            let map = RankMap::block(&spec);
            let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch).unwrap();
            let oracle = SharpFabric::new(
                preset.fabric.sharp.expect("sharp"),
                cfg.tree.clone(),
                map.clone(),
            );
            let mut w = WorldProgram::new(map.world_size(), 512);
            let mut b = ProgramBuilder::new();
            emit_sharp_nonblocking_overlap(
                &mut w,
                &mut b,
                &map,
                ByteRange::whole(512),
                LeaderPolicy::NodeLevel,
                5e-6,
            )
            .unwrap();
            let rep = Simulator::new(&cfg).with_sharp(&oracle).run(&w).unwrap();
            rep.verify_allreduce()
                .unwrap_or_else(|e| panic!("{nodes}x{ppn}: {e}"));
        }
    }

    #[test]
    fn sharp_per_dpml_leader_is_correct_but_serializes() {
        let preset = cluster_a();
        let spec = ClusterSpec::new(8, 2, 14, 28).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch).unwrap();
        let oracle = SharpFabric::new(
            preset.fabric.sharp.expect("sharp"),
            cfg.tree.clone(),
            map.clone(),
        );
        let n = 2048u64;
        let run_l = |l: u32| {
            let mut w = WorldProgram::new(map.world_size(), n);
            let mut b = ProgramBuilder::new();
            emit_sharp_per_dpml_leader(&mut w, &mut b, &map, ByteRange::whole(n), l).unwrap();
            let rep = Simulator::new(&cfg).with_sharp(&oracle).run(&w).unwrap();
            rep.verify_allreduce().unwrap();
            assert_eq!(rep.stats.sharp_ops, l as u64);
            rep.latency_us()
        };
        let t2 = run_l(2);
        let t16 = run_l(16);
        // 16 ops over a 2-op switch budget serialize: per-unit-data time
        // must degrade relative to 2 leaders despite 8x smaller partitions.
        assert!(
            t16 > 0.6 * t2,
            "expected switch serialization to erase the partitioning win: l2={t2} l16={t16}"
        );
    }
}
