//! Flat (non-hierarchical) allreduce algorithms.
//!
//! These are the classic schedules every MPI library ships (Thakur,
//! Rabenseifner & Gropp 2005) and the baselines the paper compares DPML
//! against. All emitters operate on an arbitrary *communicator* (an ordered
//! rank list) and an arbitrary byte sub-range of the vector so that the
//! hierarchical designs can reuse them as their inter-leader stage.

use crate::algorithms::FlatAlg;
use dpml_engine::program::{
    BufKey, ByteRange, ProgramBuilder, WorldProgram, BUF_INPUT, BUF_RESULT,
};
use dpml_engine::Phase;
use dpml_topology::Rank;

/// `copy(sendbuf, recvbuf)` — the local prologue every flat allreduce
/// starts with (MPI semantics: the input must not be clobbered).
pub fn emit_initial_copy(w: &mut WorldProgram, ranks: &[Rank], range: ByteRange) {
    for &r in ranks {
        let prog = w.rank(r);
        prog.set_phase(Phase::ShmGather);
        prog.copy(BUF_INPUT, BUF_RESULT, range, false);
    }
}

/// Tag the exchange instructions of every `comm` member: a flat allreduce
/// is the inter-leader stage when embedded in a hierarchical design, and
/// plays the same role standalone (every rank its own leader).
fn tag_comm(w: &mut WorldProgram, comm: &[Rank]) {
    for &r in comm {
        w.rank(r).set_phase(Phase::InterLeader);
    }
}

/// Largest power of two `<= p`.
pub(crate) fn prev_pow2(p: usize) -> usize {
    debug_assert!(p >= 1);
    1 << (usize::BITS - 1 - p.leading_zeros())
}

/// Dispatch a flat allreduce over `comm` on `buf ∩ range`.
pub fn emit_flat_range(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    buf: BufKey,
    range: ByteRange,
    alg: FlatAlg,
) {
    match alg {
        FlatAlg::RecursiveDoubling => emit_recursive_doubling_range(w, b, comm, buf, range),
        FlatAlg::Rabenseifner => emit_rabenseifner_range(w, b, comm, buf, range),
        FlatAlg::Ring => emit_ring_range(w, b, comm, buf, range),
    }
}

/// Fold the non-power-of-two "extra" ranks into a power-of-two core:
/// each odd rank of the first `2*rem` sends its data to the even partner,
/// which reduces. Returns the core communicator (length `prev_pow2(p)`).
fn emit_pow2_prologue(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    buf: BufKey,
    range: ByteRange,
    scratch: BufKey,
) -> Vec<Rank> {
    let p = comm.len();
    let pof2 = prev_pow2(p);
    let rem = p - pof2;
    let tag = b.fresh_tags(1);
    for i in 0..rem {
        let even = comm[2 * i];
        let odd = comm[2 * i + 1];
        w.rank(odd).send(even, tag, buf, range);
        let pe = w.rank(even);
        pe.recv(odd, tag, scratch);
        pe.reduce(vec![scratch], buf, range);
    }
    (0..pof2)
        .map(|i| if i < rem { comm[2 * i] } else { comm[i + rem] })
        .collect()
}

/// Ship the final result from core ranks back to the folded-out extras.
fn emit_pow2_epilogue(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    buf: BufKey,
    range: ByteRange,
) {
    let p = comm.len();
    let rem = p - prev_pow2(p);
    let tag = b.fresh_tags(1);
    for i in 0..rem {
        let even = comm[2 * i];
        let odd = comm[2 * i + 1];
        w.rank(even).send(odd, tag, buf, range);
        w.rank(odd).recv(even, tag, buf); // payload is the final value
    }
}

/// Recursive doubling on a sub-range.
pub fn emit_recursive_doubling_range(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    buf: BufKey,
    range: ByteRange,
) {
    let p = comm.len();
    if p <= 1 || range.is_empty() {
        return;
    }
    tag_comm(w, comm);
    let scratch = BufKey::Priv(b.fresh_priv(1));
    let core = emit_pow2_prologue(w, b, comm, buf, range, scratch);
    let pof2 = core.len();
    let steps = pof2.trailing_zeros();
    let tag0 = b.fresh_tags(steps);
    for step in 0..steps {
        let tag = tag0 + step;
        for (i, &me) in core.iter().enumerate() {
            let peer = core[i ^ (1 << step)];
            let prog = w.rank(me);
            let s = prog.isend(peer, tag, buf, range);
            let r = prog.irecv(peer, tag, scratch);
            prog.wait_all(vec![s, r]);
            prog.reduce(vec![scratch], buf, range);
        }
    }
    emit_pow2_epilogue(w, b, comm, buf, range);
}

/// Split a range into its lower and upper halves.
fn halves(r: ByteRange) -> (ByteRange, ByteRange) {
    let mid = r.start + r.len() / 2;
    (ByteRange::new(r.start, mid), ByteRange::new(mid, r.end))
}

/// Rabenseifner (reduce-scatter + allgather) on a sub-range.
pub fn emit_rabenseifner_range(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    buf: BufKey,
    range: ByteRange,
) {
    let p = comm.len();
    if p <= 1 || range.is_empty() {
        return;
    }
    tag_comm(w, comm);
    let scratch = BufKey::Priv(b.fresh_priv(1));
    let core = emit_pow2_prologue(w, b, comm, buf, range, scratch);
    let pof2 = core.len();
    let steps = pof2.trailing_zeros();
    if steps == 0 {
        emit_pow2_epilogue(w, b, comm, buf, range);
        return;
    }
    // Reduce-scatter by recursive halving.
    let mut owned = vec![range; pof2];
    let rs_tag0 = b.fresh_tags(steps);
    for step in 0..steps {
        let tag = rs_tag0 + step;
        for (i, &me) in core.iter().enumerate() {
            let peer = core[i ^ (1 << step)];
            let (low, high) = halves(owned[i]);
            let (keep, give) = if i & (1 << step) == 0 {
                (low, high)
            } else {
                (high, low)
            };
            let prog = w.rank(me);
            let s = prog.isend(peer, tag, buf, give);
            let r = prog.irecv(peer, tag, scratch);
            prog.wait_all(vec![s, r]);
            prog.reduce(vec![scratch], buf, keep);
            owned[i] = keep;
        }
    }
    // Allgather by recursive doubling (reverse order).
    let ag_tag0 = b.fresh_tags(steps);
    for step in (0..steps).rev() {
        let tag = ag_tag0 + step;
        let mut next_owned = owned.clone();
        for (i, &me) in core.iter().enumerate() {
            let pi = i ^ (1 << step);
            let peer = core[pi];
            let prog = w.rank(me);
            let s = prog.isend(peer, tag, buf, owned[i]);
            let r = prog.irecv(peer, tag, buf); // disjoint range: plain placement
            prog.wait_all(vec![s, r]);
            let merged = ByteRange::new(
                owned[i].start.min(owned[pi].start),
                owned[i].end.max(owned[pi].end),
            );
            next_owned[i] = merged;
        }
        owned = next_owned;
    }
    emit_pow2_epilogue(w, b, comm, buf, range);
}

/// Ring reduce-scatter + ring allgather on a sub-range (any `p`).
pub fn emit_ring_range(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    buf: BufKey,
    range: ByteRange,
) {
    let p = comm.len();
    if p <= 1 || range.is_empty() {
        return;
    }
    tag_comm(w, comm);
    let scratch = BufKey::Priv(b.fresh_priv(1));
    let chunks: Vec<ByteRange> = (0..p as u32).map(|i| range.subrange(p as u32, i)).collect();
    let rs_tag0 = b.fresh_tags((p - 1) as u32);
    // Reduce-scatter: after p-1 steps rank i fully owns chunk (i+1) mod p.
    for s in 0..p - 1 {
        let tag = rs_tag0 + s as u32;
        for (i, &me) in comm.iter().enumerate() {
            let next = comm[(i + 1) % p];
            let prev = comm[(i + p - 1) % p];
            let send_chunk = chunks[(i + p - s) % p];
            let recv_chunk = chunks[(i + p - s - 1) % p];
            let prog = w.rank(me);
            let snd = prog.isend(next, tag, buf, send_chunk);
            let rcv = prog.irecv(prev, tag, scratch);
            prog.wait_all(vec![snd, rcv]);
            prog.reduce(vec![scratch], buf, recv_chunk);
        }
    }
    // Allgather ring.
    let ag_tag0 = b.fresh_tags((p - 1) as u32);
    for s in 0..p - 1 {
        let tag = ag_tag0 + s as u32;
        for (i, &me) in comm.iter().enumerate() {
            let next = comm[(i + 1) % p];
            let prev = comm[(i + p - 1) % p];
            let send_chunk = chunks[(i + 1 + p - s) % p];
            let prog = w.rank(me);
            let snd = prog.isend(next, tag, buf, send_chunk);
            let rcv = prog.irecv(prev, tag, buf);
            prog.wait_all(vec![snd, rcv]);
        }
    }
}

/// Binomial-tree reduce to `comm[0]`, then binomial broadcast.
pub fn emit_binomial_range(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    buf: BufKey,
    range: ByteRange,
) {
    let p = comm.len();
    if p <= 1 || range.is_empty() {
        return;
    }
    tag_comm(w, comm);
    let scratch = BufKey::Priv(b.fresh_priv(1));
    let steps = usize::BITS - (p - 1).leading_zeros(); // ceil(lg p)
    let red_tag0 = b.fresh_tags(steps);
    for step in 0..steps {
        let mask = 1usize << step;
        let tag = red_tag0 + step;
        for (i, &me) in comm.iter().enumerate() {
            if i % (2 * mask) == mask {
                w.rank(me).send(comm[i - mask], tag, buf, range);
            } else if i % (2 * mask) == 0 && i + mask < p {
                let prog = w.rank(me);
                prog.recv(comm[i + mask], tag, scratch);
                prog.reduce(vec![scratch], buf, range);
            }
        }
    }
    let bc_tag0 = b.fresh_tags(steps);
    for step in (0..steps).rev() {
        let mask = 1usize << step;
        let tag = bc_tag0 + step;
        for (i, &me) in comm.iter().enumerate() {
            if i % (2 * mask) == 0 && i + mask < p {
                w.rank(me).send(comm[i + mask], tag, buf, range);
            } else if i % (2 * mask) == mask {
                w.rank(me).recv(comm[i - mask], tag, buf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpml_engine::{SimConfig, Simulator};
    use dpml_fabric::presets::cluster_b;
    use dpml_topology::{ClusterSpec, RankMap};

    fn run(alg: FlatAlg, nodes: u32, ppn: u32, n: u64) -> dpml_engine::RunReport {
        let preset = cluster_b();
        let spec = ClusterSpec::new(nodes, 2, 14, ppn).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric, preset.switch).unwrap();
        let comm: Vec<Rank> = map.all_ranks().collect();
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), n);
        let mut b = ProgramBuilder::new();
        emit_initial_copy(&mut w, &comm, ByteRange::whole(n));
        emit_flat_range(&mut w, &mut b, &comm, BUF_RESULT, ByteRange::whole(n), alg);
        let rep = Simulator::new(&cfg).run(&w).unwrap();
        rep.verify_allreduce().unwrap();
        rep
    }

    #[test]
    fn prev_pow2_values() {
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(2), 2);
        assert_eq!(prev_pow2(3), 2);
        assert_eq!(prev_pow2(28), 16);
        assert_eq!(prev_pow2(64), 64);
    }

    #[test]
    fn rd_power_of_two() {
        run(FlatAlg::RecursiveDoubling, 8, 1, 4096);
    }

    #[test]
    fn rd_non_power_of_two() {
        run(FlatAlg::RecursiveDoubling, 6, 1, 4096);
        run(FlatAlg::RecursiveDoubling, 5, 1, 100);
    }

    #[test]
    fn rd_multi_rank_nodes() {
        run(FlatAlg::RecursiveDoubling, 4, 7, 512);
    }

    #[test]
    fn rabenseifner_power_of_two() {
        run(FlatAlg::Rabenseifner, 8, 1, 1 << 16);
    }

    #[test]
    fn rabenseifner_non_power_of_two() {
        run(FlatAlg::Rabenseifner, 7, 1, 1000);
        run(FlatAlg::Rabenseifner, 12, 1, 333);
    }

    #[test]
    fn rabenseifner_odd_sizes() {
        // Range length not divisible by p: halving must stay consistent.
        run(FlatAlg::Rabenseifner, 8, 1, 1001);
        run(FlatAlg::Rabenseifner, 16, 1, 17);
    }

    #[test]
    fn ring_various_sizes() {
        run(FlatAlg::Ring, 3, 1, 999);
        run(FlatAlg::Ring, 8, 1, 1 << 18);
        run(FlatAlg::Ring, 5, 2, 1 << 10);
    }

    #[test]
    fn ring_tiny_vector() {
        // p > n: some chunks empty.
        run(FlatAlg::Ring, 8, 1, 3);
    }

    #[test]
    fn binomial_all_sizes() {
        for p in [2u32, 3, 4, 7, 8, 9] {
            let preset = cluster_b();
            let spec = ClusterSpec::new(p, 2, 14, 1).unwrap();
            let map = RankMap::block(&spec);
            let cfg = SimConfig::new(map.clone(), preset.fabric, preset.switch).unwrap();
            let comm: Vec<Rank> = map.all_ranks().collect();
            let mut w = dpml_engine::WorldProgram::new(p, 256);
            let mut b = ProgramBuilder::new();
            emit_initial_copy(&mut w, &comm, ByteRange::whole(256));
            emit_binomial_range(&mut w, &mut b, &comm, BUF_RESULT, ByteRange::whole(256));
            let rep = Simulator::new(&cfg).run(&w).unwrap();
            rep.verify_allreduce()
                .unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn single_rank_is_trivial() {
        let rep = run(FlatAlg::RecursiveDoubling, 1, 1, 64);
        assert_eq!(rep.stats.messages, 0);
    }

    #[test]
    fn rd_message_count_matches_lg_p() {
        let rep = run(FlatAlg::RecursiveDoubling, 8, 1, 4096);
        // 8 ranks x lg(8)=3 steps x 1 msg each direction = 24 messages.
        assert_eq!(rep.stats.messages, 24);
    }

    #[test]
    fn rabenseifner_moves_fewer_bytes_than_rd() {
        let n = 1 << 20;
        let rd = run(FlatAlg::RecursiveDoubling, 8, 1, n);
        let rab = run(FlatAlg::Rabenseifner, 8, 1, n);
        // RD ships lg(p)*n per rank (3n at p=8); Rabenseifner ships
        // 2n(1 - 1/p) per rank (1.75n at p=8): expect a ~14/24 ratio.
        assert!(
            rab.stats.inter_node_bytes * 3 < rd.stats.inter_node_bytes * 2,
            "rab {} vs rd {}",
            rab.stats.inter_node_bytes,
            rd.stats.inter_node_bytes
        );
        assert!(rab.makespan() < rd.makespan());
    }

    #[test]
    fn ring_beats_rd_for_large_messages_small_comm() {
        let n = 4 << 20;
        let rd = run(FlatAlg::RecursiveDoubling, 4, 1, n);
        let ring = run(FlatAlg::Ring, 4, 1, n);
        assert!(ring.makespan() < rd.makespan());
    }

    /// Sub-range composition: run three flat allreduces on disjoint
    /// sub-ranges over different sub-communicators, with the rest of the
    /// vector reduced by... nothing — verify the sub-ranges only.
    #[test]
    fn subrange_composition() {
        let preset = cluster_b();
        let spec = ClusterSpec::new(4, 2, 14, 1).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric, preset.switch).unwrap();
        let comm: Vec<Rank> = map.all_ranks().collect();
        let n = 300u64;
        let mut w = dpml_engine::WorldProgram::new(4, n);
        let mut b = ProgramBuilder::new();
        emit_initial_copy(&mut w, &comm, ByteRange::whole(n));
        emit_recursive_doubling_range(&mut w, &mut b, &comm, BUF_RESULT, ByteRange::new(0, 100));
        emit_ring_range(&mut w, &mut b, &comm, BUF_RESULT, ByteRange::new(100, 200));
        emit_rabenseifner_range(&mut w, &mut b, &comm, BUF_RESULT, ByteRange::new(200, 300));
        let rep = Simulator::new(&cfg).run(&w).unwrap();
        rep.verify_allreduce().unwrap();
    }
}
