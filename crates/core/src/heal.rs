//! Fail-stop healing for DPML: detect a crashed rank mid-collective,
//! re-elect leaders around it, and re-execute only the lost partitions
//! from surviving shared-memory state.
//!
//! ## Why DPML heals cheaply
//!
//! DPML's phase 1 deposits every rank's contribution to every partition
//! into node shared memory *before* any inter-node traffic. A fail-stop
//! crash kills the process but not the shared segment, so once a rank is
//! past the gather barrier its data is durable on its node. Healing a
//! dead leader `j` therefore needs only:
//!
//! 1. **Re-election** — [`LeaderSet::heal`] promotes a surviving local
//!    rank into leader index `j` on the dead node.
//! 2. **Re-fold** — the leaders of partition `j` (healed on the dead
//!    node, unchanged elsewhere) re-run the phase-2 fold from the
//!    surviving gather slots.
//! 3. **Re-allreduce** — partition `j` alone repeats phase 3 over the
//!    healed leader communicator: `1/l` of the vector, not all of it.
//! 4. **Re-publish** — survivors copy the full vector out of the publish
//!    slots (partitions `j' != j` were already fully reduced and
//!    published before the event queue drained, so they are preset from
//!    the checkpointed shared state).
//!
//! A cold restart instead re-runs the whole collective from scratch
//! after the same detection delay. The healed path wins because the
//! continuation moves `1/l` of the bytes over the wire and skips phase 1
//! entirely.
//!
//! ## When healing is impossible
//!
//! * **Whole-node loss** — the node's shared segment died with it; the
//!   deposits are gone. Cold restart.
//! * **Crash before the gather barrier** — the dead rank's contribution
//!   may exist nowhere but its own (lost) address space. The completion
//!   ledger's program counter decides: the gather barrier instruction
//!   only starts after every phase-1 copy completed, so
//!   `pc > first_barrier_index` proves the deposits landed. Cold
//!   restart otherwise.

use crate::algorithms::flat::emit_flat_range;
use crate::algorithms::{Algorithm, FlatAlg};
use crate::resilience::run_allreduce_faulted;
use crate::run::{AllreduceReport, RunError};
use dpml_engine::program::{BufKey, ByteRange, ProgramBuilder, BUF_RESULT};
use dpml_engine::{CoverageMap, Instr, PendingOp, SimConfig, SimError, Simulator, WorldProgram};
use dpml_fabric::Preset;
use dpml_faults::{FaultPlan, ProcessFaults};
use dpml_topology::{ClusterSpec, LeaderPolicy, LeaderSet, NodeId, Rank, RankMap};
use serde::{Deserialize, Serialize};

/// Fixed virtual-time cost of invoking the healing planner (failure
/// broadcast + leader re-election agreement), microseconds.
pub const REPLAN_BASE_US: f64 = 5.0;
/// Per-rank cost of re-generating and distributing a replanned program,
/// microseconds.
pub const REPLAN_PER_RANK_US: f64 = 0.5;

/// Accounting for one fail-stop recovery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Ranks that died, ascending.
    pub dead_ranks: Vec<u32>,
    /// When the failure detector fired: crash time plus the plan's
    /// detection timeout, microseconds from collective start.
    pub detected_at_us: f64,
    /// End-to-end latency of the healed run: detection + re-planning +
    /// continuation makespan, microseconds.
    pub healed_latency_us: f64,
    /// End-to-end latency of the alternative: detection + a full
    /// fault-free re-run, microseconds.
    pub cold_restart_latency_us: f64,
    /// Ranks whose programs the healing planner re-generated: the healed
    /// leader communicators of every lost partition plus the survivors
    /// on nodes that lost a rank.
    pub replanned_ranks: Vec<u32>,
    /// Leader re-elections applied, as `(node, leader index, replacement
    /// local rank)`.
    pub reelections: Vec<(u32, u32, u32)>,
}

/// What a fail-stop run of DPML came to.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FailstopOutcome {
    /// No rank died; the report is bit-identical to an unfaulted run
    /// under the same non-process faults.
    Clean {
        /// The verified run.
        report: AllreduceReport,
    },
    /// A rank died and the collective was healed: survivors hold the
    /// full reduction, including the dead ranks' contributions recovered
    /// from their shared-memory deposits.
    Healed {
        /// The verified continuation run (latency is the continuation
        /// makespan only; see [`RecoveryReport::healed_latency_us`] for
        /// end-to-end).
        report: AllreduceReport,
        /// Recovery accounting.
        recovery: RecoveryReport,
    },
    /// A rank died and healing was impossible; the collective re-ran
    /// from scratch after the detection timeout.
    ColdRestart {
        /// The verified restarted run.
        report: AllreduceReport,
        /// Recovery accounting (`healed_latency_us` equals
        /// `cold_restart_latency_us`: the restart *was* the recovery).
        recovery: RecoveryReport,
        /// Why a heal could not be attempted.
        reason: String,
    },
}

impl FailstopOutcome {
    /// The verified report of whichever schedule completed.
    pub fn report(&self) -> &AllreduceReport {
        match self {
            FailstopOutcome::Clean { report }
            | FailstopOutcome::Healed { report, .. }
            | FailstopOutcome::ColdRestart { report, .. } => report,
        }
    }

    /// Recovery accounting, if any rank died.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        match self {
            FailstopOutcome::Clean { .. } => None,
            FailstopOutcome::Healed { recovery, .. }
            | FailstopOutcome::ColdRestart { recovery, .. } => Some(recovery),
        }
    }

    /// End-to-end latency including detection and recovery, microseconds.
    pub fn total_latency_us(&self) -> f64 {
        match self {
            FailstopOutcome::Clean { report } => report.latency_us,
            FailstopOutcome::Healed { recovery, .. } => recovery.healed_latency_us,
            FailstopOutcome::ColdRestart { recovery, .. } => recovery.cold_restart_latency_us,
        }
    }
}

/// Run a DPML allreduce under `plan`, healing fail-stop crashes when the
/// dead ranks' deposits survive and falling back to a cold restart when
/// they do not. Every path returns a verified result: survivors always
/// end with the full reduction over the whole vector.
pub fn run_dpml_failstop(
    preset: &Preset,
    spec: &ClusterSpec,
    leaders: u32,
    inner: FlatAlg,
    bytes: u64,
    plan: &FaultPlan,
) -> Result<FailstopOutcome, RunError> {
    let alg = Algorithm::Dpml { leaders, inner };
    match run_allreduce_faulted(preset, spec, alg, bytes, plan) {
        Ok(report) => Ok(FailstopOutcome::Clean { report }),
        Err(RunError::Sim(SimError::RankDead {
            rank,
            time,
            pending_ops,
        })) => heal_after_crash(
            preset,
            spec,
            leaders,
            inner,
            bytes,
            plan,
            rank,
            time,
            &pending_ops,
        ),
        Err(e) => Err(e),
    }
}

#[allow(clippy::too_many_arguments)]
fn heal_after_crash(
    preset: &Preset,
    spec: &ClusterSpec,
    leaders: u32,
    inner: FlatAlg,
    bytes: u64,
    plan: &FaultPlan,
    first_rank: u32,
    time: f64,
    pending_ops: &[PendingOp],
) -> Result<FailstopOutcome, RunError> {
    let alg = Algorithm::Dpml { leaders, inner };
    // The continuation (and the hypothetical restart) run after the
    // crash; they see the plan's noise and link faults but no further
    // process deaths.
    let scrubbed = FaultPlan {
        process: ProcessFaults::default(),
        ..plan.clone()
    };
    let clean = run_allreduce_faulted(preset, spec, alg, bytes, &scrubbed)?;
    let detected_at_us = (time + plan.process.detection_timeout) * 1e6;
    let cold_restart_latency_us = detected_at_us + clean.latency_us;

    // The ledger records one "crashed" entry per dead rank.
    let mut dead: Vec<u32> = pending_ops
        .iter()
        .filter(|op| op.what.starts_with("crashed"))
        .map(|op| op.rank)
        .collect();
    if !dead.contains(&first_rank) {
        dead.push(first_rank);
    }
    dead.sort_unstable();
    dead.dedup();

    let map = RankMap::block(spec);
    let cold = |reason: String, dead: &[u32]| FailstopOutcome::ColdRestart {
        report: clean.clone(),
        recovery: RecoveryReport {
            dead_ranks: dead.to_vec(),
            detected_at_us,
            healed_latency_us: cold_restart_latency_us,
            cold_restart_latency_us,
            replanned_ranks: Vec::new(),
            reelections: Vec::new(),
        },
        reason,
    };

    // Whole-node loss kills the shared segment along with the deposits.
    for n in 0..spec.num_nodes {
        let members = map.ranks_on_node(NodeId(n));
        if members.iter().all(|r| dead.contains(&r.0)) {
            return Ok(cold(
                format!("node {n} lost every rank; its shared-memory deposits died with it"),
                &dead,
            ));
        }
    }

    // Deposits-safe check against the original schedule: the crashed
    // program counter must be past the gather barrier.
    let world = alg.build(&map, bytes)?;
    for &d in &dead {
        let prog = &world.programs[d as usize];
        let first_barrier = prog
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Barrier { .. }));
        let pc = pending_ops
            .iter()
            .find(|op| op.rank == d && op.what.starts_with("crashed"))
            .map_or(0, |op| op.pc);
        let safe = matches!(first_barrier, Some(fb) if pc > fb);
        if !safe {
            return Ok(cold(
                format!(
                    "rank {d} died at pc {pc} before finishing its phase-1 \
                     shared-memory deposits; its contribution is unrecoverable"
                ),
                &dead,
            ));
        }
    }

    let dead_ranks: Vec<Rank> = dead.iter().map(|&d| Rank(d)).collect();
    let set = LeaderPolicy::PerNode(leaders).build(&map)?;
    let healed = set.heal(&dead_ranks);
    let mut affected: Vec<u32> = dead_ranks
        .iter()
        .filter_map(|&d| set.leader_index(d))
        .collect();
    affected.sort_unstable();
    affected.dedup();
    let l = set.leaders_per_node();
    let parts: Vec<ByteRange> = (0..l)
        .map(|j| ByteRange::whole(bytes).subrange(l, j))
        .collect();

    let cont = build_continuation(&map, &set, &healed, &parts, bytes, &dead, &affected, inner);
    let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch)?;
    let report = Simulator::new(&cfg).with_faults(&scrubbed).run(&cont)?;
    report.verify_allreduce_excluding(&dead)?;

    let mut replanned: Vec<u32> = affected
        .iter()
        .flat_map(|&j| healed.leader_comm(j))
        .map(|r| r.0)
        .collect();
    for &d in &dead {
        let node = map.node_of(Rank(d));
        replanned.extend(
            map.ranks_on_node(node)
                .iter()
                .map(|r| r.0)
                .filter(|r| !dead.contains(r)),
        );
    }
    replanned.sort_unstable();
    replanned.dedup();

    let replan_us = REPLAN_BASE_US + REPLAN_PER_RANK_US * replanned.len() as f64;
    let healed_latency_us = detected_at_us + replan_us + report.latency_us();
    let latency_us = report.latency_us();
    Ok(FailstopOutcome::Healed {
        report: AllreduceReport {
            algorithm: format!("{}-healed", alg.name()),
            bytes,
            latency_us,
            report,
        },
        recovery: RecoveryReport {
            dead_ranks: dead,
            detected_at_us,
            healed_latency_us,
            cold_restart_latency_us,
            replanned_ranks: replanned,
            reelections: healed
                .replacements()
                .iter()
                .map(|(n, j, lr)| (n.0, *j, lr.0))
                .collect(),
        },
    })
}

/// Coverage of a fully-reduced range: every rank's contribution.
pub(crate) fn full_cov(p: u32, start: u64, end: u64) -> CoverageMap {
    let mut m = CoverageMap::empty();
    for r in 0..p {
        m.union_merge(&CoverageMap::singleton(r, start, end), start, end);
    }
    m
}

/// Build the continuation world: resume the collective from the
/// checkpointed shared-memory state the crash left behind.
///
/// Preset state (what provably survived, see the module docs):
/// * gather slots of every *affected* partition hold each local rank's
///   phase-1 deposit — including the dead ranks', which the
///   deposits-safe check guaranteed;
/// * publish slots of every *unaffected* partition hold the full
///   reduction on every node.
///
/// Dead ranks get empty programs; each node's publish barrier is
/// re-registered over its survivors only.
///
/// Also reused by [`crate::integrity`] with `dead = []` and
/// `healed == orig`: re-reducing a partition whose inter-leader exchange
/// exhausted its retransmit budget is exactly a heal with nobody dead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_continuation(
    map: &RankMap,
    orig: &LeaderSet,
    healed: &LeaderSet,
    parts: &[ByteRange],
    bytes: u64,
    dead: &[u32],
    affected: &[u32],
    inner: FlatAlg,
) -> WorldProgram {
    let spec = *map.spec();
    let ppn = spec.ppn;
    let l = orig.leaders_per_node();
    let p = map.world_size();
    let mut w = WorldProgram::new(p, bytes);
    let mut b = ProgramBuilder::new();
    let is_dead = |r: Rank| dead.contains(&r.0);

    let slot_base = b.fresh_shared(l * ppn);
    let slot = |j: u32, i: u32| BufKey::Shared(slot_base + j * ppn + i);
    let bcast_base = b.fresh_shared(l);

    for j in 0..l {
        let part = parts[j as usize];
        if part.is_empty() {
            continue;
        }
        if affected.contains(&j) {
            for node in 0..spec.num_nodes {
                let members = map.ranks_on_node(NodeId(node));
                for (i, &r) in members.iter().enumerate() {
                    w.preset_shared(
                        node,
                        slot_base + j * ppn + i as u32,
                        CoverageMap::singleton(r.0, part.start, part.end),
                    );
                }
            }
        } else {
            let cov = full_cov(p, part.start, part.end);
            for node in 0..spec.num_nodes {
                w.preset_shared(node, bcast_base + j, cov.clone());
            }
        }
    }

    // Phase 2': leaders of the lost partitions re-fold from the
    // surviving deposits (the healed leader on the dead node, the
    // original leaders elsewhere — `healed` routes both).
    for node in 0..spec.num_nodes {
        let node = NodeId(node);
        for &j in affected {
            let part = parts[j as usize];
            if part.is_empty() {
                continue;
            }
            let leader = healed.leader_rank(node, j);
            debug_assert!(!is_dead(leader), "healed leader must survive");
            let prog = w.rank(leader);
            prog.copy(slot(j, 0), BUF_RESULT, part, false);
            if ppn > 1 {
                let srcs: Vec<BufKey> = (1..ppn).map(|i| slot(j, i)).collect();
                prog.reduce(srcs, BUF_RESULT, part);
            }
        }
    }

    // Phase 3': the lost partitions alone repeat the inter-node
    // allreduce, over the healed leader communicators.
    for &j in affected {
        let part = parts[j as usize];
        if part.is_empty() {
            continue;
        }
        let comm = healed.leader_comm(j);
        emit_flat_range(&mut w, &mut b, &comm, BUF_RESULT, part, inner);
    }

    // Phase 4': publish the re-reduced partitions, then every survivor
    // copies the whole vector out of the publish slots. (Survivors were
    // all blocked at their publish barriers when the crash drained the
    // queue, so none of them completed phase 4 in the original run.)
    for node in 0..spec.num_nodes {
        let node = NodeId(node);
        let members = map.ranks_on_node(node);
        let survivors: Vec<Rank> = members.iter().copied().filter(|&r| !is_dead(r)).collect();
        let need_barrier = affected.iter().any(|&j| !parts[j as usize].is_empty());
        let publish_done = if need_barrier {
            let id = b.fresh_barrier();
            w.register_barrier(id, survivors.clone());
            Some(id)
        } else {
            None
        };
        for &r in &survivors {
            let my_socket = map.socket_of(r);
            let prog = w.rank(r);
            for &j in affected {
                let part = parts[j as usize];
                if !part.is_empty() && healed.leader_rank(node, j) == r {
                    prog.copy(BUF_RESULT, BufKey::Shared(bcast_base + j), part, false);
                }
            }
            if let Some(id) = publish_done {
                prog.barrier(id);
            }
            for j in 0..l {
                let part = parts[j as usize];
                if part.is_empty() {
                    continue;
                }
                let is_affected = affected.contains(&j);
                let publisher = if is_affected {
                    healed.leader_rank(node, j)
                } else {
                    orig.leader_rank(node, j)
                };
                if is_affected && publisher == r {
                    continue; // the healed leader already holds it
                }
                let cross = map.socket_of(publisher) != my_socket;
                prog.copy(BufKey::Shared(bcast_base + j), BUF_RESULT, part, cross);
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpml_fabric::presets::cluster_a;

    fn spec_4x4(preset: &Preset) -> ClusterSpec {
        preset.spec(4, 4).unwrap()
    }

    fn crash_plan(rank: u32, at: f64) -> FaultPlan {
        FaultPlan {
            process: ProcessFaults::single(rank, at),
            ..FaultPlan::zero()
        }
    }

    #[test]
    fn zero_crash_plan_is_clean_and_bit_identical() {
        let p = cluster_a();
        let spec = spec_4x4(&p);
        let alg = Algorithm::Dpml {
            leaders: 2,
            inner: FlatAlg::RecursiveDoubling,
        };
        let clean = crate::run::run_allreduce(&p, &spec, alg, 64 * 1024).unwrap();
        let out = run_dpml_failstop(
            &p,
            &spec,
            2,
            FlatAlg::RecursiveDoubling,
            64 * 1024,
            &FaultPlan::zero(),
        )
        .unwrap();
        let FailstopOutcome::Clean { report } = out else {
            panic!("expected clean outcome");
        };
        assert_eq!(clean.latency_us.to_bits(), report.latency_us.to_bits());
        assert_eq!(clean.report, report.report);
    }

    #[test]
    fn dead_leader_heals_and_beats_cold_restart() {
        let p = cluster_a();
        let spec = spec_4x4(&p);
        let alg = Algorithm::Dpml {
            leaders: 2,
            inner: FlatAlg::RecursiveDoubling,
        };
        // Crash mid-phase-3: past the deposits, before completion.
        let clean_us = crate::run::run_allreduce(&p, &spec, alg, 1 << 20)
            .unwrap()
            .latency_us;
        // Rank 6 = node 1, local 2 = leader index 1 under PerNode(2)
        // (leaders spread across sockets at locals 0 and 2).
        let out = run_dpml_failstop(
            &p,
            &spec,
            2,
            FlatAlg::RecursiveDoubling,
            1 << 20,
            &crash_plan(6, 0.6 * clean_us * 1e-6),
        )
        .unwrap();
        let FailstopOutcome::Healed { report, recovery } = out else {
            panic!("expected a heal, got {out:?}");
        };
        assert_eq!(recovery.dead_ranks, vec![6]);
        assert!(
            recovery.healed_latency_us < recovery.cold_restart_latency_us,
            "healed {} must beat cold restart {}",
            recovery.healed_latency_us,
            recovery.cold_restart_latency_us
        );
        // Re-election happened on node 1 for leader index 1.
        assert_eq!(recovery.reelections.len(), 1);
        assert_eq!(recovery.reelections[0].0, 1);
        assert_eq!(recovery.reelections[0].1, 1);
        // The healed comm (4 nodes) plus node 1's survivors (3) minus
        // overlap: replanned ranks include every index-1 leader.
        assert!(recovery.replanned_ranks.len() >= 4);
        report.report.verify_allreduce_excluding(&[6]).unwrap();
    }

    #[test]
    fn dead_non_leader_heals_without_reelection() {
        let p = cluster_a();
        let spec = spec_4x4(&p);
        let alg = Algorithm::Dpml {
            leaders: 2,
            inner: FlatAlg::RecursiveDoubling,
        };
        let clean_us = crate::run::run_allreduce(&p, &spec, alg, 1 << 18)
            .unwrap()
            .latency_us;
        // Rank 3 = node 0, local 3: not a leader under PerNode(2).
        let out = run_dpml_failstop(
            &p,
            &spec,
            2,
            FlatAlg::RecursiveDoubling,
            1 << 18,
            &crash_plan(3, 0.7 * clean_us * 1e-6),
        )
        .unwrap();
        let FailstopOutcome::Healed { report, recovery } = out else {
            panic!("expected a heal, got {out:?}");
        };
        assert!(recovery.reelections.is_empty());
        assert!(recovery.healed_latency_us < recovery.cold_restart_latency_us);
        report.report.verify_allreduce_excluding(&[3]).unwrap();
    }

    #[test]
    fn crash_at_time_zero_cold_restarts() {
        let p = cluster_a();
        let spec = spec_4x4(&p);
        // Dying at t=0 aborts the phase-1 deposits: unrecoverable.
        let out = run_dpml_failstop(
            &p,
            &spec,
            2,
            FlatAlg::RecursiveDoubling,
            1 << 18,
            &crash_plan(6, 0.0),
        )
        .unwrap();
        let FailstopOutcome::ColdRestart {
            reason, recovery, ..
        } = out
        else {
            panic!("expected a cold restart, got {out:?}");
        };
        assert!(reason.contains("deposits"), "reason: {reason}");
        assert_eq!(
            recovery.healed_latency_us.to_bits(),
            recovery.cold_restart_latency_us.to_bits()
        );
    }

    #[test]
    fn whole_node_loss_cold_restarts() {
        let p = cluster_a();
        let spec = spec_4x4(&p);
        let plan = FaultPlan {
            process: ProcessFaults {
                lost_nodes: vec![2],
                ..Default::default()
            },
            ..FaultPlan::zero()
        };
        let out =
            run_dpml_failstop(&p, &spec, 2, FlatAlg::RecursiveDoubling, 1 << 16, &plan).unwrap();
        let FailstopOutcome::ColdRestart { reason, .. } = out else {
            panic!("expected a cold restart, got {out:?}");
        };
        assert!(reason.contains("node 2"), "reason: {reason}");
    }

    #[test]
    fn heals_under_every_inner_algorithm() {
        let p = cluster_a();
        let spec = spec_4x4(&p);
        for inner in [
            FlatAlg::RecursiveDoubling,
            FlatAlg::Rabenseifner,
            FlatAlg::Ring,
        ] {
            let clean_us = crate::run::run_allreduce(
                &p,
                &spec,
                Algorithm::Dpml { leaders: 4, inner },
                1 << 20,
            )
            .unwrap()
            .latency_us;
            let out = run_dpml_failstop(
                &p,
                &spec,
                4,
                inner,
                1 << 20,
                &crash_plan(9, 0.5 * clean_us * 1e-6),
            )
            .unwrap();
            let FailstopOutcome::Healed { report, recovery } = out else {
                panic!("{inner:?}: expected a heal, got {out:?}");
            };
            assert!(recovery.healed_latency_us < recovery.cold_restart_latency_us);
            report.report.verify_allreduce_excluding(&[9]).unwrap();
        }
    }
}
