//! The full collective-operation library beyond allreduce.
//!
//! The paper's closing line — *"we would like to explore the possibilities
//! of exploiting the DPML approach for other blocking and non-blocking
//! collectives as well"* — plus the classics any MPI-like runtime needs as
//! baselines. Every collective is a schedule compiler over the same
//! [`dpml_engine::program`] IR, and every one is verified by coverage
//! pattern (see the `expected_*` helpers): data distribution semantics are
//! proven, not assumed.
//!
//! | Collective | Algorithms | Semantics verified |
//! |---|---|---|
//! | [`allgather`] | recursive doubling, ring, Bruck | block `i` of every rank holds `{i}` |
//! | [`reduce_scatter`] | recursive halving, ring | block `i` of rank `i` holds all ranks |
//! | [`gather_scatter`] | binomial gather / binomial scatter | root assembles / roots' blocks land |
//! | [`alltoall`] | pairwise exchange, Bruck-style shifted | block `i` of every rank holds `{i}` (personalized) |
//! | [`barrier`] | dissemination over 0-byte messages | none (timing only) |
//! | [`crate::algorithms::extensions`] | DPML reduce / DPML bcast | rooted patterns |

pub mod allgather;
pub mod alltoall;
pub mod barrier;
pub mod gather_scatter;
pub mod reduce_scatter;

use dpml_engine::coverage::RankSet;
use dpml_engine::program::ByteRange;

/// The per-rank block decomposition collectives with "personalized" or
/// "scattered" semantics use: block `i` of `p` over `[0, n)`.
pub fn blocks(n: u64, p: u32) -> Vec<ByteRange> {
    ByteRange::partition(n, p)
}

/// Expected coverage pattern after an allgather or alltoall: block `i`
/// holds exactly rank `i`'s contribution.
pub fn expected_block_identity(n: u64, p: u32) -> Vec<((u64, u64), RankSet)> {
    blocks(n, p)
        .into_iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(i, r)| ((r.start, r.end), RankSet::singleton(i as u32)))
        .collect()
}

/// Expected coverage after a reduce-scatter, for rank `i`: its own block
/// holds every rank's contribution.
pub fn expected_reduce_scatter_block(n: u64, p: u32, rank: u32) -> Vec<((u64, u64), RankSet)> {
    let b = blocks(n, p)[rank as usize];
    if b.is_empty() {
        vec![]
    } else {
        vec![((b.start, b.end), RankSet::full(p))]
    }
}

/// Expected coverage after a scatter from `root`, for any rank: its block
/// holds the root's contribution.
pub fn expected_scatter_block(n: u64, p: u32, rank: u32, root: u32) -> Vec<((u64, u64), RankSet)> {
    let b = blocks(n, p)[rank as usize];
    if b.is_empty() {
        vec![]
    } else {
        vec![((b.start, b.end), RankSet::singleton(root))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_identity_pattern_shape() {
        let pat = expected_block_identity(100, 4);
        assert_eq!(pat.len(), 4);
        assert_eq!(pat[0].0, (0, 25));
        assert!(pat[2].1.contains(2));
        assert!(!pat[2].1.contains(1));
    }

    #[test]
    fn tiny_vector_drops_empty_blocks() {
        let pat = expected_block_identity(2, 4);
        assert_eq!(pat.len(), 2);
    }

    #[test]
    fn reduce_scatter_pattern() {
        let pat = expected_reduce_scatter_block(100, 4, 3);
        assert_eq!(pat.len(), 1);
        assert_eq!(pat[0].0, (75, 100));
        assert_eq!(pat[0].1.count(), 4);
    }
}
