//! Allgather: every rank contributes its block; everyone ends with all
//! blocks. Verified with [`crate::collectives::expected_block_identity`].

use crate::collectives::blocks;
use dpml_engine::program::{ByteRange, ProgramBuilder, WorldProgram, BUF_INPUT, BUF_RESULT};
use dpml_topology::Rank;
use serde::{Deserialize, Serialize};

/// Allgather algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllgatherAlg {
    /// Recursive doubling (`lg p` steps, power-of-two member counts only —
    /// others fall back to [`AllgatherAlg::Bruck`]).
    RecursiveDoubling,
    /// Ring (`p - 1` steps, bandwidth-optimal).
    Ring,
    /// Bruck's dissemination algorithm (`ceil(lg p)` steps, any `p`).
    Bruck,
}

/// Wrap-around block span `[first, first+count)` (mod `p`) as one or two
/// contiguous vector ranges.
fn block_span(bl: &[ByteRange], p: usize, first: usize, count: usize) -> Vec<ByteRange> {
    debug_assert!(count >= 1 && count <= p);
    let first = first % p;
    let mut out = Vec::with_capacity(2);
    if first + count <= p {
        let (a, b) = (bl[first], bl[first + count - 1]);
        if a.start < b.end {
            out.push(ByteRange::new(a.start, b.end));
        }
    } else {
        let (a, b) = (bl[first], bl[p - 1]);
        if a.start < b.end {
            out.push(ByteRange::new(a.start, b.end));
        }
        let wrap = first + count - p;
        let (c, d) = (bl[0], bl[wrap - 1]);
        if c.start < d.end {
            out.push(ByteRange::new(c.start, d.end));
        }
    }
    out
}

/// Emit an allgather over `comm` on the whole `n`-byte vector: member `i`
/// contributes block `i`.
pub fn emit_allgather(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    n: u64,
    alg: AllgatherAlg,
) {
    let p = comm.len();
    let bl = blocks(n, p as u32);
    // Everyone seeds its own block.
    for (i, &r) in comm.iter().enumerate() {
        if !bl[i].is_empty() {
            w.rank(r).copy(BUF_INPUT, BUF_RESULT, bl[i], false);
        }
    }
    if p <= 1 {
        return;
    }
    match alg {
        AllgatherAlg::RecursiveDoubling if p.is_power_of_two() => {
            emit_rd(w, b, comm, &bl);
        }
        AllgatherAlg::RecursiveDoubling | AllgatherAlg::Bruck => emit_bruck(w, b, comm, &bl),
        AllgatherAlg::Ring => emit_ring(w, b, comm, &bl),
    }
}

/// Recursive doubling: at step `k` exchange the `2^k` blocks currently
/// held with the partner `idx ^ 2^k`; held blocks stay contiguous and
/// aligned, so each message is one range.
fn emit_rd(w: &mut WorldProgram, b: &mut ProgramBuilder, comm: &[Rank], bl: &[ByteRange]) {
    let p = comm.len();
    let steps = p.trailing_zeros();
    let tag0 = b.fresh_tags(steps);
    for step in 0..steps {
        let chunk = 1usize << step;
        let tag = tag0 + step;
        for (i, &me) in comm.iter().enumerate() {
            let peer_idx = i ^ chunk;
            // I currently hold the aligned group of `chunk` blocks that
            // contains my index; my peer holds the sibling group.
            let mine_first = (i / chunk) * chunk;
            let theirs_first = (peer_idx / chunk) * chunk;
            let mine = ByteRange::new(bl[mine_first].start, bl[mine_first + chunk - 1].end);
            let prog = w.rank(me);
            let s = prog.isend(comm[peer_idx], tag, BUF_RESULT, mine);
            let r = prog.irecv(comm[peer_idx], tag, BUF_RESULT);
            prog.wait_all(vec![s, r]);
            let _ = theirs_first;
        }
    }
}

/// Ring: `p - 1` steps, each forwarding the block received last step.
fn emit_ring(w: &mut WorldProgram, b: &mut ProgramBuilder, comm: &[Rank], bl: &[ByteRange]) {
    let p = comm.len();
    let tag0 = b.fresh_tags((p - 1) as u32);
    for s in 0..p - 1 {
        let tag = tag0 + s as u32;
        for (i, &me) in comm.iter().enumerate() {
            let next = comm[(i + 1) % p];
            let prev = comm[(i + p - 1) % p];
            let send_block = bl[(i + p - s) % p];
            let prog = w.rank(me);
            let snd = prog.isend(next, tag, BUF_RESULT, send_block);
            let rcv = prog.irecv(prev, tag, BUF_RESULT);
            prog.wait_all(vec![snd, rcv]);
        }
    }
}

/// Bruck / dissemination: at step `k` (span `c = 2^k`), rank `i` receives
/// from `(i + c) mod p` the blocks `[i + c, i + 2c)` (clipped to `p`
/// total) and sends its own first blocks to `(i - c) mod p`. Wrapping
/// spans ship as up to two messages.
fn emit_bruck(w: &mut WorldProgram, b: &mut ProgramBuilder, comm: &[Rank], bl: &[ByteRange]) {
    let p = comm.len();
    let steps = usize::BITS - (p - 1).leading_zeros();
    // Reserve two tags per step (wrap split).
    let tag0 = b.fresh_tags(steps * 2);
    let mut held = 1usize; // blocks currently held: [i, i + held) mod p
    for step in 0..steps {
        let c = held.min(p - held); // how many more blocks this step moves
        if c == 0 {
            break;
        }
        let t0 = tag0 + step * 2;
        for (i, &me) in comm.iter().enumerate() {
            let dst = comm[(i + p - held) % p];
            let src = comm[(i + held) % p];
            // I send blocks [i, i + c) to the rank `held` behind me, and
            // receive blocks [i + held, i + held + c) from `held` ahead.
            let send_ranges = block_span(bl, p, i, c);
            let incoming = block_span(bl, p, (i + held) % p, c);
            let prog = w.rank(me);
            let mut reqs = Vec::with_capacity(4);
            for (j, range) in send_ranges.iter().enumerate() {
                reqs.push(prog.isend(dst, t0 + j as u32, BUF_RESULT, *range));
            }
            // The incoming span may split differently from the outgoing
            // one; post one receive per incoming piece.
            for (j, _) in incoming.iter().enumerate() {
                reqs.push(prog.irecv(src, t0 + j as u32, BUF_RESULT));
            }
            prog.wait_all(reqs);
        }
        held += c;
    }
    debug_assert_eq!(held, p);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::expected_block_identity;
    use dpml_engine::{SimConfig, Simulator};
    use dpml_fabric::presets::cluster_b;
    use dpml_topology::{ClusterSpec, RankMap};

    fn run(nodes: u32, ppn: u32, n: u64, alg: AllgatherAlg) {
        let preset = cluster_b();
        let spec = ClusterSpec::new(nodes, 2, 14, ppn).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric, preset.switch).unwrap();
        let comm: Vec<Rank> = map.all_ranks().collect();
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), n);
        let mut b = ProgramBuilder::new();
        emit_allgather(&mut w, &mut b, &comm, n, alg);
        let rep = Simulator::new(&cfg).run(&w).unwrap();
        let expected = expected_block_identity(n, map.world_size());
        for r in 0..map.world_size() {
            rep.verify_rank_segments(r, &expected)
                .unwrap_or_else(|e| panic!("{alg:?} {nodes}x{ppn} {n}B rank {r}: {e}"));
        }
    }

    #[test]
    fn rd_power_of_two() {
        run(8, 1, 4096, AllgatherAlg::RecursiveDoubling);
        run(4, 4, 997, AllgatherAlg::RecursiveDoubling);
    }

    #[test]
    fn rd_falls_back_for_non_pow2() {
        run(6, 1, 600, AllgatherAlg::RecursiveDoubling);
    }

    #[test]
    fn ring_any_p() {
        run(3, 1, 1000, AllgatherAlg::Ring);
        run(5, 2, 64, AllgatherAlg::Ring);
        run(8, 1, 1 << 16, AllgatherAlg::Ring);
    }

    #[test]
    fn bruck_any_p() {
        for p in [2u32, 3, 5, 7, 8, 12] {
            run(p, 1, 1200, AllgatherAlg::Bruck);
        }
    }

    #[test]
    fn bruck_multi_rank_nodes() {
        run(3, 3, 900, AllgatherAlg::Bruck);
    }

    #[test]
    fn tiny_vector() {
        run(8, 1, 3, AllgatherAlg::Bruck);
        run(8, 1, 3, AllgatherAlg::Ring);
    }

    #[test]
    fn block_span_wraps() {
        let bl = blocks(100, 4);
        let spans = block_span(&bl, 4, 3, 2); // blocks 3, 0
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], ByteRange::new(75, 100));
        assert_eq!(spans[1], ByteRange::new(0, 25));
        let spans = block_span(&bl, 4, 1, 2);
        assert_eq!(spans, vec![ByteRange::new(25, 75)]);
    }
}
