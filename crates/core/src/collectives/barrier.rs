//! Barrier: synchronization-only collectives (timing, no data).

use dpml_engine::program::{BufKey, ByteRange, ProgramBuilder, WorldProgram};
use dpml_topology::{NodeId, Rank, RankMap};
use serde::{Deserialize, Serialize};

/// Barrier algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BarrierAlg {
    /// Dissemination over zero-byte messages: `ceil(lg p)` rounds, at
    /// round `k` signal `(i + 2^k) mod p` and wait for `(i - 2^k) mod p`.
    Dissemination,
    /// Hierarchical: intra-node shared-memory barrier, dissemination among
    /// node leaders, intra-node release — the shape MPI libraries use at
    /// full subscription.
    Hierarchical,
}

/// Emit a dissemination barrier over an explicit communicator.
pub fn emit_dissemination(w: &mut WorldProgram, b: &mut ProgramBuilder, comm: &[Rank]) {
    let p = comm.len();
    if p <= 1 {
        return;
    }
    let steps = usize::BITS - (p - 1).leading_zeros();
    let tag0 = b.fresh_tags(steps);
    let sink = BufKey::Priv(b.fresh_priv(1));
    for step in 0..steps {
        let d = 1usize << step;
        let tag = tag0 + step;
        for (i, &me) in comm.iter().enumerate() {
            let to = comm[(i + d) % p];
            let from = comm[(i + p - d) % p];
            let prog = w.rank(me);
            let s = prog.isend(to, tag, sink, ByteRange::new(0, 0));
            let r = prog.irecv(from, tag, sink);
            prog.wait_all(vec![s, r]);
        }
    }
}

/// Emit a whole-world barrier with the chosen algorithm.
pub fn emit_barrier(w: &mut WorldProgram, b: &mut ProgramBuilder, map: &RankMap, alg: BarrierAlg) {
    match alg {
        BarrierAlg::Dissemination => {
            let comm: Vec<Rank> = map.all_ranks().collect();
            emit_dissemination(w, b, &comm);
        }
        BarrierAlg::Hierarchical => {
            let spec = *map.spec();
            // Arrive: intra-node barrier per node.
            for node in 0..spec.num_nodes {
                let members = map.ranks_on_node(NodeId(node));
                let arrive = b.fresh_barrier();
                w.register_barrier(arrive, members.clone());
                for &r in &members {
                    w.rank(r).barrier(arrive);
                }
            }
            // Leaders synchronize across nodes.
            let leaders: Vec<Rank> = (0..spec.num_nodes)
                .map(|n| map.ranks_on_node(NodeId(n))[0])
                .collect();
            emit_dissemination(w, b, &leaders);
            // Release: second intra-node barrier.
            for node in 0..spec.num_nodes {
                let members = map.ranks_on_node(NodeId(node));
                let release = b.fresh_barrier();
                w.register_barrier(release, members.clone());
                for &r in &members {
                    w.rank(r).barrier(release);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpml_engine::program::{BUF_INPUT, BUF_RESULT};
    use dpml_engine::{SimConfig, Simulator};
    use dpml_fabric::presets::cluster_b;
    use dpml_topology::ClusterSpec;

    fn sim(nodes: u32, ppn: u32) -> (RankMap, SimConfig) {
        let preset = cluster_b();
        let spec = ClusterSpec::new(nodes, 2, 14, ppn).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric, preset.switch).unwrap();
        (map, cfg)
    }

    /// A barrier must hold everyone until the slowest rank arrives.
    fn check_holds_stragglers(alg: BarrierAlg, nodes: u32, ppn: u32) {
        let (map, cfg) = sim(nodes, ppn);
        let n = 64u64;
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), n);
        let mut b = ProgramBuilder::new();
        // Rank 0 is 1ms late.
        w.rank(Rank(0)).compute(1e-3);
        emit_barrier(&mut w, &mut b, &map, alg);
        for r in map.all_ranks() {
            w.rank(r)
                .copy(BUF_INPUT, BUF_RESULT, ByteRange::whole(n), false);
        }
        let rep = Simulator::new(&cfg).run(&w).unwrap();
        for (i, t) in rep.finish_times.iter().enumerate() {
            assert!(
                t.seconds() >= 1e-3,
                "{alg:?}: rank {i} escaped the barrier at {t}"
            );
        }
    }

    #[test]
    fn dissemination_holds_stragglers() {
        check_holds_stragglers(BarrierAlg::Dissemination, 4, 2);
        check_holds_stragglers(BarrierAlg::Dissemination, 5, 1);
    }

    #[test]
    fn hierarchical_holds_stragglers() {
        check_holds_stragglers(BarrierAlg::Hierarchical, 4, 4);
        check_holds_stragglers(BarrierAlg::Hierarchical, 3, 5);
    }

    #[test]
    fn hierarchical_sends_fewer_inter_node_messages() {
        let (map, cfg) = sim(8, 8);
        let run = |alg| {
            let mut w = dpml_engine::WorldProgram::new(map.world_size(), 8);
            let mut b = ProgramBuilder::new();
            emit_barrier(&mut w, &mut b, &map, alg);
            Simulator::new(&cfg)
                .run(&w)
                .unwrap()
                .stats
                .inter_node_messages
        };
        let flat = run(BarrierAlg::Dissemination);
        let hier = run(BarrierAlg::Hierarchical);
        assert!(hier < flat, "hier {hier} !< flat {flat}");
    }

    #[test]
    fn single_rank_barrier_is_free() {
        let (map, cfg) = sim(1, 1);
        let mut w = dpml_engine::WorldProgram::new(1, 8);
        let mut b = ProgramBuilder::new();
        emit_barrier(&mut w, &mut b, &map, BarrierAlg::Dissemination);
        let rep = Simulator::new(&cfg).run(&w).unwrap();
        assert_eq!(rep.stats.messages, 0);
    }
}
