//! Gather (binomial tree to a root) and Scatter (binomial tree from a
//! root). Block `i` of the vector is rank `i`'s personal block.

use crate::collectives::blocks;
use dpml_engine::program::{ByteRange, ProgramBuilder, WorldProgram, BUF_INPUT, BUF_RESULT};
use dpml_topology::Rank;

/// Wrap-around block span `[first, first+count)` (mod `p`) as ranges.
fn span_ranges(bl: &[ByteRange], p: usize, first: usize, count: usize) -> Vec<ByteRange> {
    let mut out = Vec::with_capacity(2);
    if first + count <= p {
        let r = ByteRange::new(bl[first].start, bl[first + count - 1].end);
        if !r.is_empty() {
            out.push(r);
        }
    } else {
        let a = ByteRange::new(bl[first].start, bl[p - 1].end);
        if !a.is_empty() {
            out.push(a);
        }
        let b = ByteRange::new(bl[0].start, bl[first + count - p - 1].end);
        if !b.is_empty() {
            out.push(b);
        }
    }
    out
}

/// Emit a binomial gather to `root`: afterwards the root's result buffer
/// holds block `i` from member `i` for every `i` (verify with
/// `expected_block_identity` at the root only).
pub fn emit_gather(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    n: u64,
    root: Rank,
) {
    let p = comm.len();
    let bl = blocks(n, p as u32);
    let root_idx = comm.iter().position(|&r| r == root).expect("root in comm");
    // Everyone seeds its own block into its result buffer, which doubles
    // as the staging area for the subtree it forwards.
    for (i, &r) in comm.iter().enumerate() {
        if !bl[i].is_empty() {
            w.rank(r).copy(BUF_INPUT, BUF_RESULT, bl[i], false);
        }
    }
    if p == 1 {
        return;
    }
    let steps = usize::BITS - (p - 1).leading_zeros();
    let tag0 = b.fresh_tags(steps * 2);
    // Work in root-relative index space: rel = (i - root) mod p. After the
    // step with mask m, relative rank `rel` (with rel & m == 0) holds the
    // blocks of relative ranks [rel, rel + 2m) ∩ [0, p).
    for step in 0..steps {
        let mask = 1usize << step;
        let t0 = tag0 + step * 2;
        for rel in 0..p {
            let i = (rel + root_idx) % p;
            let me = comm[i];
            if rel & mask != 0 {
                // Send my whole accumulated subtree to rel - mask.
                let have = (2 * mask).min(p - rel).min(mask);
                // I currently hold relative blocks [rel, rel + have).
                let parent = comm[(rel - mask + root_idx) % p];
                for (j, range) in span_ranges(&bl, p, (rel + root_idx) % p, have)
                    .into_iter()
                    .enumerate()
                {
                    w.rank(me).send(parent, t0 + j as u32, BUF_RESULT, range);
                }
            } else if rel + mask < p {
                // Receive the child's subtree: relative blocks
                // [rel + mask, rel + 2*mask) ∩ [0, p).
                let child_rel = rel + mask;
                let child_count = mask.min(p - child_rel);
                let child = comm[(child_rel + root_idx) % p];
                let pieces = span_ranges(&bl, p, (child_rel + root_idx) % p, child_count).len();
                for j in 0..pieces {
                    w.rank(me).recv(child, t0 + j as u32, BUF_RESULT);
                }
            }
        }
    }
}

/// Emit a binomial scatter from `root`: afterwards every member `i` holds
/// the root's contribution over block `i` (verify with
/// `expected_scatter_block`).
pub fn emit_scatter(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    n: u64,
    root: Rank,
) {
    let p = comm.len();
    let bl = blocks(n, p as u32);
    let root_idx = comm.iter().position(|&r| r == root).expect("root in comm");
    // Root stages the whole vector.
    w.rank(root)
        .copy(BUF_INPUT, BUF_RESULT, ByteRange::whole(n), false);
    if p == 1 {
        return;
    }
    let steps = usize::BITS - (p - 1).leading_zeros();
    let tag0 = b.fresh_tags(steps * 2);
    // Reverse of gather: at the step with mask m (descending), relative
    // rank rel (rel & below-mask bits == 0, rel & m == 0) sends relative
    // blocks [rel + m, rel + 2m) ∩ [0, p) to rel + m.
    for step in (0..steps).rev() {
        let mask = 1usize << step;
        let t0 = tag0 + step * 2;
        for rel in 0..p {
            if rel % (2 * mask) != 0 {
                continue;
            }
            let child_rel = rel + mask;
            if child_rel >= p {
                continue;
            }
            let me = comm[(rel + root_idx) % p];
            let child = comm[(child_rel + root_idx) % p];
            let count = mask.min(p - child_rel);
            let pieces = span_ranges(&bl, p, (child_rel + root_idx) % p, count);
            for (j, range) in pieces.iter().enumerate() {
                w.rank(me).send(child, t0 + j as u32, BUF_RESULT, *range);
            }
            for j in 0..pieces.len() {
                w.rank(child).recv(me, t0 + j as u32, BUF_RESULT);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{expected_block_identity, expected_scatter_block};
    use dpml_engine::{SimConfig, Simulator};
    use dpml_fabric::presets::cluster_b;
    use dpml_topology::{ClusterSpec, RankMap};

    fn sim(nodes: u32, ppn: u32) -> (RankMap, SimConfig) {
        let preset = cluster_b();
        let spec = ClusterSpec::new(nodes, 2, 14, ppn).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric, preset.switch).unwrap();
        (map, cfg)
    }

    fn run_gather(nodes: u32, ppn: u32, n: u64, root: u32) {
        let (map, cfg) = sim(nodes, ppn);
        let comm: Vec<Rank> = map.all_ranks().collect();
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), n);
        let mut b = ProgramBuilder::new();
        emit_gather(&mut w, &mut b, &comm, n, Rank(root));
        let rep = Simulator::new(&cfg).run(&w).unwrap();
        let expected = expected_block_identity(n, map.world_size());
        rep.verify_rank_segments(root, &expected)
            .unwrap_or_else(|e| panic!("gather {nodes}x{ppn} {n}B root {root}: {e}"));
    }

    fn run_scatter(nodes: u32, ppn: u32, n: u64, root: u32) {
        let (map, cfg) = sim(nodes, ppn);
        let comm: Vec<Rank> = map.all_ranks().collect();
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), n);
        let mut b = ProgramBuilder::new();
        emit_scatter(&mut w, &mut b, &comm, n, Rank(root));
        let rep = Simulator::new(&cfg).run(&w).unwrap();
        let p = map.world_size();
        for r in 0..p {
            let expected = expected_scatter_block(n, p, r, root);
            rep.verify_rank_segments(r, &expected)
                .unwrap_or_else(|e| panic!("scatter {nodes}x{ppn} {n}B root {root} rank {r}: {e}"));
        }
    }

    #[test]
    fn gather_to_rank_zero() {
        run_gather(8, 1, 4096, 0);
        run_gather(4, 4, 997, 0);
        run_gather(5, 1, 500, 0);
    }

    #[test]
    fn gather_to_nonzero_root() {
        run_gather(8, 1, 800, 3);
        run_gather(6, 1, 660, 5);
    }

    #[test]
    fn scatter_from_rank_zero() {
        run_scatter(8, 1, 4096, 0);
        run_scatter(5, 1, 505, 0);
        run_scatter(4, 4, 1024, 0);
    }

    #[test]
    fn scatter_from_nonzero_root() {
        run_scatter(8, 1, 808, 6);
        run_scatter(7, 1, 700, 2);
    }

    #[test]
    fn single_rank_collectives() {
        run_gather(1, 1, 64, 0);
        run_scatter(1, 1, 64, 0);
    }

    #[test]
    fn tiny_vectors() {
        run_gather(8, 1, 3, 0);
        run_scatter(8, 1, 3, 0);
    }
}
