//! Reduce-scatter: element-wise reduction of all ranks' vectors, with
//! rank `i` keeping (only) block `i` of the result.

use crate::collectives::blocks;
use dpml_engine::program::{
    BufKey, ByteRange, ProgramBuilder, WorldProgram, BUF_INPUT, BUF_RESULT,
};
use dpml_topology::Rank;
use serde::{Deserialize, Serialize};

/// Reduce-scatter algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceScatterAlg {
    /// Recursive halving (`lg p` steps, power-of-two member counts only —
    /// others fall back to [`ReduceScatterAlg::Ring`]).
    RecursiveHalving,
    /// Ring (`p - 1` steps).
    Ring,
}

/// Emit a reduce-scatter over `comm` on the whole `n`-byte vector.
pub fn emit_reduce_scatter(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    n: u64,
    alg: ReduceScatterAlg,
) {
    let p = comm.len();
    let bl = blocks(n, p as u32);
    if p == 1 {
        if !bl[0].is_empty() {
            w.rank(comm[0]).copy(BUF_INPUT, BUF_RESULT, bl[0], false);
        }
        return;
    }
    match alg {
        ReduceScatterAlg::RecursiveHalving if p.is_power_of_two() => {
            emit_halving(w, b, comm, n);
        }
        ReduceScatterAlg::RecursiveHalving | ReduceScatterAlg::Ring => {
            emit_ring(w, b, comm, &bl);
        }
    }
}

/// Recursive halving with descending masks, so rank `i` ends owning block
/// `i` in natural order: at the step with mask `m`, keep the half of your
/// current *block span* containing your own block (bit `lg m` of the
/// index), send the other. Splits follow block boundaries so the final
/// ranges are exactly `blocks(n, p)` even when `p` does not divide `n`.
fn emit_halving(w: &mut WorldProgram, b: &mut ProgramBuilder, comm: &[Rank], n: u64) {
    let p = comm.len();
    let bl = blocks(n, p as u32);
    let span = |lo: usize, hi: usize| ByteRange::new(bl[lo].start, bl[hi - 1].end);
    let whole = ByteRange::whole(n);
    // Seed accumulators with the full input.
    for &r in comm {
        w.rank(r).copy(BUF_INPUT, BUF_RESULT, whole, false);
    }
    let steps = p.trailing_zeros();
    let scratch = BufKey::Priv(b.fresh_priv(1));
    let tag0 = b.fresh_tags(steps);
    // Owned block span per rank: [lo, hi).
    let mut owned = vec![(0usize, p); p];
    for step in (0..steps).rev() {
        let mask = 1usize << step;
        let tag = tag0 + step;
        for (i, &me) in comm.iter().enumerate() {
            let peer = comm[i ^ mask];
            let (lo, hi) = owned[i];
            let mid = (lo + hi) / 2;
            let ((klo, khi), (glo, ghi)) = if i & mask == 0 {
                ((lo, mid), (mid, hi))
            } else {
                ((mid, hi), (lo, mid))
            };
            let keep = span(klo, khi);
            let give = span(glo, ghi);
            let prog = w.rank(me);
            let s = prog.isend(peer, tag, BUF_RESULT, give);
            let r = prog.irecv(peer, tag, scratch);
            prog.wait_all(vec![s, r]);
            if !keep.is_empty() {
                prog.reduce(vec![scratch], BUF_RESULT, keep);
            }
            owned[i] = (klo, khi);
        }
    }
    debug_assert!(owned
        .iter()
        .enumerate()
        .all(|(i, &(lo, hi))| lo == i && hi == i + 1));
}

/// Ring reduce-scatter relabeled so rank `i` ends with block `i` (the
/// plain ring ends at block `(i + 1) mod p`; we shift the chunk schedule
/// by one).
fn emit_ring(w: &mut WorldProgram, b: &mut ProgramBuilder, comm: &[Rank], bl: &[ByteRange]) {
    let p = comm.len();
    for &r in comm {
        w.rank(r).copy(
            BUF_INPUT,
            BUF_RESULT,
            ByteRange::new(bl[0].start, bl[p - 1].end),
            false,
        );
    }
    let scratch = BufKey::Priv(b.fresh_priv(1));
    let tag0 = b.fresh_tags((p - 1) as u32);
    for s in 0..p - 1 {
        let tag = tag0 + s as u32;
        for (i, &me) in comm.iter().enumerate() {
            let next = comm[(i + 1) % p];
            let prev = comm[(i + p - 1) % p];
            // Virtual index v = i - 1 so the final fully-reduced chunk is
            // block i instead of block (i + 1) mod p.
            let send_chunk = bl[(i + 2 * p - 1 - s) % p];
            let recv_chunk = bl[(i + 2 * p - 2 - s) % p];
            let prog = w.rank(me);
            let snd = prog.isend(next, tag, BUF_RESULT, send_chunk);
            let rcv = prog.irecv(prev, tag, scratch);
            prog.wait_all(vec![snd, rcv]);
            prog.reduce(vec![scratch], BUF_RESULT, recv_chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::expected_reduce_scatter_block;
    use dpml_engine::{SimConfig, Simulator};
    use dpml_fabric::presets::cluster_b;
    use dpml_topology::{ClusterSpec, RankMap};

    fn run(nodes: u32, ppn: u32, n: u64, alg: ReduceScatterAlg) {
        let preset = cluster_b();
        let spec = ClusterSpec::new(nodes, 2, 14, ppn).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric, preset.switch).unwrap();
        let comm: Vec<Rank> = map.all_ranks().collect();
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), n);
        let mut b = ProgramBuilder::new();
        emit_reduce_scatter(&mut w, &mut b, &comm, n, alg);
        let rep = Simulator::new(&cfg).run(&w).unwrap();
        let p = map.world_size();
        for r in 0..p {
            let expected = expected_reduce_scatter_block(n, p, r);
            rep.verify_rank_segments(r, &expected)
                .unwrap_or_else(|e| panic!("{alg:?} {nodes}x{ppn} {n}B rank {r}: {e}"));
        }
    }

    #[test]
    fn halving_power_of_two() {
        run(8, 1, 4096, ReduceScatterAlg::RecursiveHalving);
        run(4, 4, 1 << 16, ReduceScatterAlg::RecursiveHalving);
    }

    #[test]
    fn halving_odd_vector_lengths() {
        run(8, 1, 1001, ReduceScatterAlg::RecursiveHalving);
        run(16, 1, 17, ReduceScatterAlg::RecursiveHalving);
    }

    #[test]
    fn halving_falls_back_non_pow2() {
        run(6, 1, 660, ReduceScatterAlg::RecursiveHalving);
    }

    #[test]
    fn ring_any_p() {
        for p in [2u32, 3, 5, 8] {
            run(p, 1, 1000, ReduceScatterAlg::Ring);
        }
        run(3, 4, 840, ReduceScatterAlg::Ring);
    }

    #[test]
    fn single_rank() {
        run(1, 1, 64, ReduceScatterAlg::Ring);
    }
}
