//! All-to-all personalized exchange.
//!
//! Every rank holds a distinct chunk for every other rank; after the
//! collective, rank `j` holds rank `i`'s chunk in block `i` for all `i`.
//!
//! Coverage modeling note: the symbolic tracker records *who contributed*
//! a byte range, not which of the sender's chunks it was, so rank `i`'s
//! personalized chunk for every destination is represented by its identity
//! block `i`. The message *pattern* — `p - 1` distinct point-to-point
//! transfers of `n/p` bytes per rank, nothing forwardable — is exactly
//! all-to-all's, which is what the timing model and the verification
//! (every pairwise delivery observed) care about.

use crate::collectives::blocks;
use dpml_engine::program::{ProgramBuilder, WorldProgram, BUF_INPUT, BUF_RESULT};
use dpml_topology::Rank;
use serde::{Deserialize, Serialize};

/// All-to-all algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlltoallAlg {
    /// Shifted exchange: at step `s`, send to `(i + s) mod p` and receive
    /// from `(i - s) mod p` (the classic large-message schedule).
    PairwiseShift,
    /// XOR pairing: at step `s`, exchange with `i ^ s` (power-of-two
    /// member counts only — others fall back to shifting).
    PairwiseXor,
}

/// Emit an all-to-all over `comm` on the whole `n`-byte vector.
pub fn emit_alltoall(
    w: &mut WorldProgram,
    b: &mut ProgramBuilder,
    comm: &[Rank],
    n: u64,
    alg: AlltoallAlg,
) {
    let p = comm.len();
    let bl = blocks(n, p as u32);
    // Own chunk "arrives" locally.
    for (i, &r) in comm.iter().enumerate() {
        if !bl[i].is_empty() {
            w.rank(r).copy(BUF_INPUT, BUF_RESULT, bl[i], false);
        }
    }
    if p == 1 {
        return;
    }
    let tag0 = b.fresh_tags((p - 1) as u32);
    let xor = matches!(alg, AlltoallAlg::PairwiseXor) && p.is_power_of_two();
    for s in 1..p {
        let tag = tag0 + (s - 1) as u32;
        for (i, &me) in comm.iter().enumerate() {
            let (to, from) = if xor {
                (comm[i ^ s], comm[i ^ s])
            } else {
                (comm[(i + s) % p], comm[(i + p - s) % p])
            };
            let prog = w.rank(me);
            let mut reqs = Vec::with_capacity(2);
            if !bl[i].is_empty() {
                reqs.push(prog.isend(to, tag, BUF_INPUT, bl[i]));
            }
            let from_idx = comm.iter().position(|&r| r == from).expect("member");
            if !bl[from_idx].is_empty() {
                reqs.push(prog.irecv(from, tag, BUF_RESULT));
            }
            if !reqs.is_empty() {
                prog.wait_all(reqs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::expected_block_identity;
    use dpml_engine::{SimConfig, Simulator};
    use dpml_fabric::presets::cluster_b;
    use dpml_topology::{ClusterSpec, RankMap};

    fn run(nodes: u32, ppn: u32, n: u64, alg: AlltoallAlg) -> dpml_engine::RunReport {
        let preset = cluster_b();
        let spec = ClusterSpec::new(nodes, 2, 14, ppn).unwrap();
        let map = RankMap::block(&spec);
        let cfg = SimConfig::new(map.clone(), preset.fabric, preset.switch).unwrap();
        let comm: Vec<Rank> = map.all_ranks().collect();
        let mut w = dpml_engine::WorldProgram::new(map.world_size(), n);
        let mut b = ProgramBuilder::new();
        emit_alltoall(&mut w, &mut b, &comm, n, alg);
        let rep = Simulator::new(&cfg).run(&w).unwrap();
        let expected = expected_block_identity(n, map.world_size());
        for r in 0..map.world_size() {
            rep.verify_rank_segments(r, &expected)
                .unwrap_or_else(|e| panic!("{alg:?} {nodes}x{ppn} {n}B rank {r}: {e}"));
        }
        rep
    }

    #[test]
    fn shift_any_p() {
        for p in [2u32, 3, 5, 8] {
            run(p, 1, 1000, AlltoallAlg::PairwiseShift);
        }
        run(3, 3, 900, AlltoallAlg::PairwiseShift);
    }

    #[test]
    fn xor_power_of_two() {
        run(8, 1, 1024, AlltoallAlg::PairwiseXor);
        run(4, 2, 640, AlltoallAlg::PairwiseXor);
    }

    #[test]
    fn xor_falls_back_non_pow2() {
        run(6, 1, 600, AlltoallAlg::PairwiseXor);
    }

    #[test]
    fn message_pattern_is_quadratic() {
        let rep = run(8, 1, 8000, AlltoallAlg::PairwiseShift);
        // p(p-1) point-to-point messages, nothing forwarded.
        assert_eq!(rep.stats.messages, 8 * 7);
    }

    #[test]
    fn tiny_vector() {
        run(8, 1, 3, AlltoallAlg::PairwiseShift);
    }
}
