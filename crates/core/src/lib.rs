//! The paper's contribution: Data Partitioning-based Multi-Leader (DPML)
//! reduction collectives, plus every baseline it is evaluated against.
//!
//! Algorithms are *schedule compilers*: given a cluster shape and a message
//! size they emit per-rank instruction programs
//! ([`dpml_engine::WorldProgram`]) which the discrete-event engine executes,
//! times, and verifies. The same algorithm definitions are mirrored by the
//! real-threads runtime in `dpml-shm` for numerical validation.
//!
//! | Algorithm | Paper role |
//! |---|---|
//! | [`Algorithm::RecursiveDoubling`] | flat baseline, Eq. (1) |
//! | [`Algorithm::Rabenseifner`] | flat reduce-scatter + allgather baseline |
//! | [`Algorithm::Ring`] | flat bandwidth-optimal baseline |
//! | [`Algorithm::BinomialReduceBcast`] | flat latency baseline |
//! | [`Algorithm::SingleLeader`] | classic shared-memory hierarchical design (Section 2.1) |
//! | [`Algorithm::Dpml`] | the proposed design, Section 4.1 / Figure 2 |
//! | [`Algorithm::DpmlPipelined`] | Section 4.2, Omni-Path Zone-C pipelining |
//! | [`Algorithm::SharpNodeLeader`] | Section 4.3 node-level SHArP design |
//! | [`Algorithm::SharpSocketLeader`] | Section 4.3 socket-level SHArP design |
//!
//! [`selector::Library`] emulates the per-message-size algorithm dispatch of
//! MVAPICH2 and Intel MPI (the paper's comparison baselines) and the tuned
//! DPML configuration tables of Section 6.4.

pub mod algorithms;
pub mod checkpoint;
pub mod collectives;
pub mod heal;
pub mod integrity;
pub mod profile;
pub mod resilience;
pub mod run;
pub mod selector;
pub mod tuner;

pub use algorithms::{Algorithm, BuildError, FlatAlg};
pub use checkpoint::{
    run_allreduce_checkpointed, ChunkControl, ScenarioCell, SweepCheckpoint, SweepEnd,
    CHECKPOINT_SCHEMA,
};
pub use heal::{run_dpml_failstop, FailstopOutcome, RecoveryReport};
pub use integrity::{
    run_allreduce_verified, IntegrityError, IntegrityErrorKind, IntegrityPolicy, IntegrityReport,
    LadderRung, PartitionRecovery, VerifiedError,
};
pub use profile::{
    profile_allreduce, profile_allreduce_with, CostBreakdown, PhaseBreakdown, ProfileReport,
    ProfiledRun,
};
pub use resilience::{
    run_allreduce_faulted, run_allreduce_resilient, FaultPolicy, ResilientReport,
};
pub use run::{run_allreduce, run_allreduce_with, AllreduceReport, RunOpts};

/// Intra-scenario parallelism knob, re-exported from the engine so CLI
/// and serve layers don't need a direct `dpml-engine` dependency edge.
pub use dpml_engine::Parallelism;
pub use selector::{FabricHealth, Library};
