//! One-call critical-path profiling: run a traced collective and decompose
//! its makespan into algorithm phases and bottleneck costs.
//!
//! [`profile_allreduce`] is [`crate::run_allreduce`] with tracing enabled:
//! the engine records every span, message and release edge, the
//! critical-path walker ([`dpml_engine::CriticalPath`]) attributes the
//! makespan to {latency, injection, message rate, per-flow bandwidth,
//! shared NIC capacity, compute}, and the result is summarized as a
//! serializable [`ProfileReport`] — the payload behind `dpml profile` and
//! `results/profile.json`.

use crate::algorithms::Algorithm;
use crate::run::RunError;
use dpml_engine::{CostKind, CriticalPath, Phase, RunReport, SimConfig, Simulator, Zone};
use dpml_fabric::Preset;
use dpml_sharp::SharpFabric;
use dpml_topology::{ClusterSpec, RankMap};
use serde::{Deserialize, Serialize};

/// Time attributed to one algorithm phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Phase name (see [`Phase::name`]).
    pub phase: String,
    /// Total busy span time across all ranks, seconds.
    pub busy_s: f64,
    /// Time on the critical path, seconds.
    pub critical_s: f64,
}

/// Time attributed to one bottleneck cost along the critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Cost name (see [`CostKind::name`]).
    pub kind: String,
    /// Time on the critical path, seconds.
    pub critical_s: f64,
}

/// Serializable summary of one profiled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Message size, bytes.
    pub bytes: u64,
    /// Cluster shape: nodes.
    pub nodes: u32,
    /// Cluster shape: processes per node.
    pub ppn: u32,
    /// Completion latency, microseconds.
    pub latency_us: f64,
    /// Zone classification of the dominant bottleneck (Figure 1 regimes).
    pub zone: String,
    /// The single largest cost kind on the critical path.
    pub dominant: String,
    /// Per-phase attribution (phases with any busy or critical time).
    pub phases: Vec<PhaseBreakdown>,
    /// Per-cost attribution (costs with critical-path time).
    pub costs: Vec<CostBreakdown>,
    /// Per-NIC / per-link / per-memory-bus occupancy.
    pub resources: Vec<dpml_engine::ResourceUsage>,
}

/// A profiled run: the summary plus the raw artifacts it was built from.
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// Serializable summary.
    pub profile: ProfileReport,
    /// The attributed critical path.
    pub critical: CriticalPath,
    /// The full engine report; `report.trace` is always `Some`.
    pub report: RunReport,
}

impl ProfiledRun {
    /// Typed zone classification.
    pub fn zone(&self) -> Zone {
        self.critical.zone()
    }
}

/// Compile `alg` for `bytes`, simulate it with tracing, verify the result,
/// and attribute the makespan. Block placement, as in the paper.
pub fn profile_allreduce(
    preset: &Preset,
    spec: &ClusterSpec,
    alg: Algorithm,
    bytes: u64,
) -> Result<ProfiledRun, RunError> {
    profile_allreduce_with(preset, spec, alg, bytes, dpml_engine::Parallelism::Serial)
}

/// [`profile_allreduce`] under an explicit intra-scenario parallelism
/// mode. The trace — and therefore the whole attribution — is
/// bit-identical across modes; the knob only changes wall-clock time.
pub fn profile_allreduce_with(
    preset: &Preset,
    spec: &ClusterSpec,
    alg: Algorithm,
    bytes: u64,
    parallelism: dpml_engine::Parallelism,
) -> Result<ProfiledRun, RunError> {
    let map = RankMap::block(spec);
    let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch)?;
    let world = alg.build(&map, bytes)?;
    let report = if alg.needs_sharp() {
        let params = preset.fabric.sharp.ok_or(RunError::NoSharpOnFabric)?;
        let oracle = SharpFabric::new(params, cfg.tree.clone(), map);
        Simulator::new(&cfg)
            .with_sharp(&oracle)
            .with_trace()
            .with_parallelism(parallelism)
            .run(&world)?
    } else {
        Simulator::new(&cfg)
            .with_trace()
            .with_parallelism(parallelism)
            .run(&world)?
    };
    report.verify_allreduce()?;

    let trace = report.trace.as_ref().expect("traced run carries a trace");
    let makespan = report.makespan().seconds();
    let critical = CriticalPath::from_trace(trace, makespan, preset.fabric.nic.per_flow_bw);

    let phases = Phase::ALL
        .iter()
        .map(|&ph| PhaseBreakdown {
            phase: ph.name().to_string(),
            busy_s: trace.total_phase_time(ph),
            critical_s: critical.phase_total(ph),
        })
        .filter(|row| row.busy_s > 0.0 || row.critical_s > 0.0)
        .collect();
    let costs = CostKind::ALL
        .iter()
        .map(|&k| CostBreakdown {
            kind: k.name().to_string(),
            critical_s: critical.total_of(k),
        })
        .filter(|row| row.critical_s > 0.0)
        .collect();

    let profile = ProfileReport {
        algorithm: alg.name(),
        bytes,
        nodes: spec.num_nodes,
        ppn: spec.ppn,
        latency_us: report.latency_us(),
        zone: critical.zone().name().to_string(),
        dominant: critical.dominant().name().to_string(),
        phases,
        costs,
        resources: report.resources.clone(),
    };
    Ok(ProfiledRun {
        profile,
        critical,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FlatAlg;
    use dpml_fabric::presets::{cluster_a, cluster_b};

    #[test]
    fn profile_attributes_the_whole_makespan() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        let alg = Algorithm::Dpml {
            leaders: 4,
            inner: FlatAlg::RecursiveDoubling,
        };
        let run = profile_allreduce(&p, &spec, alg, 65536).unwrap();
        let makespan = run.report.makespan().seconds();
        assert!(
            (run.critical.total() - makespan).abs() < 1e-9,
            "critical {} vs makespan {}",
            run.critical.total(),
            makespan
        );
        assert!(!run.profile.phases.is_empty());
        assert!(!run.profile.costs.is_empty());
        assert!(!run.profile.resources.is_empty());
    }

    #[test]
    fn profile_has_no_unknown_phase_spans() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        let alg = Algorithm::Dpml {
            leaders: 2,
            inner: FlatAlg::Ring,
        };
        let run = profile_allreduce(&p, &spec, alg, 4096).unwrap();
        assert!(run.profile.phases.iter().all(|row| row.phase != "unknown"));
    }

    #[test]
    fn sharp_profile_reports_sharp_phase() {
        let p = cluster_a();
        let spec = p.spec(4, 4).unwrap();
        let run = profile_allreduce(&p, &spec, Algorithm::SharpSocketLeader, 1024).unwrap();
        assert!(run.profile.phases.iter().any(|row| row.phase == "sharp"));
    }
}
