//! Deterministic progress checkpoints for chunked sweep execution.
//!
//! A sweep is a list of `(algorithm, bytes)` scenarios, each a closed
//! deterministic world: its result depends only on the scenario and the
//! preset, never on which worker ran it or what ran before it
//! (DESIGN.md §11). That determinism makes partial progress *resumable*:
//! if a process records the per-scenario cells it has already produced,
//! a successor process can splice those cells in front of the remaining
//! scenarios and the final result is byte-identical to an uninterrupted
//! run.
//!
//! [`SweepCheckpoint`] is that record. It is deliberately *semantic* —
//! schema-versioned JSON keyed by the job's scenario digest — while the
//! durable layer above (`dpml-serve`) adds CRC32C framing for torn-write
//! detection. The two integrity layers catch different failures: the
//! frame CRC catches bytes that never landed; the checkpoint's
//! **splitmix64 cursor chain** catches frames that are valid JSON but
//! inconsistent with the execution history (a cell edited, dropped, or
//! reordered, or a checkpoint from a different chunking). The cursor
//! starts at a digest-derived seed and absorbs the canonical encoding of
//! every completed chunk; [`SweepCheckpoint::verify`] replays the chain
//! from the stored cells and rejects any checkpoint whose cursor does
//! not reproduce.

use crate::run::{AllreduceReport, RunError};
use dpml_fabric::Preset;
use dpml_faults::splitmix64;
use dpml_topology::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Version stamp for the checkpoint wire format. Bump on any field
/// change; loaders reject other schemas (falling back to cold start).
pub const CHECKPOINT_SCHEMA: u32 = 1;

/// FNV-1a 64-bit over raw bytes — the same mixing primitive the serve
/// job digest uses, kept private there; checkpoints need their own copy
/// so `dpml-core` stays independent of the daemon crate.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The completed outcome of one scenario, as captured at a chunk
/// boundary. This is the unit of resumable progress: enough to rebuild
/// the serve-level scenario result (and its accounting) without
/// re-simulating, plus a structured flag for budget trips so the policy
/// layer can re-map them onto deadline semantics without string
/// matching.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioCell {
    /// Algorithm name (`Algorithm::name`).
    pub algorithm: String,
    /// Message size in bytes.
    pub bytes: u64,
    /// Completion latency in microseconds; `0.0` for failed scenarios.
    pub latency_us: f64,
    /// Error rendering for failed scenarios.
    pub error: Option<String>,
    /// Engine events simulated by this scenario (0 on failure).
    pub sim_events: u64,
    /// True when the failure was an engine event/time budget trip —
    /// the deadline's proxy inside the engine.
    pub budget_tripped: bool,
}

impl ScenarioCell {
    /// Build a cell from one batch-runner result.
    pub fn from_result(
        algorithm: String,
        bytes: u64,
        result: &Result<AllreduceReport, RunError>,
    ) -> Self {
        match result {
            Ok(rep) => ScenarioCell {
                algorithm,
                bytes,
                latency_us: rep.latency_us,
                error: None,
                sim_events: rep.report.stats.events,
                budget_tripped: false,
            },
            Err(e) => {
                let budget_tripped = matches!(
                    e,
                    RunError::Sim(
                        dpml_engine::sim::SimError::EventBudgetExceeded(_)
                            | dpml_engine::sim::SimError::TimeBudgetExceeded(_)
                    )
                );
                ScenarioCell {
                    algorithm,
                    bytes,
                    latency_us: 0.0,
                    error: Some(e.to_string()),
                    sim_events: 0,
                    budget_tripped,
                }
            }
        }
    }

    /// Canonical byte encoding absorbed by the cursor chain. Floats are
    /// encoded as raw bit patterns so the chain is exact, not
    /// approximately-equal.
    fn canonical(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.algorithm.as_bytes());
        out.push(b'|');
        out.extend_from_slice(&self.bytes.to_le_bytes());
        out.extend_from_slice(&self.latency_us.to_bits().to_le_bytes());
        out.extend_from_slice(&self.sim_events.to_le_bytes());
        out.push(self.budget_tripped as u8);
        match &self.error {
            Some(e) => {
                out.push(1);
                out.extend_from_slice(e.as_bytes());
            }
            None => out.push(0),
        }
        out.push(b';');
    }
}

/// Seed of the cursor chain for a sweep with the given scenario digest.
pub fn initial_cursor(digest: &str) -> u64 {
    splitmix64(fnv1a64(digest.as_bytes()))
}

/// Durable progress of one chunked sweep: which prefix of the scenario
/// list is done, the cells it produced, and the cursor chaining them to
/// the job digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCheckpoint {
    /// Wire-format version ([`CHECKPOINT_SCHEMA`]).
    pub schema: u32,
    /// Scenario digest of the owning job spec — a checkpoint never
    /// resumes a job it was not cut from.
    pub digest: String,
    /// Total scenarios in the sweep.
    pub scenario_count: u32,
    /// Chunk size the sweep is being executed with. Resume requires the
    /// same chunking so the cursor chain groups identically.
    pub chunk: u32,
    /// Scenarios completed so far (`cells.len()`); execution resumes at
    /// this index.
    pub next_index: u32,
    /// splitmix64 chain over the canonical encoding of every completed
    /// chunk, seeded from the digest.
    pub cursor: u64,
    /// Failed-cell count among `cells` (excluding budget trips, which
    /// the policy layer converts into whole-job outcomes).
    pub failed: u32,
    /// Completed per-scenario outcomes, in scenario order.
    pub cells: Vec<ScenarioCell>,
}

impl SweepCheckpoint {
    /// Fresh checkpoint at the start of a sweep.
    pub fn new(digest: String, scenario_count: u32, chunk: u32) -> Self {
        let cursor = initial_cursor(&digest);
        SweepCheckpoint {
            schema: CHECKPOINT_SCHEMA,
            digest,
            scenario_count,
            chunk: chunk.max(1),
            next_index: 0,
            cursor,
            failed: 0,
            cells: Vec::new(),
        }
    }

    /// True once every scenario has a cell.
    pub fn complete(&self) -> bool {
        self.next_index >= self.scenario_count
    }

    /// Absorb one completed chunk of cells: append them, advance the
    /// index, and fold their canonical encoding into the cursor.
    pub fn advance(&mut self, chunk_cells: Vec<ScenarioCell>) {
        let mut canon = Vec::with_capacity(chunk_cells.len() * 48);
        for cell in &chunk_cells {
            if cell.error.is_some() {
                self.failed += 1;
            }
            cell.canonical(&mut canon);
        }
        self.cursor = splitmix64(self.cursor ^ fnv1a64(&canon));
        self.next_index += chunk_cells.len() as u32;
        self.cells.extend(chunk_cells);
    }

    /// Validate this checkpoint against the job it claims to resume and
    /// against its own execution history.
    ///
    /// Checks, in order: schema version, digest / scenario-count /
    /// chunking identity, internal cell accounting, and finally a full
    /// replay of the cursor chain over the stored cells. A checkpoint
    /// that passes is safe to resume from: splicing its cells in front
    /// of the remaining scenarios reproduces the uninterrupted result.
    pub fn verify(&self, digest: &str, scenario_count: u32, chunk: u32) -> Result<(), String> {
        if self.schema != CHECKPOINT_SCHEMA {
            return Err(format!(
                "schema {} != supported {CHECKPOINT_SCHEMA}",
                self.schema
            ));
        }
        if self.digest != digest {
            return Err(format!("digest {} != job digest {digest}", self.digest));
        }
        if self.scenario_count != scenario_count {
            return Err(format!(
                "scenario count {} != job's {scenario_count}",
                self.scenario_count
            ));
        }
        if self.chunk != chunk.max(1) {
            return Err(format!("chunk {} != executor chunk {chunk}", self.chunk));
        }
        if self.cells.len() != self.next_index as usize {
            return Err(format!(
                "{} cells but next_index {}",
                self.cells.len(),
                self.next_index
            ));
        }
        if self.next_index > self.scenario_count {
            return Err(format!(
                "next_index {} beyond scenario count {}",
                self.next_index, self.scenario_count
            ));
        }
        let failed = self.cells.iter().filter(|c| c.error.is_some()).count() as u32;
        if failed != self.failed {
            return Err(format!("failed {} but {} error cells", self.failed, failed));
        }
        let mut cursor = initial_cursor(&self.digest);
        for chunk_cells in self.cells.chunks(self.chunk as usize) {
            let mut canon = Vec::with_capacity(chunk_cells.len() * 48);
            for cell in chunk_cells {
                cell.canonical(&mut canon);
            }
            cursor = splitmix64(cursor ^ fnv1a64(&canon));
        }
        if cursor != self.cursor {
            return Err(format!(
                "cursor chain replay {cursor:#018x} != stored {:#018x}",
                self.cursor
            ));
        }
        Ok(())
    }
}

/// Per-chunk decision from the policy layer: keep going (with engine
/// budgets for this chunk) or stop here. Stopping loses nothing — the
/// checkpoint already holds every completed cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChunkControl {
    /// Run the next chunk under the given engine budgets and
    /// intra-scenario parallelism mode.
    Proceed {
        event_budget: Option<u64>,
        time_budget_s: Option<f64>,
        parallelism: dpml_engine::Parallelism,
    },
    /// Stop before the next chunk (cancellation, deadline, shutdown).
    Stop,
}

/// How a checkpointed sweep ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepEnd {
    /// Every scenario has a cell; `ckpt.complete()` is true.
    Completed,
    /// The controller said [`ChunkControl::Stop`]; `ckpt` holds all
    /// progress made so far.
    Stopped,
}

/// Execute a sweep chunk-by-chunk, resuming from (and advancing) `ckpt`.
///
/// `scenarios` must be the full scenario list of the job `ckpt` belongs
/// to — execution starts at `ckpt.next_index`, so a fresh checkpoint
/// runs everything and a restored one only the remainder. Before every
/// chunk `control` is consulted (cancellation / deadline / budget
/// policy); after every chunk `on_checkpoint` observes the advanced
/// checkpoint and may persist it. Within a chunk, scenarios run on the
/// scenario-parallel runner in input order, so the produced cells are
/// identical to a serial, uninterrupted execution.
pub fn run_allreduce_checkpointed(
    preset: &Preset,
    spec: &ClusterSpec,
    scenarios: &[(crate::algorithms::Algorithm, u64)],
    ckpt: &mut SweepCheckpoint,
    mut control: impl FnMut(&SweepCheckpoint) -> ChunkControl,
    mut on_checkpoint: impl FnMut(&SweepCheckpoint),
) -> SweepEnd {
    assert_eq!(
        scenarios.len(),
        ckpt.scenario_count as usize,
        "checkpoint scenario count must match the scenario list"
    );
    let chunk = ckpt.chunk.max(1) as usize;
    while (ckpt.next_index as usize) < scenarios.len() {
        let opts = match control(ckpt) {
            ChunkControl::Stop => return SweepEnd::Stopped,
            ChunkControl::Proceed {
                event_budget,
                time_budget_s,
                parallelism,
            } => crate::run::RunOpts {
                event_budget,
                time_budget_s,
                parallelism,
            },
        };
        let start = ckpt.next_index as usize;
        let end = (start + chunk).min(scenarios.len());
        let batch = &scenarios[start..end];
        let results = crate::run::run_allreduce_batch_with(preset, spec, batch, &opts);
        let cells = batch
            .iter()
            .zip(results.iter())
            .map(|(&(alg, bytes), res)| ScenarioCell::from_result(alg.name(), bytes, res))
            .collect();
        ckpt.advance(cells);
        on_checkpoint(ckpt);
    }
    SweepEnd::Completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Algorithm, FlatAlg};
    use dpml_fabric::presets::cluster_b;

    fn scenarios() -> Vec<(Algorithm, u64)> {
        let algs = [
            Algorithm::Ring,
            Algorithm::RecursiveDoubling,
            Algorithm::Dpml {
                leaders: 4,
                inner: FlatAlg::Ring,
            },
        ];
        let sizes = [1024u64, 65536];
        let mut out = Vec::new();
        for &alg in &algs {
            for &b in &sizes {
                out.push((alg, b));
            }
        }
        out
    }

    fn run_full(chunk: u32, stop_after: Option<u32>) -> (SweepCheckpoint, SweepEnd) {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        let scen = scenarios();
        let mut ckpt = SweepCheckpoint::new("digest-x".into(), scen.len() as u32, chunk);
        let end = run_allreduce_checkpointed(
            &p,
            &spec,
            &scen,
            &mut ckpt,
            |ck| match stop_after {
                Some(n) if ck.next_index >= n => ChunkControl::Stop,
                _ => ChunkControl::Proceed {
                    event_budget: None,
                    time_budget_s: Some(10.0),
                    parallelism: dpml_engine::Parallelism::Serial,
                },
            },
            |_| {},
        );
        (ckpt, end)
    }

    #[test]
    fn completes_and_verifies() {
        let (ckpt, end) = run_full(2, None);
        assert_eq!(end, SweepEnd::Completed);
        assert!(ckpt.complete());
        assert_eq!(ckpt.cells.len(), 6);
        assert_eq!(ckpt.failed, 0);
        ckpt.verify("digest-x", 6, 2).unwrap();
    }

    #[test]
    fn resume_from_any_boundary_is_bit_identical() {
        let (full, _) = run_full(2, None);
        for stop in [2u32, 4] {
            let (mut partial, end) = run_full(2, Some(stop));
            assert_eq!(end, SweepEnd::Stopped);
            assert_eq!(partial.next_index, stop);
            partial.verify("digest-x", 6, 2).unwrap();

            // Resume in a "new process": only the remainder runs.
            let p = cluster_b();
            let spec = p.spec(4, 4).unwrap();
            let scen = scenarios();
            let mut executed = 0u32;
            let end = run_allreduce_checkpointed(
                &p,
                &spec,
                &scen,
                &mut partial,
                |_| ChunkControl::Proceed {
                    event_budget: None,
                    time_budget_s: Some(10.0),
                    parallelism: dpml_engine::Parallelism::Intra(2),
                },
                |_| executed += 1,
            );
            assert_eq!(end, SweepEnd::Completed);
            assert_eq!(executed, (6 - stop).div_ceil(2));
            assert_eq!(partial.cursor, full.cursor, "cursor chain must converge");
            assert_eq!(partial.cells, full.cells, "cells must be bit-identical");
            let a = serde_json::to_string(&partial).unwrap();
            let b = serde_json::to_string(&full).unwrap();
            assert_eq!(a, b, "checkpoint JSON must be byte-identical");
        }
    }

    #[test]
    fn verify_rejects_tampering() {
        let (full, _) = run_full(2, None);
        full.verify("digest-x", 6, 2).unwrap();
        assert!(full.verify("digest-y", 6, 2).is_err(), "wrong digest");
        assert!(full.verify("digest-x", 7, 2).is_err(), "wrong count");
        assert!(full.verify("digest-x", 6, 3).is_err(), "wrong chunking");

        let mut edited = full.clone();
        edited.cells[1].latency_us += 1.0;
        assert!(edited.verify("digest-x", 6, 2).is_err(), "edited cell");

        let mut dropped = full.clone();
        dropped.cells.pop();
        assert!(dropped.verify("digest-x", 6, 2).is_err(), "dropped cell");

        let mut swapped = full.clone();
        swapped.cells.swap(0, 1);
        assert!(swapped.verify("digest-x", 6, 2).is_err(), "reordered cells");

        let mut schema = full.clone();
        schema.schema = CHECKPOINT_SCHEMA + 1;
        assert!(schema.verify("digest-x", 6, 2).is_err(), "future schema");

        let mut failed = full.clone();
        failed.failed += 1;
        assert!(failed.verify("digest-x", 6, 2).is_err(), "failed miscount");
    }

    #[test]
    fn budget_trip_is_structured() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        let scen = vec![(Algorithm::Ring, 65536u64)];
        let mut ckpt = SweepCheckpoint::new("d".into(), 1, 8);
        let end = run_allreduce_checkpointed(
            &p,
            &spec,
            &scen,
            &mut ckpt,
            |_| ChunkControl::Proceed {
                event_budget: Some(3),
                time_budget_s: None,
                parallelism: dpml_engine::Parallelism::Serial,
            },
            |_| {},
        );
        assert_eq!(end, SweepEnd::Completed);
        assert!(ckpt.cells[0].budget_tripped);
        assert!(ckpt.cells[0].error.is_some());
        assert_eq!(ckpt.failed, 1);
        ckpt.verify("d", 1, 8).unwrap();
    }
}
