//! Per-message-size algorithm selection, emulating the dispatch logic of
//! the paper's comparison libraries (Section 6.4).
//!
//! Real MPI libraries pick an allreduce algorithm from tuned tables keyed
//! on message size, processes per node, and interconnect. The paper
//! compares "the best configuration of the proposed algorithm against the
//! best algorithm chosen by the MPI library"; we mirror that by giving each
//! library a selection function and, for DPML, the empirically tuned leader
//! counts the paper reports (e.g. 4 leaders at 8KB on Clusters A/B but 16
//! on C/D; 16 leaders for Zone-C sizes everywhere).

use crate::algorithms::{Algorithm, FlatAlg};
use dpml_fabric::Preset;
use dpml_topology::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Observed health of the in-network aggregation fabric, as fed back by
/// the resilience layer (see [`crate::resilience`]): once SHArP groups
/// are being denied or operations keep timing out, a library stops
/// dispatching to SHArP until the fabric recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FabricHealth {
    /// In-network aggregation is available.
    #[default]
    Healthy,
    /// SHArP resources are denied or flapping; dispatch host-based
    /// schedules only.
    Degraded,
}

/// A library whose algorithm dispatch we emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Library {
    /// MVAPICH2-2.2-style dispatch: shared-memory single-leader design for
    /// small/medium messages, flat reduce-scatter + allgather for large.
    Mvapich2,
    /// Intel MPI 2017-style dispatch: similar structure, more aggressive
    /// switch to bandwidth-optimal algorithms for large messages.
    IntelMpi,
    /// The paper's proposal with the tuned per-cluster leader tables
    /// (DPML / DPML-Pipelined; SHArP for small messages where available).
    DpmlTuned,
}

impl Library {
    /// Human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Library::Mvapich2 => "MVAPICH2",
            Library::IntelMpi => "Intel MPI",
            Library::DpmlTuned => "DPML (proposed)",
        }
    }

    /// Choose the algorithm this library would run for `bytes` on the given
    /// cluster, assuming a healthy fabric.
    pub fn choose(&self, preset: &Preset, spec: &ClusterSpec, bytes: u64) -> Algorithm {
        self.choose_with(preset, spec, bytes, FabricHealth::Healthy)
    }

    /// [`Library::choose`] with explicit fabric health: a degraded fabric
    /// removes the SHArP designs from the candidate set, so the tuned
    /// dispatch lands on the same host-based schedules it uses on
    /// SHArP-less clusters.
    pub fn choose_with(
        &self,
        preset: &Preset,
        spec: &ClusterSpec,
        bytes: u64,
        health: FabricHealth,
    ) -> Algorithm {
        match self {
            Library::Mvapich2 => mvapich2(spec, bytes),
            Library::IntelMpi => intel_mpi(spec, bytes),
            Library::DpmlTuned => dpml_tuned(preset, spec, bytes, health),
        }
    }
}

fn clamp_leaders(l: u32, ppn: u32) -> u32 {
    l.min(ppn).max(1)
}

/// MVAPICH2-2.2 equivalent: the shared-memory-aware single-leader design
/// at every size (recursive doubling among leaders for latency-bound
/// sizes, reduce-scatter+allgather for bandwidth-bound ones). Keeping the
/// hierarchy for large messages is what leaves the node leader doing all
/// `ppn - 1` reduction passes — the bottleneck the paper's 3x+ speedups
/// come from.
fn mvapich2(spec: &ClusterSpec, bytes: u64) -> Algorithm {
    if spec.ppn == 1 {
        // No shared-memory hierarchy to exploit.
        return if bytes <= 16 * 1024 {
            Algorithm::RecursiveDoubling
        } else {
            Algorithm::Rabenseifner
        };
    }
    if bytes <= 16 * 1024 {
        Algorithm::SingleLeader {
            inner: FlatAlg::RecursiveDoubling,
        }
    } else {
        Algorithm::SingleLeader {
            inner: FlatAlg::Rabenseifner,
        }
    }
}

/// Intel MPI 2017 equivalent: single-leader for small/medium, but it
/// abandons the hierarchy for a flat reduce-scatter + allgather at large
/// sizes — which is why the paper sees Intel MPI well ahead of MVAPICH2 at
/// scale (Fig. 10) while DPML still beats both.
fn intel_mpi(spec: &ClusterSpec, bytes: u64) -> Algorithm {
    if spec.ppn == 1 {
        return if bytes <= 4 * 1024 {
            Algorithm::RecursiveDoubling
        } else {
            Algorithm::Rabenseifner
        };
    }
    if bytes <= 4 * 1024 {
        Algorithm::SingleLeader {
            inner: FlatAlg::RecursiveDoubling,
        }
    } else if bytes <= 64 * 1024 {
        Algorithm::SingleLeader {
            inner: FlatAlg::Rabenseifner,
        }
    } else {
        Algorithm::Rabenseifner
    }
}

/// The paper's tuned DPML dispatch (Section 6.4): empirical best leader
/// count per (cluster, message size), SHArP socket-leader for small
/// messages on SHArP-capable fabrics, DPML-Pipelined for Zone-C sizes on
/// Omni-Path.
fn dpml_tuned(preset: &Preset, spec: &ClusterSpec, bytes: u64, health: FabricHealth) -> Algorithm {
    let ppn = spec.ppn;
    let sharp_capable = preset.fabric.has_sharp() && health == FabricHealth::Healthy;
    let omni_path = preset.id == "C" || preset.id == "D";

    if bytes <= 512 {
        if sharp_capable {
            return if spec.sockets_per_node > 1 && ppn > 1 {
                Algorithm::SharpSocketLeader
            } else {
                Algorithm::SharpNodeLeader
            };
        }
        return if ppn == 1 {
            Algorithm::RecursiveDoubling
        } else {
            Algorithm::SingleLeader {
                inner: FlatAlg::RecursiveDoubling,
            }
        };
    }

    // Medium and large: DPML with the tuned leader count.
    let leaders = if bytes <= 8 * 1024 {
        // Paper: 4 leaders at 8KB on A/B, 16 on C/D.
        if omni_path {
            clamp_leaders(16, ppn)
        } else {
            clamp_leaders(4, ppn)
        }
    } else if bytes <= 64 * 1024 {
        clamp_leaders(8.max(if omni_path { 16 } else { 8 }), ppn)
    } else {
        // "16 leaders is almost always the best choice for Zone-C sizes."
        clamp_leaders(16, ppn)
    };

    if omni_path && bytes >= 1 << 20 {
        // Very large on Omni-Path: pipeline to stay in the high
        // message-rate zone (Section 4.2).
        let chunk_bytes = 64 * 1024;
        let per_leader = bytes / leaders as u64;
        let k = (per_leader / chunk_bytes).clamp(1, 16) as u32;
        Algorithm::DpmlPipelined { leaders, chunks: k }
    } else {
        Algorithm::Dpml {
            leaders,
            inner: FlatAlg::RecursiveDoubling,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpml_fabric::presets::{cluster_a, cluster_b, cluster_c, cluster_d};

    fn spec_of(p: &Preset, nodes: u32) -> ClusterSpec {
        p.default_spec(nodes).unwrap()
    }

    #[test]
    fn mvapich2_dispatch_shape() {
        let p = cluster_b();
        let s = spec_of(&p, 16);
        assert!(matches!(
            Library::Mvapich2.choose(&p, &s, 1024),
            Algorithm::SingleLeader { .. }
        ));
        assert!(matches!(
            Library::Mvapich2.choose(&p, &s, 1 << 20),
            Algorithm::SingleLeader {
                inner: FlatAlg::Rabenseifner
            }
        ));
    }

    #[test]
    fn intel_dispatch_shape() {
        let p = cluster_c();
        let s = spec_of(&p, 16);
        assert!(matches!(
            Library::IntelMpi.choose(&p, &s, 512),
            Algorithm::SingleLeader {
                inner: FlatAlg::RecursiveDoubling
            }
        ));
        assert!(matches!(
            Library::IntelMpi.choose(&p, &s, 64 * 1024),
            Algorithm::SingleLeader {
                inner: FlatAlg::Rabenseifner
            }
        ));
    }

    #[test]
    fn dpml_uses_sharp_only_on_cluster_a() {
        let a = cluster_a();
        let sa = spec_of(&a, 16);
        assert!(matches!(
            Library::DpmlTuned.choose(&a, &sa, 128),
            Algorithm::SharpSocketLeader
        ));
        let b = cluster_b();
        let sb = spec_of(&b, 16);
        assert!(!Library::DpmlTuned.choose(&b, &sb, 128).needs_sharp());
    }

    #[test]
    fn dpml_leader_table_matches_paper_8kb() {
        // 8KB: 4 leaders on A/B, 16 on C/D (Section 6.4).
        let cases = [
            (cluster_a(), 4u32),
            (cluster_b(), 4),
            (cluster_c(), 16),
            (cluster_d(), 16),
        ];
        for (p, expect) in cases {
            let s = spec_of(&p, 16);
            match Library::DpmlTuned.choose(&p, &s, 8 * 1024) {
                Algorithm::Dpml { leaders, .. } => {
                    assert_eq!(leaders, expect.min(s.ppn), "cluster {}", p.id)
                }
                other => panic!("cluster {}: {other:?}", p.id),
            }
        }
    }

    #[test]
    fn dpml_pipelines_very_large_on_omni_path() {
        let d = cluster_d();
        let s = spec_of(&d, 32);
        assert!(matches!(
            Library::DpmlTuned.choose(&d, &s, 4 << 20),
            Algorithm::DpmlPipelined { .. }
        ));
        let b = cluster_b();
        let sb = spec_of(&b, 32);
        assert!(matches!(
            Library::DpmlTuned.choose(&b, &sb, 4 << 20),
            Algorithm::Dpml { .. }
        ));
    }

    #[test]
    fn leaders_never_exceed_ppn() {
        for p in [cluster_a(), cluster_b(), cluster_c(), cluster_d()] {
            let s = p.spec(4, 2).unwrap();
            for bytes in [64u64, 8192, 1 << 20] {
                match Library::DpmlTuned.choose(&p, &s, bytes) {
                    Algorithm::Dpml { leaders, .. } | Algorithm::DpmlPipelined { leaders, .. } => {
                        assert!(leaders <= 2)
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn ppn1_avoids_shared_memory_designs() {
        let b = cluster_b();
        let s = b.spec(16, 1).unwrap();
        for lib in [Library::Mvapich2, Library::IntelMpi] {
            for bytes in [64u64, 8192, 1 << 20] {
                let alg = lib.choose(&b, &s, bytes);
                assert!(
                    !matches!(alg, Algorithm::SingleLeader { .. }),
                    "{} chose {alg:?} at ppn=1",
                    lib.name()
                );
            }
        }
    }

    #[test]
    fn degraded_fabric_disables_sharp_dispatch() {
        let a = cluster_a();
        let s = spec_of(&a, 16);
        assert!(Library::DpmlTuned.choose(&a, &s, 128).needs_sharp());
        let degraded = Library::DpmlTuned.choose_with(&a, &s, 128, FabricHealth::Degraded);
        assert!(!degraded.needs_sharp());
        // Same host-based dispatch as a SHArP-less cluster.
        let b = cluster_b();
        let sb = spec_of(&b, 16);
        assert_eq!(degraded, Library::DpmlTuned.choose(&b, &sb, 128));
        // Large messages never depended on SHArP; health must not change them.
        assert_eq!(
            Library::DpmlTuned.choose(&a, &s, 1 << 20),
            Library::DpmlTuned.choose_with(&a, &s, 1 << 20, FabricHealth::Degraded)
        );
    }

    #[test]
    fn names() {
        assert_eq!(Library::Mvapich2.name(), "MVAPICH2");
        assert_eq!(Library::DpmlTuned.name(), "DPML (proposed)");
    }
}
