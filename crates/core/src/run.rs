//! One-call convenience wrapper: compile, simulate, verify.

use crate::algorithms::Algorithm;
use dpml_engine::{Parallelism, RunReport, SimConfig, Simulator};
use dpml_fabric::Preset;
use dpml_sharp::SharpFabric;
use dpml_topology::{ClusterSpec, Placement, RankMap};
use serde::{Deserialize, Serialize};

/// Engine knobs shared by every run entry point: abort budgets plus the
/// intra-scenario parallelism mode (DESIGN.md §16). `Default` is
/// unbudgeted serial execution — exactly the engine's historical
/// behavior, so existing callers and golden digests are unaffected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunOpts {
    /// Abort with `EventBudgetExceeded` after this many events.
    pub event_budget: Option<u64>,
    /// Abort with `TimeBudgetExceeded` past this virtual time (seconds).
    pub time_budget_s: Option<f64>,
    /// Intra-scenario executor: serial pump or causal-frontier scheduler.
    /// Bit-identical output either way — this is purely a wall-clock knob.
    pub parallelism: Parallelism,
}

impl RunOpts {
    /// Unbudgeted run under the given parallelism mode.
    pub fn parallel(parallelism: Parallelism) -> Self {
        RunOpts {
            parallelism,
            ..RunOpts::default()
        }
    }
}

/// The outcome of one verified allreduce simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllreduceReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Message size in bytes.
    pub bytes: u64,
    /// Completion latency in microseconds.
    pub latency_us: f64,
    /// The full engine report.
    pub report: RunReport,
}

/// Error from [`run_allreduce`].
#[derive(Debug)]
pub enum RunError {
    /// The cluster/switch description itself was invalid.
    Topology(dpml_topology::TopologyError),
    /// Schedule compilation failed.
    Build(crate::algorithms::BuildError),
    /// Simulation failed (deadlock, missing oracle, ...).
    Sim(dpml_engine::sim::SimError),
    /// The simulated collective produced a wrong result.
    Verify(dpml_engine::VerifyError),
    /// A SHArP design was requested on a fabric without SHArP.
    NoSharpOnFabric,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Topology(e) => write!(f, "topology: {e}"),
            RunError::Build(e) => write!(f, "build: {e}"),
            RunError::Sim(e) => write!(f, "simulation: {e}"),
            RunError::Verify(e) => write!(f, "verification: {e}"),
            RunError::NoSharpOnFabric => write!(f, "SHArP design on a fabric without SHArP"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<dpml_topology::TopologyError> for RunError {
    fn from(e: dpml_topology::TopologyError) -> Self {
        RunError::Topology(e)
    }
}

impl From<crate::algorithms::BuildError> for RunError {
    fn from(e: crate::algorithms::BuildError) -> Self {
        RunError::Build(e)
    }
}

impl From<dpml_engine::sim::SimError> for RunError {
    fn from(e: dpml_engine::sim::SimError) -> Self {
        RunError::Sim(e)
    }
}

impl From<dpml_engine::VerifyError> for RunError {
    fn from(e: dpml_engine::VerifyError) -> Self {
        RunError::Verify(e)
    }
}

/// Compile `alg` for `bytes` on the given cluster, simulate it, verify the
/// result, and report the latency. Uses the paper's block rank placement.
pub fn run_allreduce(
    preset: &Preset,
    spec: &ClusterSpec,
    alg: Algorithm,
    bytes: u64,
) -> Result<AllreduceReport, RunError> {
    run_allreduce_placed(preset, spec, Placement::Block, alg, bytes)
}

/// Run a batch of independent `(algorithm, bytes)` scenarios across
/// worker threads. Each scenario is a closed world (own `SimConfig`, own
/// schedule), so results are byte-identical to running [`run_allreduce`]
/// serially — and they return in input order regardless of completion
/// order (DESIGN.md §11). This is the parallel entry point behind the
/// CLI `sweep` subcommand; the bench binaries use the more general
/// `dpml_bench::sweep` runner.
pub fn run_allreduce_batch(
    preset: &Preset,
    spec: &ClusterSpec,
    scenarios: Vec<(Algorithm, u64)>,
) -> Vec<Result<AllreduceReport, RunError>> {
    use rayon::prelude::*;
    scenarios
        .into_par_iter()
        .map(|(alg, bytes)| run_allreduce(preset, spec, alg, bytes))
        .collect()
}

/// [`run_allreduce_budgeted`] over a scenario chunk, executed on the
/// scenario-parallel runner (order-preserving). `dpml-serve` routes each
/// sweep chunk through this instead of simulating one scenario at a time
/// on the worker thread, keeping its cancel/deadline checkpoints at the
/// chunk boundaries.
pub fn run_allreduce_batch_budgeted(
    preset: &Preset,
    spec: &ClusterSpec,
    scenarios: &[(Algorithm, u64)],
    event_budget: Option<u64>,
    time_budget_s: Option<f64>,
) -> Vec<Result<AllreduceReport, RunError>> {
    run_allreduce_batch_with(
        preset,
        spec,
        scenarios,
        &RunOpts {
            event_budget,
            time_budget_s,
            parallelism: Parallelism::Serial,
        },
    )
}

/// [`run_allreduce_with`] over a scenario chunk on the scenario-parallel
/// runner (order-preserving). With `opts.parallelism` above `Serial`
/// every scenario additionally runs its own causal-frontier worker pool;
/// callers compose the two levels via `dpml_bench::runner::PoolPolicy`
/// so inter × intra stays within the machine.
pub fn run_allreduce_batch_with(
    preset: &Preset,
    spec: &ClusterSpec,
    scenarios: &[(Algorithm, u64)],
    opts: &RunOpts,
) -> Vec<Result<AllreduceReport, RunError>> {
    use rayon::prelude::*;
    scenarios
        .to_vec()
        .into_par_iter()
        .map(|(alg, bytes)| run_allreduce_with(preset, spec, alg, bytes, opts))
        .collect()
}

/// [`run_allreduce`] with optional engine budgets: the simulation aborts
/// with [`RunError::Sim`] (`EventBudgetExceeded` / `TimeBudgetExceeded`)
/// instead of running to completion once either budget is exhausted.
/// `dpml-serve` maps job deadlines onto these budgets so a runaway
/// scenario cannot pin a worker forever.
pub fn run_allreduce_budgeted(
    preset: &Preset,
    spec: &ClusterSpec,
    alg: Algorithm,
    bytes: u64,
    event_budget: Option<u64>,
    time_budget_s: Option<f64>,
) -> Result<AllreduceReport, RunError> {
    run_allreduce_with(
        preset,
        spec,
        alg,
        bytes,
        &RunOpts {
            event_budget,
            time_budget_s,
            parallelism: Parallelism::Serial,
        },
    )
}

/// [`run_allreduce`] under explicit [`RunOpts`]: abort budgets plus the
/// intra-scenario parallelism mode. All other entry points are wrappers
/// over this (block placement) or [`run_allreduce_placed`].
pub fn run_allreduce_with(
    preset: &Preset,
    spec: &ClusterSpec,
    alg: Algorithm,
    bytes: u64,
    opts: &RunOpts,
) -> Result<AllreduceReport, RunError> {
    run_opted(preset, spec, Placement::Block, alg, bytes, opts)
}

/// [`run_allreduce`] with an explicit rank placement (block vs cyclic) —
/// used by the placement ablation: flat algorithms degrade badly under
/// cyclic placement while DPML's node-aware structure does not.
pub fn run_allreduce_placed(
    preset: &Preset,
    spec: &ClusterSpec,
    placement: Placement,
    alg: Algorithm,
    bytes: u64,
) -> Result<AllreduceReport, RunError> {
    run_opted(preset, spec, placement, alg, bytes, &RunOpts::default())
}

fn run_opted(
    preset: &Preset,
    spec: &ClusterSpec,
    placement: Placement,
    alg: Algorithm,
    bytes: u64,
    opts: &RunOpts,
) -> Result<AllreduceReport, RunError> {
    let map = match placement {
        Placement::Block => RankMap::block(spec),
        Placement::Cyclic => RankMap::cyclic(spec),
    };
    let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch)?;
    let world = alg.build(&map, bytes)?;
    fn opted<'a>(mut sim: Simulator<'a>, opts: &RunOpts) -> Simulator<'a> {
        if let Some(events) = opts.event_budget {
            sim = sim.with_event_budget(events);
        }
        if let Some(s) = opts.time_budget_s {
            sim = sim.with_time_budget(s);
        }
        sim.with_parallelism(opts.parallelism)
    }
    let report = if alg.needs_sharp() {
        let params = preset.fabric.sharp.ok_or(RunError::NoSharpOnFabric)?;
        let oracle = SharpFabric::new(params, cfg.tree.clone(), map);
        opted(Simulator::new(&cfg).with_sharp(&oracle), opts).run(&world)?
    } else {
        opted(Simulator::new(&cfg), opts).run(&world)?
    };
    report.verify_allreduce()?;
    Ok(AllreduceReport {
        algorithm: alg.name(),
        bytes,
        latency_us: report.latency_us(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FlatAlg;
    use dpml_fabric::presets::{cluster_a, cluster_b};

    #[test]
    fn runs_and_verifies() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        let rep = run_allreduce(
            &p,
            &spec,
            Algorithm::Dpml {
                leaders: 4,
                inner: FlatAlg::RecursiveDoubling,
            },
            65536,
        )
        .unwrap();
        assert!(rep.latency_us > 0.0);
        assert_eq!(rep.algorithm, "dpml-l4");
    }

    #[test]
    fn sharp_on_non_sharp_fabric_is_an_error() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        let err = run_allreduce(&p, &spec, Algorithm::SharpNodeLeader, 256).unwrap_err();
        assert!(matches!(err, RunError::NoSharpOnFabric));
    }

    #[test]
    fn sharp_runs_on_cluster_a() {
        let p = cluster_a();
        let spec = p.spec(4, 4).unwrap();
        let rep = run_allreduce(&p, &spec, Algorithm::SharpSocketLeader, 256).unwrap();
        assert_eq!(rep.report.stats.sharp_ops, 1);
    }

    #[test]
    fn budgeted_run_matches_unbudgeted_and_trips_on_tiny_budgets() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        let alg = Algorithm::Dpml {
            leaders: 4,
            inner: FlatAlg::RecursiveDoubling,
        };
        let plain = run_allreduce(&p, &spec, alg, 65536).unwrap();
        let roomy =
            run_allreduce_budgeted(&p, &spec, alg, 65536, Some(10_000_000), Some(10.0)).unwrap();
        assert_eq!(plain.latency_us.to_bits(), roomy.latency_us.to_bits());

        let err = run_allreduce_budgeted(&p, &spec, alg, 65536, Some(3), None).unwrap_err();
        assert!(matches!(
            err,
            RunError::Sim(dpml_engine::sim::SimError::EventBudgetExceeded(_))
        ));
        let err = run_allreduce_budgeted(&p, &spec, alg, 65536, None, Some(1e-9)).unwrap_err();
        assert!(matches!(
            err,
            RunError::Sim(dpml_engine::sim::SimError::TimeBudgetExceeded(_))
        ));
    }

    #[test]
    fn intra_parallel_run_is_bit_identical() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        let alg = Algorithm::Dpml {
            leaders: 4,
            inner: FlatAlg::Ring,
        };
        let serial = run_allreduce(&p, &spec, alg, 65536).unwrap();
        let par = run_allreduce_with(
            &p,
            &spec,
            alg,
            65536,
            &RunOpts::parallel(Parallelism::Intra(4)),
        )
        .unwrap();
        assert_eq!(
            serde_json::to_string(&serial.report).unwrap(),
            serde_json::to_string(&par.report).unwrap()
        );
        assert_eq!(serial.latency_us.to_bits(), par.latency_us.to_bits());
    }

    #[test]
    fn build_error_propagates() {
        let p = cluster_b();
        let spec = p.spec(4, 4).unwrap();
        let err = run_allreduce(
            &p,
            &spec,
            Algorithm::Dpml {
                leaders: 9,
                inner: FlatAlg::Ring,
            },
            1024,
        )
        .unwrap_err();
        assert!(matches!(err, RunError::Build(_)));
    }
}
