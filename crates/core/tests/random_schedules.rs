//! Property-based schedule validation: arbitrary (cluster shape, leader
//! count, message size, algorithm) tuples must compile, simulate without
//! deadlock, and pass coverage verification. This is the broadest net for
//! schedule bugs (missing waits, wrong partitions, tag collisions).

use dpml_core::algorithms::{Algorithm, FlatAlg};
use dpml_core::run::run_allreduce;
use dpml_fabric::presets::{cluster_a, cluster_b, cluster_d};
use proptest::prelude::*;

/// Deterministic algorithm pick from small integers (keeps shrinking
/// simple and cases readable).
fn pick_algorithm(alg_pick: usize, flat_pick: usize, leaders: u32, chunks: u32) -> Algorithm {
    let inner = match flat_pick % 3 {
        0 => FlatAlg::RecursiveDoubling,
        1 => FlatAlg::Rabenseifner,
        _ => FlatAlg::Ring,
    };
    match alg_pick % 7 {
        0 => Algorithm::RecursiveDoubling,
        1 => Algorithm::Rabenseifner,
        2 => Algorithm::Ring,
        3 => Algorithm::BinomialReduceBcast,
        4 => Algorithm::SingleLeader { inner },
        5 => Algorithm::Dpml { leaders, inner },
        _ => Algorithm::DpmlPipelined { leaders, chunks },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_schedule_verifies_on_ib(
        nodes in 1u32..7,
        ppn in 1u32..7,
        bytes in 1u64..20_000,
        alg_pick in 0usize..7,
        flat_pick in 0usize..3,
        l_seed in 0u32..8,
        k in 1u32..6,
    ) {
        let preset = cluster_b();
        let spec = preset.spec(nodes, ppn).expect("spec");
        let alg = pick_algorithm(alg_pick, flat_pick, 1 + l_seed % ppn, k);
        let rep = run_allreduce(&preset, &spec, alg, bytes)
            .unwrap_or_else(|e| panic!("{nodes}x{ppn} {bytes}B {}: {e}", alg.name()));
        prop_assert!(rep.latency_us > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_shapes_all_algorithms_knl(
        nodes in 1u32..5,
        ppn in 1u32..9,
        bytes in 1u64..10_000,
        alg_pick in 0usize..7,
        l_seed in 0u32..8,
        k in 1u32..5,
    ) {
        let preset = cluster_d();
        let spec = preset.spec(nodes, ppn).expect("spec");
        let leaders = 1 + l_seed % ppn;
        let alg = match alg_pick {
            0 => Algorithm::RecursiveDoubling,
            1 => Algorithm::Rabenseifner,
            2 => Algorithm::Ring,
            3 => Algorithm::BinomialReduceBcast,
            4 => Algorithm::SingleLeader { inner: FlatAlg::Rabenseifner },
            5 => Algorithm::Dpml { leaders, inner: FlatAlg::RecursiveDoubling },
            _ => Algorithm::DpmlPipelined { leaders, chunks: k },
        };
        run_allreduce(&preset, &spec, alg, bytes)
            .unwrap_or_else(|e| panic!("{nodes}x{ppn} {bytes}B {}: {e}", alg.name()));
    }

    #[test]
    fn random_sharp_shapes(
        nodes in 1u32..6,
        ppn in 1u32..9,
        bytes in 1u64..4_000,
        socket_level in proptest::bool::ANY,
    ) {
        let preset = cluster_a();
        let spec = preset.spec(nodes, ppn).expect("spec");
        let alg = if socket_level {
            Algorithm::SharpSocketLeader
        } else {
            Algorithm::SharpNodeLeader
        };
        run_allreduce(&preset, &spec, alg, bytes)
            .unwrap_or_else(|e| panic!("{nodes}x{ppn} {bytes}B {}: {e}", alg.name()));
    }
}
