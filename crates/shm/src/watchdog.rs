//! Hang detection for the real-threads runtime.
//!
//! The spin barrier and mailboxes block forever by design — that is the
//! correct behaviour for a healthy run, and exactly the wrong one when a
//! peer thread dies or a schedule is mis-compiled: the test suite (or a
//! bench) then hangs instead of failing. This module gives every blocking
//! primitive a deadline variant that converts a would-be hang into a
//! structured [`ShmTimeout`], carrying enough context (who was awaited,
//! for how long) to diagnose the stall.
//!
//! A timed-out [`SpinBarrier`] is *poisoned*: the giving-up thread has
//! already decremented the arrival counter, so the barrier must not be
//! reused after an `Err` — tear the runtime down instead. That trade-off
//! is deliberate: the watchdog exists to turn a deadlock into an error
//! report, not to resume the collective.

use crate::barrier::SpinBarrier;
use crate::mailbox::Mailbox;
use std::time::{Duration, Instant};

/// Deadlines for the blocking shared-memory primitives.
///
/// Historically every call site hardcoded its own `Duration`; runtimes
/// that host many jobs (the `dpml-serve` daemon) need the timeouts to
/// come from configuration — a fabric preset carries default limits
/// (`dpml_fabric::WatchdogLimits`), and a per-job deadline can tighten
/// them further via [`WatchdogConfig::tightened`] so a job never waits
/// on a barrier longer than it has left to live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Deadline for a [`SpinBarrier`] arrival.
    pub barrier: Duration,
    /// Deadline for a [`Mailbox`] matched receive.
    pub recv: Duration,
}

/// Default barrier/receive deadline: generous enough that a healthy run
/// under heavy CI load never trips it, small enough that a wedged worker
/// is reported within a human attention span.
pub const DEFAULT_WATCHDOG_MS: u64 = 2_000;

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig::from_millis(DEFAULT_WATCHDOG_MS, DEFAULT_WATCHDOG_MS)
    }
}

impl WatchdogConfig {
    /// Config from millisecond limits (the representation fabric presets
    /// carry, kept integral so presets stay serializable and comparable).
    pub const fn from_millis(barrier_ms: u64, recv_ms: u64) -> Self {
        WatchdogConfig {
            barrier: Duration::from_millis(barrier_ms),
            recv: Duration::from_millis(recv_ms),
        }
    }

    /// Cap both deadlines at `remaining` — how a job-level deadline
    /// tightens the preset's limits without ever loosening them.
    #[must_use]
    pub fn tightened(&self, remaining: Duration) -> Self {
        WatchdogConfig {
            barrier: self.barrier.min(remaining),
            recv: self.recv.min(remaining),
        }
    }
}

/// A blocking shared-memory primitive exceeded its deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmTimeout {
    /// Not all threads reached the barrier in time. The barrier is
    /// poisoned; the runtime owning it must be torn down.
    Barrier {
        /// How long the thread spun before giving up.
        waited: Duration,
    },
    /// No message matching `(from, tag)` arrived in time.
    Recv {
        /// Awaited sender's global rank.
        from: usize,
        /// Awaited match tag.
        tag: u64,
        /// How long the receiver waited.
        waited: Duration,
    },
}

impl std::fmt::Display for ShmTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShmTimeout::Barrier { waited } => {
                write!(
                    f,
                    "barrier not reached by all threads within {waited:?} (poisoned)"
                )
            }
            ShmTimeout::Recv { from, tag, waited } => {
                write!(f, "no message from rank {from} tag {tag} within {waited:?}")
            }
        }
    }
}

impl std::error::Error for ShmTimeout {}

impl SpinBarrier {
    /// [`SpinBarrier::wait`] with a deadline: returns
    /// [`ShmTimeout::Barrier`] if the other threads do not arrive within
    /// `timeout`, instead of spinning forever.
    ///
    /// On `Err` the barrier is poisoned (this thread's arrival was
    /// recorded but never completed) and must not be waited on again.
    pub fn wait_timeout(
        &self,
        local_sense: &mut bool,
        timeout: Duration,
    ) -> Result<(), ShmTimeout> {
        let deadline = Instant::now() + timeout;
        self.wait_with(local_sense, |spins| {
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            // Checking the clock every iteration would put an `Instant::now`
            // syscall in the hot spin path; amortize it.
            if spins % 1024 == 0 && Instant::now() >= deadline {
                Err(ShmTimeout::Barrier { waited: timeout })
            } else {
                Ok(())
            }
        })
    }
}

impl Mailbox {
    /// [`Mailbox::recv_from`] with a deadline: returns
    /// [`ShmTimeout::Recv`] if no matching message arrives within
    /// `timeout`. Non-matching arrivals are still buffered, so a later
    /// receive (timed or not) observes them in order.
    pub fn recv_from_timeout(
        &mut self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f64>, ShmTimeout> {
        let deadline = Instant::now() + timeout;
        if let Some(m) = self.take_pending(from, tag) {
            return Ok(self.deliver(m));
        }
        loop {
            match self.recv_deadline(deadline) {
                Some(m) => {
                    if m.from == from && m.tag == tag {
                        return Ok(self.deliver(m));
                    }
                    self.buffer(m);
                }
                None => {
                    return Err(ShmTimeout::Recv {
                        from,
                        tag,
                        waited: timeout,
                    })
                }
            }
        }
    }
}

impl SpinBarrier {
    /// [`SpinBarrier::wait_timeout`] with the deadline taken from a
    /// [`WatchdogConfig`] instead of a per-call constant.
    pub fn wait_watchdog(
        &self,
        local_sense: &mut bool,
        cfg: &WatchdogConfig,
    ) -> Result<(), ShmTimeout> {
        self.wait_timeout(local_sense, cfg.barrier)
    }
}

impl Mailbox {
    /// [`Mailbox::recv_from_timeout`] with the deadline taken from a
    /// [`WatchdogConfig`].
    pub fn recv_from_watchdog(
        &mut self,
        from: usize,
        tag: u64,
        cfg: &WatchdogConfig,
    ) -> Result<Vec<f64>, ShmTimeout> {
        self.recv_from_timeout(from, tag, cfg.recv)
    }
}

/// Deadline-guarded exchange helper used by the cluster runtime's leader
/// phase: send to `peer` and await its reply, with a watchdog on the
/// receive so a dead peer yields an error instead of a hang.
pub fn exchange_with_deadline(
    net: &crate::mailbox::Network,
    mbox: &mut Mailbox,
    me: usize,
    peer: usize,
    tag: u64,
    data: Vec<f64>,
    timeout: Duration,
) -> Result<Vec<f64>, ShmTimeout> {
    net.send(me, peer, tag, data);
    mbox.recv_from_timeout(peer, tag, timeout)
}

/// [`exchange_with_deadline`] with the receive deadline taken from a
/// [`WatchdogConfig`].
pub fn exchange_with_config(
    net: &crate::mailbox::Network,
    mbox: &mut Mailbox,
    me: usize,
    peer: usize,
    tag: u64,
    data: Vec<f64>,
    cfg: &WatchdogConfig,
) -> Result<Vec<f64>, ShmTimeout> {
    exchange_with_deadline(net, mbox, me, peer, tag, data, cfg.recv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::Network;
    use std::sync::Arc;

    // These tests are deterministic, not timing-sensitive: the timeout
    // paths have *no* competing thread that could race the deadline (the
    // awaited event can never occur), and the success paths use deadlines
    // orders of magnitude above any plausible scheduling delay.

    #[test]
    fn config_defaults_and_tightening() {
        let cfg = WatchdogConfig::default();
        assert_eq!(cfg.barrier, Duration::from_millis(DEFAULT_WATCHDOG_MS));
        assert_eq!(cfg.recv, Duration::from_millis(DEFAULT_WATCHDOG_MS));
        let custom = WatchdogConfig::from_millis(500, 1500);
        // Tightening caps both deadlines at the remaining budget...
        let tight = custom.tightened(Duration::from_millis(200));
        assert_eq!(tight.barrier, Duration::from_millis(200));
        assert_eq!(tight.recv, Duration::from_millis(200));
        // ...but a generous remaining budget never loosens them.
        let loose = custom.tightened(Duration::from_secs(60));
        assert_eq!(loose, custom);
    }

    #[test]
    fn config_drives_barrier_and_recv_deadlines() {
        let cfg = WatchdogConfig::from_millis(50, 50);
        let b = SpinBarrier::new(2);
        let mut sense = false;
        let err = b.wait_watchdog(&mut sense, &cfg).unwrap_err();
        assert_eq!(
            err,
            ShmTimeout::Barrier {
                waited: cfg.barrier
            }
        );
        let (_net, mut boxes) = Network::new(2);
        let err = boxes[0].recv_from_watchdog(1, 9, &cfg).unwrap_err();
        assert_eq!(
            err,
            ShmTimeout::Recv {
                from: 1,
                tag: 9,
                waited: cfg.recv
            }
        );
    }

    #[test]
    fn lone_thread_barrier_times_out() {
        let b = SpinBarrier::new(2);
        let mut sense = false;
        let err = b
            .wait_timeout(&mut sense, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, ShmTimeout::Barrier { .. }));
        assert!(err.to_string().contains("poisoned"));
    }

    #[test]
    fn complete_barrier_passes_watchdog() {
        let b = Arc::new(SpinBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || {
            let mut sense = false;
            b2.wait_timeout(&mut sense, Duration::from_secs(30))
        });
        let mut sense = false;
        b.wait_timeout(&mut sense, Duration::from_secs(30)).unwrap();
        h.join().unwrap().unwrap();
    }

    #[test]
    fn missing_message_times_out_with_context() {
        let (_net, mut boxes) = Network::new(2);
        let err = boxes[0]
            .recv_from_timeout(1, 42, Duration::from_millis(50))
            .unwrap_err();
        assert_eq!(
            err,
            ShmTimeout::Recv {
                from: 1,
                tag: 42,
                waited: Duration::from_millis(50)
            }
        );
    }

    #[test]
    fn wrong_sender_is_buffered_not_consumed() {
        let (net, mut boxes) = Network::new(3);
        // Rank 2's message must not satisfy a wait on rank 1, but must
        // survive the timeout for a later receive.
        net.send(2, 0, 7, vec![2.0]);
        let err = boxes[0]
            .recv_from_timeout(1, 7, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(
            err,
            ShmTimeout::Recv {
                from: 1,
                tag: 7,
                ..
            }
        ));
        assert_eq!(boxes[0].buffered(), 1);
        assert_eq!(
            boxes[0]
                .recv_from_timeout(2, 7, Duration::from_secs(5))
                .unwrap(),
            vec![2.0]
        );
    }

    #[test]
    fn in_flight_message_beats_deadline() {
        let (net, mut boxes) = Network::new(2);
        let h = std::thread::spawn(move || net.send(1, 0, 0, vec![3.5]));
        let got = boxes[0]
            .recv_from_timeout(1, 0, Duration::from_secs(30))
            .unwrap();
        assert_eq!(got, vec![3.5]);
        h.join().unwrap();
    }

    #[test]
    fn exchange_detects_dead_peer() {
        let (net, mut boxes) = Network::new(2);
        // Peer 1 never answers: the exchange must surface a Recv timeout
        // naming it.
        let err = exchange_with_deadline(
            &net,
            &mut boxes[0],
            0,
            1,
            9,
            vec![1.0],
            Duration::from_millis(50),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ShmTimeout::Recv {
                from: 1,
                tag: 9,
                ..
            }
        ));
    }
}
