//! Intra-node multi-leader allreduce on real threads.
//!
//! Executes phases 1, 2, and 4 of the paper's Figure 2 (the intra-node
//! part of DPML) with genuine shared memory: each thread is a rank, slots
//! live in a [`SharedSlots`] bank, and phases are separated by a
//! [`SpinBarrier`]. With `leaders = 1` this is exactly the classic
//! single-leader design the paper improves upon.

use crate::barrier::{BarrierToken, SpinBarrier};
use crate::integrity::{crc32c, crc_fail_counter, retransmit_counter, PoisonPlan};
use crate::kernels::{fold_slots_op, reduce_into, ReduceOp, SumOp};
use crate::metrics::Counter;
use crate::region::SharedSlots;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

/// Cached handle to the global `shm.copy_bytes` counter.
fn copy_bytes_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| crate::metrics::global().counter("shm.copy_bytes"))
}

/// Cached handle to the global `shm.reduce_ops` counter.
fn reduce_ops_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| crate::metrics::global().counter("shm.reduce_ops"))
}

/// Intra-node algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraAlgo {
    /// One leader performs all `ppn - 1` reduction passes.
    SingleLeader,
    /// `leaders` leaders each own `1/leaders` of the vector (DPML).
    MultiLeader {
        /// Leader count (`l`), `1 ..= ppn`.
        leaders: usize,
    },
}

impl IntraAlgo {
    fn leader_count(&self) -> usize {
        match *self {
            IntraAlgo::SingleLeader => 1,
            IntraAlgo::MultiLeader { leaders } => leaders,
        }
    }
}

/// Split `n` elements into `parts` contiguous index ranges (earlier parts
/// take the remainder) — element-space mirror of the engine's
/// `ByteRange::partition`.
pub fn partition_elems(n: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut cursor = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((cursor, cursor + len));
        cursor += len;
    }
    out
}

/// Leader-local-rank for leader index `j` of `l` over `ppn` ranks —
/// the same even stride as `dpml_topology::LeaderPolicy::PerNode`.
pub fn leader_local(j: usize, l: usize, ppn: usize) -> usize {
    j * ppn / l
}

/// A single simulated node running `ppn` rank-threads.
#[derive(Debug, Clone, Copy)]
pub struct NodeRuntime {
    ppn: usize,
}

impl NodeRuntime {
    /// Runtime for `ppn` ranks.
    pub fn new(ppn: usize) -> Self {
        assert!(ppn >= 1);
        NodeRuntime { ppn }
    }

    /// Ranks per node.
    pub fn ppn(&self) -> usize {
        self.ppn
    }

    /// Allreduce (`MPI_SUM`) over `ppn` per-rank input vectors; returns
    /// each rank's result vector. Panics if `inputs.len() != ppn`, lengths
    /// differ, or the leader count is out of range.
    pub fn allreduce(&self, inputs: &[Vec<f64>], algo: IntraAlgo) -> Vec<Vec<f64>> {
        self.allreduce_op(SumOp, inputs, algo)
    }

    /// Allreduce under an arbitrary operator (`MPI_MAX`, `MPI_MIN`, ...).
    pub fn allreduce_op<O: ReduceOp<f64>>(
        &self,
        op: O,
        inputs: &[Vec<f64>],
        algo: IntraAlgo,
    ) -> Vec<Vec<f64>> {
        self.allreduce_op_checked(op, inputs, algo, None)
    }

    /// [`NodeRuntime::allreduce_op`] with optional buffer poisoning:
    /// when `poison` strikes a partition, its leader flips one bit of
    /// the published result *after* checksumming it. Every phase-4
    /// reader verifies the publish checksum (`shm.crc_fail` on a miss)
    /// and re-reduces a poisoned partition from the intact phase-1
    /// gather deposits (`shm.retransmit`), so the returned vectors are
    /// correct regardless of the poison rate.
    pub fn allreduce_op_checked<O: ReduceOp<f64>>(
        &self,
        op: O,
        inputs: &[Vec<f64>],
        algo: IntraAlgo,
        poison: Option<PoisonPlan>,
    ) -> Vec<Vec<f64>> {
        assert_eq!(inputs.len(), self.ppn, "one input per rank");
        let n = inputs[0].len();
        assert!(
            inputs.iter().all(|v| v.len() == n),
            "inputs must be same length"
        );
        let l = algo.leader_count();
        assert!(
            l >= 1 && l <= self.ppn,
            "leaders {l} out of range 1..={}",
            self.ppn
        );

        let parts = partition_elems(n, l);
        let max_len = parts.iter().map(|(s, e)| e - s).max().unwrap_or(0);
        let gather = SharedSlots::new(l * self.ppn, max_len);
        let publish = SharedSlots::new(l, max_len);
        let barrier = SpinBarrier::new(self.ppn);
        // Publish guard words: leader j checksums its partition before
        // the phase-4 barrier, readers verify after it.
        let guards: Vec<AtomicU32> = (0..l).map(|_| AtomicU32::new(0)).collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.ppn)
                .map(|t| {
                    let gather = &gather;
                    let publish = &publish;
                    let barrier = &barrier;
                    let parts = &parts;
                    let guards = &guards;
                    let input = &inputs[t];
                    scope.spawn(move || {
                        let mut tok = BarrierToken::new();
                        // Phase 1: deposit each partition into the owning
                        // leader's region, slot index = writer rank.
                        for (j, &(s, e)) in parts.iter().enumerate() {
                            // SAFETY: slot (j, t) is written only by
                            // thread t this epoch.
                            let slot = unsafe { gather.slot_mut(j * self.ppn + t) };
                            slot[..e - s].copy_from_slice(&input[s..e]);
                        }
                        copy_bytes_counter().add((n * size_of::<f64>()) as u64);
                        tok.wait(barrier);
                        // Phase 2: leaders fold their partition.
                        let mut folded_elems = 0usize;
                        for (j, &(s, e)) in parts.iter().enumerate() {
                            if leader_local(j, l, self.ppn) != t || e == s {
                                continue;
                            }
                            let plen = e - s;
                            // SAFETY: barrier separates phase-1 writers
                            // from these reads; publish slot j has this
                            // thread as unique writer.
                            unsafe {
                                let slots: Vec<&[f64]> = (0..self.ppn)
                                    .map(|i| &gather.slot(j * self.ppn + i)[..plen])
                                    .collect();
                                let dst = &mut publish.slot_mut(j)[..plen];
                                fold_slots_op(op, dst, &slots);
                                guards[j].store(crc32c(dst), Ordering::Release);
                                if let Some(plan) = poison {
                                    if plan.strikes(j as u64) {
                                        plan.flip_bit(dst, j as u64);
                                    }
                                }
                            }
                            folded_elems += plen * (self.ppn - 1);
                        }
                        if folded_elems > 0 {
                            reduce_ops_counter().add(folded_elems as u64);
                        }
                        tok.wait(barrier);
                        // Phase 4: copy all partitions out, verifying each
                        // against its publish guard word; a poisoned
                        // partition is re-reduced from the (intact)
                        // phase-1 gather deposits instead.
                        let mut out = vec![0.0; n];
                        for (j, &(s, e)) in parts.iter().enumerate() {
                            let plen = e - s;
                            if plen == 0 {
                                continue;
                            }
                            // SAFETY: publish and gather writers are
                            // barrier-separated; reads only from here on.
                            unsafe {
                                let slot = &publish.slot(j)[..plen];
                                if crc32c(slot) == guards[j].load(Ordering::Acquire) {
                                    out[s..e].copy_from_slice(slot);
                                } else {
                                    crc_fail_counter().inc();
                                    let slots: Vec<&[f64]> = (0..self.ppn)
                                        .map(|i| &gather.slot(j * self.ppn + i)[..plen])
                                        .collect();
                                    fold_slots_op(op, &mut out[s..e], &slots);
                                    retransmit_counter().inc();
                                }
                            }
                        }
                        copy_bytes_counter().add((n * size_of::<f64>()) as u64);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }

    /// Reference tree-free allreduce: serial sum broadcast to all ranks
    /// (for differential testing).
    pub fn serial(&self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut acc = vec![0.0; inputs[0].len()];
        for i in inputs {
            reduce_into(&mut acc, i);
        }
        vec![acc; self.ppn]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::assert_close;

    fn inputs(ppn: usize, n: usize) -> Vec<Vec<f64>> {
        (0..ppn)
            .map(|r| {
                (0..n)
                    .map(|i| ((r * 31 + i * 7) % 97) as f64 - 48.0)
                    .collect()
            })
            .collect()
    }

    fn check(ppn: usize, n: usize, algo: IntraAlgo) {
        let rt = NodeRuntime::new(ppn);
        let ins = inputs(ppn, n);
        let got = rt.allreduce(&ins, algo);
        let expect = rt.serial(&ins);
        assert_eq!(got.len(), ppn);
        for (g, e) in got.iter().zip(expect.iter()) {
            assert_close(g, e, 1e-12);
        }
    }

    #[test]
    fn partition_elems_distributes_remainder() {
        assert_eq!(partition_elems(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(partition_elems(2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
    }

    #[test]
    fn leader_stride_matches_topology_policy() {
        // ppn=28, l=4 → locals 0, 7, 14, 21 (same as LeaderPolicy).
        let locals: Vec<usize> = (0..4).map(|j| leader_local(j, 4, 28)).collect();
        assert_eq!(locals, vec![0, 7, 14, 21]);
    }

    #[test]
    fn allreduce_op_max_and_min() {
        use crate::kernels::{serial_reference_op, MaxOp, MinOp};
        let rt = NodeRuntime::new(4);
        let ins = inputs(4, 333);
        let got = rt.allreduce_op(MaxOp, &ins, IntraAlgo::MultiLeader { leaders: 2 });
        let expect = serial_reference_op(MaxOp, &ins);
        for g in &got {
            assert_eq!(g, &expect);
        }
        let got = rt.allreduce_op(MinOp, &ins, IntraAlgo::MultiLeader { leaders: 4 });
        let expect = serial_reference_op(MinOp, &ins);
        for g in &got {
            assert_eq!(g, &expect);
        }
    }

    #[test]
    fn single_leader_correct() {
        check(4, 1000, IntraAlgo::SingleLeader);
    }

    #[test]
    fn multi_leader_correct_all_counts() {
        for l in [1, 2, 3, 4, 7, 8] {
            check(8, 10_000, IntraAlgo::MultiLeader { leaders: l });
        }
    }

    #[test]
    fn vector_shorter_than_leader_count() {
        check(8, 3, IntraAlgo::MultiLeader { leaders: 8 });
    }

    #[test]
    fn single_rank_node() {
        check(1, 64, IntraAlgo::SingleLeader);
    }

    #[test]
    fn empty_vector() {
        let rt = NodeRuntime::new(4);
        let ins = vec![vec![]; 4];
        let got = rt.allreduce(&ins, IntraAlgo::MultiLeader { leaders: 2 });
        assert!(got.iter().all(|v| v.is_empty()));
    }

    #[test]
    fn allreduce_records_live_metrics() {
        let reg = crate::metrics::global();
        let before = reg.snapshot();
        let rt = NodeRuntime::new(4);
        let ins = inputs(4, 500);
        rt.allreduce(&ins, IntraAlgo::MultiLeader { leaders: 2 });
        let after = reg.snapshot();
        // Each of 4 ranks copies 500 f64 in (phase 1) and out (phase 4).
        let copied = after.counter("shm.copy_bytes").unwrap_or(0)
            - before.counter("shm.copy_bytes").unwrap_or(0);
        assert!(copied >= (2 * 4 * 500 * 8) as u64, "copied {copied}");
        // Leaders fold ppn-1 = 3 passes over the whole vector.
        let folded = after.counter("shm.reduce_ops").unwrap_or(0)
            - before.counter("shm.reduce_ops").unwrap_or(0);
        assert!(folded >= (500 * 3) as u64, "folded {folded}");
        // Barrier arrivals were timed.
        let waits = after.histogram("barrier.wait_ns").expect("histogram");
        assert!(waits.count > 0);
    }

    #[test]
    fn checked_without_poison_matches_plain() {
        let rt = NodeRuntime::new(4);
        let ins = inputs(4, 777);
        let plain = rt.allreduce(&ins, IntraAlgo::MultiLeader { leaders: 2 });
        let checked =
            rt.allreduce_op_checked(SumOp, &ins, IntraAlgo::MultiLeader { leaders: 2 }, None);
        assert_eq!(plain, checked, "guards must not perturb the arithmetic");
    }

    #[test]
    fn poisoned_publish_detected_and_redone() {
        let reg = crate::metrics::global();
        let before = reg.snapshot();
        let rt = NodeRuntime::new(4);
        let ins = inputs(4, 1000);
        let clean = rt.allreduce(&ins, IntraAlgo::MultiLeader { leaders: 2 });
        let got = rt.allreduce_op_checked(
            SumOp,
            &ins,
            IntraAlgo::MultiLeader { leaders: 2 },
            Some(PoisonPlan { seed: 5, rate: 1.0 }),
        );
        // The redo folds the gather slots in the same order the leader
        // did, so recovery is bit-identical, not merely close.
        assert_eq!(got, clean, "poisoned partitions must be re-reduced exactly");
        let after = reg.snapshot();
        let fails = after.counter("shm.crc_fail").unwrap_or(0)
            - before.counter("shm.crc_fail").unwrap_or(0);
        let rtx = after.counter("shm.retransmit").unwrap_or(0)
            - before.counter("shm.retransmit").unwrap_or(0);
        // Rate 1.0 poisons both partitions; all 4 readers detect both.
        assert!(fails >= 8, "expected >=8 detections, got {fails}");
        assert!(rtx >= 8, "expected >=8 redos, got {rtx}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_leaders_panics() {
        let rt = NodeRuntime::new(2);
        rt.allreduce(&inputs(2, 8), IntraAlgo::MultiLeader { leaders: 3 });
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_inputs_panic() {
        let rt = NodeRuntime::new(2);
        rt.allreduce(&[vec![1.0], vec![1.0, 2.0]], IntraAlgo::SingleLeader);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_matches_serial(
            ppn in 1usize..9,
            n in 0usize..300,
            l_seed in 0usize..8,
            seed in 0u64..1000,
        ) {
            let l = 1 + l_seed % ppn;
            let ins: Vec<Vec<f64>> = (0..ppn)
                .map(|r| {
                    (0..n)
                        .map(|i| {
                            let x = seed
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add((r * n + i) as u64);
                            ((x >> 33) % 1000) as f64 / 10.0 - 50.0
                        })
                        .collect()
                })
                .collect();
            let rt = NodeRuntime::new(ppn);
            let got = rt.allreduce(&ins, IntraAlgo::MultiLeader { leaders: l });
            let expect = rt.serial(&ins);
            for (g, e) in got.iter().zip(expect.iter()) {
                assert_close(g, e, 1e-9);
            }
        }
    }
}
