//! Live metrics for the real-threads runtime.
//!
//! The simulator side of this workspace reports virtual time; the thread
//! runtime here runs real data movement, and these are its observability
//! primitives: lock-free [`Counter`]s and log2-bucketed [`Histogram`]s
//! registered by name in a [`Registry`]. Hot paths touch a single relaxed
//! atomic per event; [`Registry::snapshot`] reads a consistent-enough view
//! at any time without stopping the threads.
//!
//! The runtime records, per process-wide [`global`] registry:
//!
//! * `barrier.wait_ns` — spin-barrier wait time per arrival (histogram),
//! * `shm.copy_bytes` — bytes moved through shared-memory slots (counter),
//! * `shm.reduce_ops` — element reduction operations performed (counter),
//! * `shm.crc_fail` — payloads/publishes that failed their CRC32C check
//!   (counter; see [`crate::integrity`]),
//! * `shm.retransmit` — clean-copy recoveries and partition re-reductions
//!   after a checksum failure (counter).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log2 buckets: values up to `2^63` land in the last bucket.
const BUCKETS: usize = 64;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A log2-bucketed histogram of `u64` samples (value `v` lands in bucket
/// `⌊log2 v⌋ + 1`; zero in bucket 0), plus exact count and sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Approximate quantile `q` in `0.0..=1.0`: the lower bound of the
    /// bucket holding the `q`-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_floor(i);
            }
        }
        bucket_floor(BUCKETS - 1)
    }

    /// Reset all buckets.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((bucket_floor(i), c))
            })
            .collect()
    }
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Registered name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean sample.
    pub mean: f64,
    /// Approximate median (bucket lower bound).
    pub p50: u64,
    /// Approximate 99th percentile (bucket lower bound).
    pub p99: u64,
}

/// A consistent-enough view of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Value of a counter by name, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Histogram summary by name, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// A named collection of live metrics.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut guard = self.counters.lock().expect("metrics registry poisoned");
        if let Some((_, c)) = guard.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        guard.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut guard = self.histograms.lock().expect("metrics registry poisoned");
        if let Some((_, h)) = guard.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        guard.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Snapshot every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSample> = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(n, c)| CounterSample {
                name: n.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSample> = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(n, h)| HistogramSample {
                name: n.clone(),
                count: h.count(),
                sum: h.sum(),
                mean: h.mean(),
                p50: h.quantile(0.5),
                p99: h.quantile(0.99),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Reset every registered metric to zero (names stay registered).
    pub fn reset(&self) {
        for (_, c) in self.counters.lock().expect("poisoned").iter() {
            c.reset();
        }
        for (_, h) in self.histograms.lock().expect("poisoned").iter() {
            h.reset();
        }
    }
}

/// The process-wide registry the runtime records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("bytes");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(3);
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("bytes"), Some(24_000));
    }

    #[test]
    fn counter_is_shared_by_name() {
        let reg = Registry::new();
        reg.counter("x").add(5);
        reg.counter("x").add(7);
        assert_eq!(reg.snapshot().counter("x"), Some(12));
        assert_eq!(reg.snapshot().counter("y"), None);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(3), 4);
    }

    #[test]
    fn histogram_summary_statistics() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 115);
        assert!((h.mean() - 23.0).abs() < 1e-12);
        // Median sample is 4 → bucket floor 4.
        assert_eq!(h.quantile(0.5), 4);
        // p99 lands in 100's bucket (floor 64).
        assert_eq!(h.quantile(0.99), 64);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn reset_clears_values_but_keeps_names() {
        let reg = Registry::new();
        reg.counter("a").add(10);
        reg.histogram("b").record(42);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), Some(0));
        assert_eq!(snap.histogram("b").unwrap().count, 0);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("test.global.counter").add(1);
        assert!(global().snapshot().counter("test.global.counter").is_some());
    }
}
