//! Live metrics for the real-threads runtime.
//!
//! The simulator side of this workspace reports virtual time; the thread
//! runtime here runs real data movement, and these are its observability
//! primitives: lock-free [`Counter`]s and log2-bucketed [`Histogram`]s
//! registered by name in a [`Registry`]. Hot paths touch a single relaxed
//! atomic per event; [`Registry::snapshot`] reads a consistent-enough view
//! at any time without stopping the threads.
//!
//! The runtime records, per process-wide [`global`] registry:
//!
//! * `barrier.wait_ns` — spin-barrier wait time per arrival (histogram),
//! * `shm.copy_bytes` — bytes moved through shared-memory slots (counter),
//! * `shm.reduce_ops` — element reduction operations performed (counter),
//! * `shm.crc_fail` — payloads/publishes that failed their CRC32C check
//!   (counter; see [`crate::integrity`]),
//! * `shm.retransmit` — clean-copy recoveries and partition re-reductions
//!   after a checksum failure (counter).
//!
//! On top of the live registry sits a **time-series layer** for
//! continuous telemetry (`dpml-serve`'s `watch` verb and `dpml top`): a
//! fixed-capacity [`TimeSeriesRing`] of timestamped [`MetricsSnapshot`]s
//! plus [`rates_between`], which derives per-second counter rates and
//! windowed histogram quantiles from the *deltas* between two snapshots —
//! so a dashboard shows "what happened in the last sample interval", not
//! since process start.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log2 buckets: values up to `2^63` land in the last bucket.
const BUCKETS: usize = 64;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Set to an absolute value — for counters that publish a measured
    /// level (journal bytes on disk) rather than accumulate deltas.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A log2-bucketed histogram of `u64` samples (value `v` lands in bucket
/// `⌊log2 v⌋ + 1`; zero in bucket 0), plus exact count and sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Width of a bucket: bucket `i >= 1` covers `[2^(i-1), 2^i)`.
fn bucket_width(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        bucket_floor(i)
    }
}

/// How [`Histogram::quantile_with`] reads a value out of the bucket
/// holding the `q`-th sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantileMode {
    /// Legacy behavior: report the bucket's inclusive lower bound. A
    /// log2 floor systematically *understates* — by up to 2× when the
    /// true sample sits near the bucket's upper edge. Kept under this
    /// flag so callers pinned to historical outputs (golden files,
    /// committed baselines) can stay bit-stable.
    BucketFloor,
    /// Linear interpolation within the bucket (Prometheus
    /// `histogram_quantile` convention): assuming samples are uniform in
    /// the bucket, the reported value is `floor + width * rank / count`.
    /// The result always lies within the true sample's bucket
    /// `[2^(i-1), 2^i]`, so the worst-case relative error is < 2× in
    /// either direction (vs. a guaranteed understatement before) and is
    /// exact when in-bucket samples are uniformly spread.
    Interpolated,
}

/// Quantile over raw bucket counts (shared by live histograms and the
/// time-series delta path). `total` must equal `counts.iter().sum()`.
fn quantile_from_counts(counts: &[u64], total: u64, q: f64, mode: QuantileMode) -> u64 {
    if total == 0 {
        return 0;
    }
    let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        seen += c;
        if seen >= target {
            return match mode {
                QuantileMode::BucketFloor => bucket_floor(i),
                QuantileMode::Interpolated => {
                    let rank = target - (seen - c); // 1-based rank within the bucket
                    let v =
                        bucket_floor(i) as f64 + bucket_width(i) as f64 * (rank as f64 / c as f64);
                    // Stay inside the bucket's closed upper edge.
                    (v as u64).min(bucket_floor(i) + bucket_width(i))
                }
            };
        }
    }
    bucket_floor(BUCKETS - 1)
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Approximate quantile `q` in `0.0..=1.0`, linearly interpolated
    /// within the log2 bucket holding the `q`-th sample (see
    /// [`QuantileMode::Interpolated`] for the error bound).
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_with(q, QuantileMode::Interpolated)
    }

    /// Legacy quantile: the lower bound of the bucket holding the `q`-th
    /// sample (can understate by up to 2×; see [`QuantileMode`]).
    pub fn quantile_floor(&self, q: f64) -> u64 {
        self.quantile_with(q, QuantileMode::BucketFloor)
    }

    /// Quantile under an explicit [`QuantileMode`].
    pub fn quantile_with(&self, q: f64, mode: QuantileMode) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        quantile_from_counts(&counts, total, q, mode)
    }

    /// Raw per-bucket counts (a relaxed-atomic snapshot).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Reset all buckets.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((bucket_floor(i), c))
            })
            .collect()
    }
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Registered name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean sample.
    pub mean: f64,
    /// Approximate median (interpolated; see [`QuantileMode`]).
    pub p50: u64,
    /// Approximate 99th percentile (interpolated; see [`QuantileMode`]).
    pub p99: u64,
    /// Non-empty raw buckets as `(bucket_index, count)` pairs, so the
    /// time-series layer can compute quantiles over *deltas* between two
    /// snapshots. Empty when deserializing older snapshots.
    #[serde(default)]
    pub buckets: Vec<(u32, u64)>,
}

/// A consistent-enough view of every registered metric.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Value of a counter by name, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Histogram summary by name, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// A named collection of live metrics.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut guard = self.counters.lock().expect("metrics registry poisoned");
        if let Some((_, c)) = guard.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        guard.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut guard = self.histograms.lock().expect("metrics registry poisoned");
        if let Some((_, h)) = guard.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        guard.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Snapshot every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSample> = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(n, c)| CounterSample {
                name: n.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSample> = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(n, h)| {
                let counts = h.bucket_counts();
                HistogramSample {
                    name: n.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    mean: h.mean(),
                    p50: h.quantile(0.5),
                    p99: h.quantile(0.99),
                    buckets: counts
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &c)| (c > 0).then_some((i as u32, c)))
                        .collect(),
                }
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Reset every registered metric to zero (names stay registered).
    pub fn reset(&self) {
        for (_, c) in self.counters.lock().expect("poisoned").iter() {
            c.reset();
        }
        for (_, h) in self.histograms.lock().expect("poisoned").iter() {
            h.reset();
        }
    }
}

/// The process-wide registry the runtime records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A [`MetricsSnapshot`] stamped with wall-clock time (unix epoch ms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedSnapshot {
    /// Sample time, milliseconds since the unix epoch.
    pub t_ms: u64,
    /// Registry contents at that time.
    pub snap: MetricsSnapshot,
}

/// Fixed-capacity ring of [`TimedSnapshot`]s: the continuous-telemetry
/// buffer a sampler pushes into and a dashboard reads windows out of.
/// Oldest entries are dropped once `capacity` is reached. All methods
/// take `&self`; the ring is internally locked.
#[derive(Debug)]
pub struct TimeSeriesRing {
    cap: usize,
    ring: Mutex<VecDeque<TimedSnapshot>>,
}

impl TimeSeriesRing {
    /// New ring holding at most `cap` snapshots (min 2, so a rate window
    /// always fits).
    pub fn new(cap: usize) -> Self {
        TimeSeriesRing {
            cap: cap.max(2),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Append a snapshot, dropping the oldest when full.
    pub fn push(&self, t_ms: u64, snap: MetricsSnapshot) {
        let mut g = self.ring.lock().expect("time-series ring poisoned");
        if g.len() == self.cap {
            g.pop_front();
        }
        g.push_back(TimedSnapshot { t_ms, snap });
    }

    /// Most recent snapshot, if any.
    pub fn latest(&self) -> Option<TimedSnapshot> {
        self.ring
            .lock()
            .expect("time-series ring poisoned")
            .back()
            .cloned()
    }

    /// The two most recent snapshots as `(older, newer)` — the natural
    /// input to [`rates_between`]. `None` until two samples exist.
    pub fn last_two(&self) -> Option<(TimedSnapshot, TimedSnapshot)> {
        let g = self.ring.lock().expect("time-series ring poisoned");
        if g.len() < 2 {
            return None;
        }
        Some((g[g.len() - 2].clone(), g[g.len() - 1].clone()))
    }

    /// Up to the `n` most recent snapshots, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TimedSnapshot> {
        let g = self.ring.lock().expect("time-series ring poisoned");
        let skip = g.len().saturating_sub(n);
        g.iter().skip(skip).cloned().collect()
    }

    /// Snapshots currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("time-series ring poisoned").len()
    }

    /// True when no snapshot has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum snapshots held.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// Per-second rate of one counter over a window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSample {
    /// Counter name.
    pub name: String,
    /// Increase over the window.
    pub delta: u64,
    /// Increase per second.
    pub per_sec: f64,
}

/// Windowed histogram summary: quantiles over only the samples recorded
/// *during* the window (bucket-count deltas), not since process start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedHistogram {
    /// Histogram name.
    pub name: String,
    /// Samples recorded during the window.
    pub count: u64,
    /// Interpolated median of the window's samples.
    pub p50: u64,
    /// Interpolated 99th percentile of the window's samples.
    pub p99: u64,
}

/// Derived rates and windowed quantiles between two snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateReport {
    /// Window length in milliseconds.
    pub dt_ms: u64,
    /// Per-counter rates, in the newer snapshot's name order.
    pub rates: Vec<RateSample>,
    /// Per-histogram windowed summaries, in the newer snapshot's order.
    pub windows: Vec<WindowedHistogram>,
}

impl RateReport {
    /// Per-second rate of a counter by name, if present.
    pub fn per_sec(&self, name: &str) -> Option<f64> {
        self.rates
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.per_sec)
    }

    /// Windowed histogram summary by name, if present.
    pub fn window(&self, name: &str) -> Option<&WindowedHistogram> {
        self.windows.iter().find(|w| w.name == name)
    }
}

/// Derive per-second counter rates and windowed histogram quantiles from
/// the deltas between two snapshots. Counters absent from `older` are
/// treated as starting at zero; decreases (a [`Registry::reset`] between
/// samples) saturate to zero rather than reporting negative rates. The
/// window length is floored at 1 ms so a zero/backwards clock cannot
/// divide by zero.
pub fn rates_between(older: &TimedSnapshot, newer: &TimedSnapshot) -> RateReport {
    let dt_ms = newer.t_ms.saturating_sub(older.t_ms).max(1);
    let secs = dt_ms as f64 / 1000.0;
    let rates = newer
        .snap
        .counters
        .iter()
        .map(|c| {
            let before = older.snap.counter(&c.name).unwrap_or(0);
            let delta = c.value.saturating_sub(before);
            RateSample {
                name: c.name.clone(),
                delta,
                per_sec: delta as f64 / secs,
            }
        })
        .collect();
    let windows = newer
        .snap
        .histograms
        .iter()
        .map(|h| {
            let mut counts = [0u64; BUCKETS];
            for &(i, c) in &h.buckets {
                if (i as usize) < BUCKETS {
                    counts[i as usize] = c;
                }
            }
            if let Some(prev) = older.snap.histogram(&h.name) {
                for &(i, c) in &prev.buckets {
                    if (i as usize) < BUCKETS {
                        counts[i as usize] = counts[i as usize].saturating_sub(c);
                    }
                }
            }
            let total: u64 = counts.iter().sum();
            WindowedHistogram {
                name: h.name.clone(),
                count: total,
                p50: quantile_from_counts(&counts, total, 0.5, QuantileMode::Interpolated),
                p99: quantile_from_counts(&counts, total, 0.99, QuantileMode::Interpolated),
            }
        })
        .collect();
    RateReport {
        dt_ms,
        rates,
        windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("bytes");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(3);
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("bytes"), Some(24_000));
    }

    #[test]
    fn counter_is_shared_by_name() {
        let reg = Registry::new();
        reg.counter("x").add(5);
        reg.counter("x").add(7);
        assert_eq!(reg.snapshot().counter("x"), Some(12));
        assert_eq!(reg.snapshot().counter("y"), None);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(3), 4);
    }

    #[test]
    fn histogram_summary_statistics() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 115);
        assert!((h.mean() - 23.0).abs() < 1e-12);
        // Legacy mode: bucket floors. Median sample 4 → floor 4; p99
        // lands in 100's bucket [64, 128) → floor 64.
        assert_eq!(h.quantile_floor(0.5), 4);
        assert_eq!(h.quantile_floor(0.99), 64);
        // Interpolated mode: a lone sample in its bucket interpolates to
        // the bucket's upper edge — still within [2^(i-1), 2^i], i.e.
        // within 2× of the true sample in either direction.
        assert_eq!(h.quantile(0.5), 8);
        assert_eq!(h.quantile(0.99), 128);
    }

    #[test]
    fn interpolated_quantile_tracks_in_bucket_rank() {
        // 25 samples each of 4,5,6,7 — all in bucket [4, 8).
        let h = Histogram::new();
        for v in [4u64, 5, 6, 7] {
            for _ in 0..25 {
                h.record(v);
            }
        }
        // target rank 50 of 100 in a 100-sample bucket: 4 + 4*(50/100).
        assert_eq!(h.quantile(0.5), 6);
        // target rank 99: 4 + 4*0.99 = 7.96 → 7.
        assert_eq!(h.quantile(0.99), 7);
        // Legacy floor collapses everything to the lower bound.
        assert_eq!(h.quantile_floor(0.99), 4);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantile_edge_cases_empty_and_clamped_q() {
        let h = Histogram::new();
        // Empty: every quantile in both modes is 0, including the ends.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 0);
            assert_eq!(h.quantile_floor(q), 0);
        }
        // Out-of-range q is clamped to [0, 1], never a panic or garbage.
        h.record(10);
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.5), h.quantile(1.0));
        assert_eq!(h.quantile_floor(-1.0), h.quantile_floor(0.0));
        assert_eq!(h.quantile_floor(2.0), h.quantile_floor(1.0));
    }

    #[test]
    fn quantile_single_bucket_stays_inside_it() {
        // All mass in one bucket [8, 16): the legacy floor pins every
        // quantile to 8; interpolation walks the bucket but never
        // leaves its closed range.
        let h = Histogram::new();
        for v in 8..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_floor(0.0), 8);
        assert_eq!(h.quantile_floor(0.5), 8);
        assert_eq!(h.quantile_floor(1.0), 8);
        assert!(h.quantile(0.0) >= 8);
        assert!(h.quantile(0.5) > 8, "mid-bucket rank must move the value");
        assert_eq!(h.quantile(1.0), 16, "closed upper edge of [8, 16)");
    }

    #[test]
    fn quantile_all_mass_in_top_bucket_saturates_safely() {
        // u64::MAX lands in bucket 63 ([2^62, 2^63]); `floor + width`
        // is exactly 2^63, so the interpolated edge must not overflow.
        let h = Histogram::new();
        for _ in 0..4 {
            h.record(u64::MAX);
        }
        assert_eq!(h.quantile_floor(0.5), 1u64 << 62);
        assert_eq!(h.quantile(1.0), 1u64 << 63);
        let mid = h.quantile(0.5);
        assert!((1u64 << 62..=1u64 << 63).contains(&mid));
    }

    #[test]
    fn interpolated_quantile_dominates_the_legacy_floor() {
        // Ordering invariant across modes: interpolation starts at the
        // bucket floor and only moves up, so for every q it must be >=
        // the legacy `quantile_floor` on the same data.
        let h = Histogram::new();
        let mut x = 0x5eedu64;
        for _ in 0..500 {
            x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) ^ 0x1234;
            h.record(x % 1_000_000);
        }
        for i in 0..=100u32 {
            let q = f64::from(i) / 100.0;
            assert!(
                h.quantile(q) >= h.quantile_floor(q),
                "q={q}: interpolated understates the legacy floor"
            );
        }
    }

    #[test]
    fn reset_clears_values_but_keeps_names() {
        let reg = Registry::new();
        reg.counter("a").add(10);
        reg.histogram("b").record(42);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), Some(0));
        assert_eq!(snap.histogram("b").unwrap().count, 0);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("test.global.counter").add(1);
        assert!(global().snapshot().counter("test.global.counter").is_some());
    }

    #[test]
    fn time_series_ring_wraps_dropping_oldest() {
        let ring = TimeSeriesRing::new(3);
        assert!(ring.is_empty());
        for t in 0..5u64 {
            ring.push(t, MetricsSnapshot::default());
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        let recent = ring.recent(10);
        let times: Vec<u64> = recent.iter().map(|s| s.t_ms).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(ring.latest().unwrap().t_ms, 4);
        let (older, newer) = ring.last_two().unwrap();
        assert_eq!((older.t_ms, newer.t_ms), (3, 4));
    }

    #[test]
    fn rates_between_derives_per_second_deltas() {
        let reg = Registry::new();
        let c = reg.counter("req");
        let h = reg.histogram("lat");
        c.add(10);
        h.record(1);
        h.record(1);
        let older = TimedSnapshot {
            t_ms: 1_000,
            snap: reg.snapshot(),
        };
        c.add(30);
        for _ in 0..4 {
            h.record(64);
        }
        let newer = TimedSnapshot {
            t_ms: 3_000,
            snap: reg.snapshot(),
        };
        let report = rates_between(&older, &newer);
        assert_eq!(report.dt_ms, 2_000);
        assert_eq!(report.per_sec("req"), Some(15.0));
        // The window sees only the four new samples of 64: quantiles come
        // from bucket deltas, not the cumulative histogram.
        let w = report.window("lat").unwrap();
        assert_eq!(w.count, 4);
        assert_eq!(w.p50, 96); // 64 + 64*(2/4)
        assert_eq!(w.p99, 128);
    }

    #[test]
    fn rates_between_saturates_after_reset() {
        let reg = Registry::new();
        reg.counter("req").add(10);
        let older = TimedSnapshot {
            t_ms: 0,
            snap: reg.snapshot(),
        };
        reg.reset();
        reg.counter("req").add(3);
        let newer = TimedSnapshot {
            t_ms: 1_000,
            snap: reg.snapshot(),
        };
        let report = rates_between(&older, &newer);
        // 3 < 10: a reset happened mid-window; report zero, not negative.
        assert_eq!(report.per_sec("req"), Some(0.0));
    }

    #[test]
    fn rates_between_treats_new_counters_as_zero_based() {
        let reg = Registry::new();
        let older = TimedSnapshot {
            t_ms: 0,
            snap: reg.snapshot(),
        };
        reg.counter("late").add(8);
        let newer = TimedSnapshot {
            t_ms: 4_000,
            snap: reg.snapshot(),
        };
        assert_eq!(rates_between(&older, &newer).per_sec("late"), Some(2.0));
    }

    #[test]
    fn snapshot_serde_roundtrip_preserves_buckets() {
        let reg = Registry::new();
        reg.counter("a").add(7);
        reg.histogram("b").record(100);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.histogram("b").unwrap().buckets, vec![(7, 1)]);
    }
}
