//! A sense-reversing spin barrier.
//!
//! Collective phases are microseconds long, so parking threads in the
//! kernel (as `std::sync::Barrier` may) costs more than the phase itself.
//! This is the classic centralized sense-reversing barrier from the
//! concurrency literature (cf. *Rust Atomics and Locks*, ch. 9): arrivals
//! decrement a counter; the last arrival resets it and flips the global
//! sense; everyone else spins on the sense word with `Acquire` loads.

use crate::metrics::Histogram;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Cached handle to the global `barrier.wait_ns` histogram so the hot path
/// pays one relaxed-atomic record, not a registry lookup.
fn wait_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| crate::metrics::global().histogram("barrier.wait_ns"))
}

/// A reusable spin barrier for a fixed set of threads.
#[derive(Debug)]
pub struct SpinBarrier {
    count: AtomicUsize,
    sense: AtomicBool,
    total: usize,
}

impl SpinBarrier {
    /// Barrier for `total` threads.
    pub fn new(total: usize) -> Self {
        assert!(total >= 1, "barrier needs at least one thread");
        SpinBarrier {
            count: AtomicUsize::new(total),
            sense: AtomicBool::new(false),
            total,
        }
    }

    /// Block until all `total` threads have called `wait`.
    ///
    /// Each thread must pass its own `local_sense` state, initialized to
    /// `false` and flipped by this call; see [`BarrierToken`] for a safe
    /// wrapper.
    pub fn wait(&self, local_sense: &mut bool) {
        let start = std::time::Instant::now();
        let ok: Result<(), std::convert::Infallible> = self.wait_with(local_sense, |spins| {
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            Ok(())
        });
        // invariant: the backoff closure above never returns Err.
        ok.unwrap();
        wait_hist().record(start.elapsed().as_nanos() as u64);
    }

    /// Core arrival/spin loop shared by [`SpinBarrier::wait`] and the
    /// watchdog's deadline variant: `backoff(spins)` runs once per spin
    /// iteration and may abort the wait by returning `Err` — after which
    /// the barrier is poisoned (this thread's arrival was already
    /// counted) and must not be reused.
    pub(crate) fn wait_with<E>(
        &self,
        local_sense: &mut bool,
        mut backoff: impl FnMut(u32) -> Result<(), E>,
    ) -> Result<(), E> {
        *local_sense = !*local_sense;
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arrival: reset and release everyone.
            self.count.store(self.total, Ordering::Relaxed);
            self.sense.store(*local_sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != *local_sense {
                spins += 1;
                backoff(spins)?;
            }
        }
        Ok(())
    }
}

/// Per-thread barrier participation state.
#[derive(Debug, Default)]
pub struct BarrierToken {
    sense: bool,
}

impl BarrierToken {
    /// Fresh token (one per thread, per barrier).
    pub fn new() -> Self {
        BarrierToken::default()
    }

    /// Wait on `barrier`.
    pub fn wait(&mut self, barrier: &SpinBarrier) {
        barrier.wait(&mut self.sense);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_thread_barrier_is_noop() {
        let b = SpinBarrier::new(1);
        let mut t = BarrierToken::new();
        t.wait(&b);
        t.wait(&b);
    }

    #[test]
    fn barrier_separates_phases() {
        // Each thread increments a phase counter; after each barrier every
        // thread must observe all increments of the previous phase.
        const THREADS: usize = 8;
        const PHASES: usize = 50;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let counters: Arc<Vec<AtomicU64>> =
            Arc::new((0..PHASES).map(|_| AtomicU64::new(0)).collect());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || {
                    let mut tok = BarrierToken::new();
                    for ph in 0..PHASES {
                        counters[ph].fetch_add(1, Ordering::Relaxed);
                        tok.wait(&barrier);
                        assert_eq!(
                            counters[ph].load(Ordering::Relaxed),
                            THREADS as u64,
                            "phase {ph} not complete after barrier"
                        );
                        tok.wait(&barrier);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threads_rejected() {
        let _ = SpinBarrier::new(0);
    }
}
