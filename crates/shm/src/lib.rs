//! Real-threads shared-memory runtime.
//!
//! Everything else in this workspace *models* time; this crate actually
//! runs the DPML data movement on OS threads with real vectors, so that:
//!
//! * every algorithm's arithmetic is validated bit-for-bit against a serial
//!   reference (the simulator validates schedules symbolically; this crate
//!   validates the kernels and the phase structure numerically), and
//! * the Criterion benches in `dpml-bench` can measure genuine wall-clock
//!   effects of the leader count on the machine running the tests
//!   (intra-node phases 1/2/4 of the paper's Figure 2).
//!
//! Threads within a [`intranode::NodeRuntime`] are "ranks on one node" and
//! communicate through [`region::SharedSlots`] (true shared memory guarded
//! by [`barrier::SpinBarrier`]); a [`cluster::ThreadCluster`] groups
//! threads into virtual nodes whose leaders exchange messages over
//! channels, executing the full four-phase DPML allreduce end to end.

pub mod barrier;
pub mod cluster;
pub mod integrity;
pub mod intranode;
pub mod kernels;
pub mod mailbox;
pub mod metrics;
pub mod region;
pub mod watchdog;

pub use barrier::SpinBarrier;
pub use cluster::ThreadCluster;
pub use integrity::{crc32c, crc32c_bytes, PoisonPlan};
pub use intranode::{IntraAlgo, NodeRuntime};
pub use metrics::{Counter, Histogram, MetricsSnapshot, Registry};
pub use region::SharedSlots;
pub use watchdog::{ShmTimeout, WatchdogConfig};
