//! Reduction kernels: the compute of DPML phase 2.
//!
//! The kernels are plain indexed loops over slices, written so LLVM
//! auto-vectorizes them (no bounds checks in the hot loop thanks to the
//! explicit `zip`). `reduce_into` is the `MPI_SUM`-style fold the paper
//! times; `fold_slots` is the `ppn - 1`-pass variant a leader runs over the
//! gathered shared-memory slots.

/// Element types reducible by these kernels.
pub trait Reducible: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Additive identity.
    const ZERO: Self;
    /// Element-wise combine (sum).
    fn combine(self, other: Self) -> Self;
}

/// A reduction operator over elements of type `T` — the `MPI_Op`
/// equivalent. [`reduce_into_op`] and friends are generic over this, so
/// `MPI_SUM`, `MPI_MAX`, `MPI_MIN`, and `MPI_PROD` share one kernel.
pub trait ReduceOp<T: Copy>: Copy + Send + Sync + 'static {
    /// The operator's identity element.
    fn identity(self) -> T;
    /// Combine two elements.
    fn apply(self, a: T, b: T) -> T;
}

/// Element-wise sum (`MPI_SUM`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SumOp;
/// Element-wise maximum (`MPI_MAX`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxOp;
/// Element-wise minimum (`MPI_MIN`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinOp;
/// Element-wise product (`MPI_PROD`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProdOp;

impl ReduceOp<f64> for SumOp {
    fn identity(self) -> f64 {
        0.0
    }
    fn apply(self, a: f64, b: f64) -> f64 {
        a + b
    }
}

impl ReduceOp<f64> for MaxOp {
    fn identity(self) -> f64 {
        f64::NEG_INFINITY
    }
    fn apply(self, a: f64, b: f64) -> f64 {
        a.max(b)
    }
}

impl ReduceOp<f64> for MinOp {
    fn identity(self) -> f64 {
        f64::INFINITY
    }
    fn apply(self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
}

impl ReduceOp<f64> for ProdOp {
    fn identity(self) -> f64 {
        1.0
    }
    fn apply(self, a: f64, b: f64) -> f64 {
        a * b
    }
}

impl ReduceOp<i64> for SumOp {
    fn identity(self) -> i64 {
        0
    }
    fn apply(self, a: i64, b: i64) -> i64 {
        a.wrapping_add(b)
    }
}

impl ReduceOp<i64> for MaxOp {
    fn identity(self) -> i64 {
        i64::MIN
    }
    fn apply(self, a: i64, b: i64) -> i64 {
        a.max(b)
    }
}

impl ReduceOp<i64> for MinOp {
    fn identity(self) -> i64 {
        i64::MAX
    }
    fn apply(self, a: i64, b: i64) -> i64 {
        a.min(b)
    }
}

/// `acc[i] = op(acc[i], src[i])` — one reduction pass under an arbitrary
/// operator.
#[inline]
pub fn reduce_into_op<T: Copy, O: ReduceOp<T>>(op: O, acc: &mut [T], src: &[T]) {
    assert_eq!(acc.len(), src.len(), "operand length mismatch");
    for (a, s) in acc.iter_mut().zip(src.iter()) {
        *a = op.apply(*a, *s);
    }
}

/// Fold `slots[1..]` into `out` (seeded from `slots[0]`) under `op`.
pub fn fold_slots_op<T: Copy, O: ReduceOp<T>>(op: O, out: &mut [T], slots: &[&[T]]) {
    assert!(!slots.is_empty(), "need at least one slot");
    assert_eq!(out.len(), slots[0].len(), "output length mismatch");
    out.copy_from_slice(slots[0]);
    for s in &slots[1..] {
        reduce_into_op(op, out, s);
    }
}

/// Serial reference under an arbitrary operator.
pub fn serial_reference_op<T: Copy + PartialEq, O: ReduceOp<T>>(
    op: O,
    inputs: &[Vec<T>],
) -> Vec<T> {
    assert!(!inputs.is_empty());
    let n = inputs[0].len();
    let mut out = vec![op.identity(); n];
    for inp in inputs {
        assert_eq!(inp.len(), n);
        reduce_into_op(op, &mut out, inp);
    }
    out
}

impl Reducible for f64 {
    const ZERO: Self = 0.0;
    #[inline(always)]
    fn combine(self, other: Self) -> Self {
        self + other
    }
}

impl Reducible for f32 {
    const ZERO: Self = 0.0;
    #[inline(always)]
    fn combine(self, other: Self) -> Self {
        self + other
    }
}

impl Reducible for i32 {
    const ZERO: Self = 0;
    #[inline(always)]
    fn combine(self, other: Self) -> Self {
        self.wrapping_add(other)
    }
}

impl Reducible for i64 {
    const ZERO: Self = 0;
    #[inline(always)]
    fn combine(self, other: Self) -> Self {
        self.wrapping_add(other)
    }
}

/// `acc[i] = acc[i] ⊕ src[i]` — one reduction pass.
///
/// # Panics
/// When the slices differ in length.
#[inline]
pub fn reduce_into<T: Reducible>(acc: &mut [T], src: &[T]) {
    assert_eq!(acc.len(), src.len(), "operand length mismatch");
    for (a, s) in acc.iter_mut().zip(src.iter()) {
        *a = a.combine(*s);
    }
}

/// Fold `slots[1..]` into a copy of `slots[0]`, writing the result to
/// `out` — the leader-side reduction over gathered slots
/// (`slots.len() - 1` combine passes, exactly the paper's `ppn - 1`).
///
/// # Panics
/// When `slots` is empty or any length differs from `out`.
pub fn fold_slots<T: Reducible>(out: &mut [T], slots: &[&[T]]) {
    assert!(!slots.is_empty(), "need at least one slot");
    assert_eq!(out.len(), slots[0].len(), "output length mismatch");
    out.copy_from_slice(slots[0]);
    for s in &slots[1..] {
        reduce_into(out, s);
    }
}

/// Serial reference allreduce: element-wise sum of all inputs.
pub fn serial_reference<T: Reducible>(inputs: &[Vec<T>]) -> Vec<T> {
    assert!(!inputs.is_empty());
    let n = inputs[0].len();
    let mut out = vec![T::ZERO; n];
    for inp in inputs {
        assert_eq!(inp.len(), n);
        reduce_into(&mut out, inp);
    }
    out
}

/// Exact equality check for integer results; tolerance-based for floats
/// (summation order may differ between algorithms).
pub fn assert_close(a: &[f64], b: &[f64], rel_tol: f64) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let scale = x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() <= rel_tol * scale,
            "mismatch at {i}: {x} vs {y} (tol {rel_tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_into_sums() {
        let mut acc = vec![1.0f64, 2.0, 3.0];
        reduce_into(&mut acc, &[10.0, 20.0, 30.0]);
        assert_eq!(acc, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn reduce_into_checks_lengths() {
        let mut acc = vec![0.0f64; 3];
        reduce_into(&mut acc, &[0.0; 4]);
    }

    #[test]
    fn fold_slots_counts_passes_correctly() {
        let s0 = vec![1i64; 8];
        let s1 = vec![2i64; 8];
        let s2 = vec![3i64; 8];
        let mut out = vec![0i64; 8];
        fold_slots(&mut out, &[&s0, &s1, &s2]);
        assert_eq!(out, vec![6i64; 8]);
    }

    #[test]
    fn integer_wrapping_is_deterministic() {
        let mut acc = vec![i32::MAX];
        reduce_into(&mut acc, &[1]);
        assert_eq!(acc, vec![i32::MIN]);
    }

    #[test]
    fn serial_reference_matches_hand_sum() {
        let inputs = vec![vec![1.0f64, 0.5], vec![2.0, 0.25], vec![4.0, 0.125]];
        assert_eq!(serial_reference(&inputs), vec![7.0, 0.875]);
    }

    #[test]
    fn assert_close_accepts_reordered_float_sums() {
        let a = [0.1 + 0.2, 1e18];
        let b = [0.2 + 0.1, 1e18 * (1.0 + 1e-14)];
        assert_close(&a, &b, 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch at 0")]
    fn assert_close_rejects_real_differences() {
        assert_close(&[1.0], &[1.1], 1e-9);
    }

    #[test]
    fn op_kernels_match_semantics() {
        let a = vec![1.0f64, -5.0, 3.0];
        let b = vec![2.0f64, -1.0, 3.0];
        let mut acc = a.clone();
        reduce_into_op(MaxOp, &mut acc, &b);
        assert_eq!(acc, vec![2.0, -1.0, 3.0]);
        let mut acc = a.clone();
        reduce_into_op(MinOp, &mut acc, &b);
        assert_eq!(acc, vec![1.0, -5.0, 3.0]);
        let mut acc = a.clone();
        reduce_into_op(ProdOp, &mut acc, &b);
        assert_eq!(acc, vec![2.0, 5.0, 9.0]);
    }

    #[test]
    fn fold_slots_op_max() {
        let s0 = vec![1.0f64, 9.0];
        let s1 = vec![5.0f64, 2.0];
        let mut out = vec![0.0f64; 2];
        fold_slots_op(MaxOp, &mut out, &[&s0, &s1]);
        assert_eq!(out, vec![5.0, 9.0]);
    }

    #[test]
    fn serial_reference_op_identities() {
        let inputs = vec![vec![3i64, -7], vec![5, -2]];
        assert_eq!(serial_reference_op(SumOp, &inputs), vec![8, -9]);
        assert_eq!(serial_reference_op(MaxOp, &inputs), vec![5, -2]);
        assert_eq!(serial_reference_op(MinOp, &inputs), vec![3, -7]);
    }

    #[test]
    fn f32_kernel() {
        let mut acc = vec![1.5f32; 100];
        reduce_into(&mut acc, &vec![2.5f32; 100]);
        assert!(acc.iter().all(|&v| v == 4.0));
    }
}
