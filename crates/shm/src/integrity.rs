//! Data-integrity primitives for the real-threads runtime: a software
//! CRC32C and a seeded bit-flip injector.
//!
//! The simulator models corruption symbolically; this crate carries real
//! bytes, so detection has to be real too. Every mailbox frame and every
//! published shared-memory partition is covered by a CRC32C (Castagnoli
//! polynomial, the checksum iWARP/SCTP/NVMe use), and fault-injection
//! tests flip actual payload bits to prove the guards catch them —
//! mirroring the engine-side `DataFaults` wire model numerically.

use crate::metrics::Counter;
use std::sync::{Arc, OnceLock};

/// Cached handle to the global `shm.crc_fail` counter (checksum
/// detections in the mailbox and publish paths).
pub(crate) fn crc_fail_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| crate::metrics::global().counter("shm.crc_fail"))
}

/// Cached handle to the global `shm.retransmit` counter (clean-copy
/// recoveries and partition re-reductions).
pub(crate) fn retransmit_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| crate::metrics::global().counter("shm.retransmit"))
}

/// CRC32C (Castagnoli) lookup table, reflected polynomial `0x82F63B78`.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// CRC32C of a byte slice.
pub fn crc32c_bytes(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// CRC32C of an `f64` payload (little-endian byte order, so a checksum
/// computed by the sender matches the receiver on the same machine).
pub fn crc32c(data: &[f64]) -> u32 {
    let mut crc = !0u32;
    for &x in data {
        for b in x.to_le_bytes() {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
    }
    !crc
}

/// Seeded single-bit-flip injection: which payloads to poison and how
/// hard. All draws are deterministic in `(seed, draw index)`, so a
/// poisoned run replays exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoisonPlan {
    /// Fault-stream seed.
    pub seed: u64,
    /// Per-payload probability of flipping one bit, `0.0..=1.0`.
    pub rate: f64,
}

impl PoisonPlan {
    /// Should payload number `draw` be poisoned?
    pub fn strikes(&self, draw: u64) -> bool {
        u01(self.seed, draw) < self.rate
    }

    /// Flip one deterministic bit of `data` (no-op on an empty payload).
    /// Uses a different draw stream than [`PoisonPlan::strikes`] so the
    /// strike decision and the flip position are decorrelated.
    pub fn flip_bit(&self, data: &mut [f64], draw: u64) {
        if data.is_empty() {
            return;
        }
        let r = splitmix(self.seed ^ 0xB17F_11B5_EEDF_00D5, draw);
        let idx = (r % data.len() as u64) as usize;
        let bit = (r >> 32) % 64;
        data[idx] = f64::from_bits(data[idx].to_bits() ^ (1u64 << bit));
    }
}

/// splitmix64 of `seed` advanced by `n`.
fn splitmix(seed: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from `(seed, n)`.
fn u01(seed: u64, n: u64) -> f64 {
    (splitmix(seed, n) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vector() {
        // The canonical CRC32C check value.
        assert_eq!(crc32c_bytes(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c_bytes(b""), 0);
    }

    #[test]
    fn f64_crc_matches_byte_crc() {
        let v = [1.5f64, -2.25, 1e300, 0.0, -0.0];
        let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
        assert_eq!(crc32c(&v), crc32c_bytes(&bytes));
    }

    #[test]
    fn single_bit_flip_always_detected() {
        let plan = PoisonPlan { seed: 7, rate: 1.0 };
        for draw in 0..64 {
            let clean: Vec<f64> = (0..33).map(|i| i as f64 * 0.37 - 5.0).collect();
            let crc = crc32c(&clean);
            let mut dirty = clean.clone();
            plan.flip_bit(&mut dirty, draw);
            assert_ne!(dirty, clean, "draw {draw} must flip something");
            assert_ne!(crc32c(&dirty), crc, "draw {draw} must change the CRC");
        }
    }

    #[test]
    fn strikes_follow_rate_and_replay() {
        let never = PoisonPlan { seed: 3, rate: 0.0 };
        let always = PoisonPlan { seed: 3, rate: 1.0 };
        let half = PoisonPlan { seed: 3, rate: 0.5 };
        let hits = (0..1000).filter(|&d| half.strikes(d)).count();
        assert!((350..650).contains(&hits), "rate 0.5 hit {hits}/1000");
        for d in 0..100 {
            assert!(!never.strikes(d));
            assert!(always.strikes(d));
            assert_eq!(half.strikes(d), half.strikes(d), "draws must replay");
        }
    }

    #[test]
    fn flip_on_empty_payload_is_noop() {
        let plan = PoisonPlan { seed: 1, rate: 1.0 };
        let mut v: Vec<f64> = vec![];
        plan.flip_bit(&mut v, 0);
        assert!(v.is_empty());
    }
}
