//! Tagged point-to-point messaging between rank threads.
//!
//! The "inter-node fabric" of the thread cluster: every rank owns a
//! [`Mailbox`] (an unbounded channel receiver plus an out-of-order buffer)
//! and a [`Network`] handle holding senders to all ranks. Matching is by
//! `(from, tag)` in FIFO order per pair, mirroring MPI and the simulator's
//! matching semantics.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Msg {
    /// Sender's global rank.
    pub from: usize,
    /// Match tag.
    pub tag: u64,
    /// Payload.
    pub data: Vec<f64>,
}

/// Cloneable handle for sending to any rank.
#[derive(Debug, Clone)]
pub struct Network {
    senders: Vec<Sender<Msg>>,
}

impl Network {
    /// Build a network of `ranks` mailboxes.
    pub fn new(ranks: usize) -> (Network, Vec<Mailbox>) {
        let mut senders = Vec::with_capacity(ranks);
        let mut boxes = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            boxes.push(Mailbox {
                rx,
                pending: VecDeque::new(),
            });
        }
        (Network { senders }, boxes)
    }

    /// Send `data` from `from` to `to` with `tag`.
    pub fn send(&self, from: usize, to: usize, tag: u64, data: Vec<f64>) {
        self.senders[to]
            .send(Msg { from, tag, data })
            .expect("receiver alive");
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.senders.len()
    }
}

/// Per-rank receive endpoint with out-of-order buffering.
#[derive(Debug)]
pub struct Mailbox {
    rx: Receiver<Msg>,
    pending: VecDeque<Msg>,
}

impl Mailbox {
    /// Blocking receive of the first message matching `(from, tag)`,
    /// buffering non-matching arrivals.
    pub fn recv_from(&mut self, from: usize, tag: u64) -> Vec<f64> {
        if let Some(data) = self.take_pending(from, tag) {
            return data;
        }
        loop {
            let m = self.rx.recv().expect("sender alive");
            if m.from == from && m.tag == tag {
                return m.data;
            }
            self.pending.push_back(m);
        }
    }

    /// Number of buffered out-of-order messages (diagnostics).
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// Pop the first buffered message matching `(from, tag)`, if any.
    pub(crate) fn take_pending(&mut self, from: usize, tag: u64) -> Option<Vec<f64>> {
        let pos = self
            .pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)?;
        Some(self.pending.remove(pos).expect("position valid").data)
    }

    /// Receive any message, waiting until `deadline`; `None` on timeout.
    pub(crate) fn recv_deadline(&mut self, deadline: std::time::Instant) -> Option<Msg> {
        self.rx.recv_deadline(deadline).ok()
    }

    /// Buffer a non-matching arrival for a later receive.
    pub(crate) fn buffer(&mut self, m: Msg) {
        self.pending.push_back(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_delivery() {
        let (net, mut boxes) = Network::new(2);
        net.send(0, 1, 7, vec![1.0, 2.0]);
        assert_eq!(boxes[1].recv_from(0, 7), vec![1.0, 2.0]);
    }

    #[test]
    fn out_of_order_matching() {
        let (net, mut boxes) = Network::new(3);
        net.send(2, 0, 1, vec![2.0]);
        net.send(1, 0, 1, vec![1.0]);
        // Ask for rank 1's message first although rank 2's arrived first.
        assert_eq!(boxes[0].recv_from(1, 1), vec![1.0]);
        assert_eq!(boxes[0].buffered(), 1);
        assert_eq!(boxes[0].recv_from(2, 1), vec![2.0]);
        assert_eq!(boxes[0].buffered(), 0);
    }

    #[test]
    fn fifo_per_pair_and_tag() {
        let (net, mut boxes) = Network::new(2);
        net.send(0, 1, 5, vec![1.0]);
        net.send(0, 1, 5, vec![2.0]);
        assert_eq!(boxes[1].recv_from(0, 5), vec![1.0]);
        assert_eq!(boxes[1].recv_from(0, 5), vec![2.0]);
    }

    #[test]
    fn cross_thread_exchange() {
        let (net, boxes) = Network::new(2);
        let mut boxes: Vec<Option<Mailbox>> = boxes.into_iter().map(Some).collect();
        let mut b0 = boxes[0].take().unwrap();
        let mut b1 = boxes[1].take().unwrap();
        let net2 = net.clone();
        let h = std::thread::spawn(move || {
            net2.send(1, 0, 0, vec![10.0]);
            b1.recv_from(0, 0)
        });
        net.send(0, 1, 0, vec![20.0]);
        assert_eq!(b0.recv_from(1, 0), vec![10.0]);
        assert_eq!(h.join().unwrap(), vec![20.0]);
    }
}
