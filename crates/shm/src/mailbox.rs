//! Tagged point-to-point messaging between rank threads.
//!
//! The "inter-node fabric" of the thread cluster: every rank owns a
//! [`Mailbox`] (an unbounded channel receiver plus an out-of-order buffer)
//! and a [`Network`] handle holding senders to all ranks. Matching is by
//! `(from, tag)` in FIFO order per pair, mirroring MPI and the simulator's
//! matching semantics.
//!
//! Every frame carries a CRC32C of its payload. A network built with
//! [`Network::with_poison`] deterministically corrupts a fraction of sent
//! payloads (single bit flips, seeded); the receiver's checksum catches
//! each one (`shm.crc_fail`) and recovers the clean bytes from the
//! sender-side retransmit store (`shm.retransmit`) — the real-bytes
//! mirror of the simulator's ack/retransmit protocol.

use crate::integrity::{crc32c, crc_fail_counter, retransmit_counter, PoisonPlan};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Msg {
    /// Sender's global rank.
    pub from: usize,
    /// Match tag.
    pub tag: u64,
    /// Payload.
    pub data: Vec<f64>,
    /// CRC32C of the payload *as sent by the application* — a poisoned
    /// frame carries the clean checksum, so the receiver can tell.
    pub crc: u32,
}

/// Sender-side poison injection plus the retransmit store the receiver
/// recovers clean payloads from. Shared by the [`Network`] handle and
/// every [`Mailbox`] of the same fabric.
#[derive(Debug)]
struct PoisonState {
    plan: PoisonPlan,
    /// Global draw counter: one draw per sent payload.
    draws: Mutex<u64>,
    /// Clean copies of poisoned payloads, keyed `(from, to, tag)` in
    /// FIFO order (matching the per-pair channel order).
    store: Mutex<RetransmitStore>,
}

/// Clean payloads awaiting recovery, keyed `(from, to, tag)`.
type RetransmitStore = HashMap<(usize, usize, u64), VecDeque<Vec<f64>>>;

impl PoisonState {
    fn next_draw(&self) -> u64 {
        let mut g = self.draws.lock().expect("poison draws poisoned");
        let d = *g;
        *g += 1;
        d
    }

    fn keep_clean(&self, from: usize, to: usize, tag: u64, data: Vec<f64>) {
        self.store
            .lock()
            .expect("retransmit store poisoned")
            .entry((from, to, tag))
            .or_default()
            .push_back(data);
    }

    fn take_clean(&self, from: usize, to: usize, tag: u64) -> Vec<f64> {
        self.store
            .lock()
            .expect("retransmit store poisoned")
            .get_mut(&(from, to, tag))
            .and_then(VecDeque::pop_front)
            .expect("corrupt frame with no retransmit copy")
    }
}

/// Cloneable handle for sending to any rank.
#[derive(Debug, Clone)]
pub struct Network {
    senders: Vec<Sender<Msg>>,
    poison: Option<Arc<PoisonState>>,
}

impl Network {
    /// Build a network of `ranks` mailboxes.
    pub fn new(ranks: usize) -> (Network, Vec<Mailbox>) {
        Network::build(ranks, None)
    }

    /// Build a network whose sends are deterministically poisoned per
    /// `plan`: each struck payload has one bit flipped on the wire while
    /// a clean copy is parked for the receiver's recovery.
    pub fn with_poison(ranks: usize, plan: PoisonPlan) -> (Network, Vec<Mailbox>) {
        Network::build(
            ranks,
            Some(Arc::new(PoisonState {
                plan,
                draws: Mutex::new(0),
                store: Mutex::new(HashMap::new()),
            })),
        )
    }

    fn build(ranks: usize, poison: Option<Arc<PoisonState>>) -> (Network, Vec<Mailbox>) {
        let mut senders = Vec::with_capacity(ranks);
        let mut boxes = Vec::with_capacity(ranks);
        for rank in 0..ranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            boxes.push(Mailbox {
                rank,
                rx,
                pending: VecDeque::new(),
                poison: poison.clone(),
            });
        }
        (Network { senders, poison }, boxes)
    }

    /// Send `data` from `from` to `to` with `tag`.
    pub fn send(&self, from: usize, to: usize, tag: u64, mut data: Vec<f64>) {
        let crc = crc32c(&data);
        if let Some(state) = &self.poison {
            let draw = state.next_draw();
            if !data.is_empty() && state.plan.strikes(draw) {
                state.keep_clean(from, to, tag, data.clone());
                state.plan.flip_bit(&mut data, draw);
            }
        }
        self.senders[to]
            .send(Msg {
                from,
                tag,
                data,
                crc,
            })
            .expect("receiver alive");
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.senders.len()
    }
}

/// Per-rank receive endpoint with out-of-order buffering.
#[derive(Debug)]
pub struct Mailbox {
    rank: usize,
    rx: Receiver<Msg>,
    pending: VecDeque<Msg>,
    poison: Option<Arc<PoisonState>>,
}

impl Mailbox {
    /// Blocking receive of the first message matching `(from, tag)`,
    /// buffering non-matching arrivals.
    pub fn recv_from(&mut self, from: usize, tag: u64) -> Vec<f64> {
        if let Some(m) = self.take_pending(from, tag) {
            return self.deliver(m);
        }
        loop {
            let m = self.rx.recv().expect("sender alive");
            if m.from == from && m.tag == tag {
                return self.deliver(m);
            }
            self.pending.push_back(m);
        }
    }

    /// Checksum gate every receive path funnels through: a payload whose
    /// CRC fails is counted (`shm.crc_fail`) and replaced by the clean
    /// copy from the retransmit store (`shm.retransmit`).
    pub(crate) fn deliver(&self, m: Msg) -> Vec<f64> {
        if crc32c(&m.data) == m.crc {
            return m.data;
        }
        crc_fail_counter().inc();
        let state = self
            .poison
            .as_ref()
            .expect("corrupt frame on an unpoisoned network");
        let clean = state.take_clean(m.from, self.rank, m.tag);
        debug_assert_eq!(crc32c(&clean), m.crc, "retransmit copy must be clean");
        retransmit_counter().inc();
        clean
    }

    /// Number of buffered out-of-order messages (diagnostics).
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// Pop the first buffered message matching `(from, tag)`, if any.
    pub(crate) fn take_pending(&mut self, from: usize, tag: u64) -> Option<Msg> {
        let pos = self
            .pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)?;
        Some(self.pending.remove(pos).expect("position valid"))
    }

    /// Receive any message, waiting until `deadline`; `None` on timeout.
    pub(crate) fn recv_deadline(&mut self, deadline: std::time::Instant) -> Option<Msg> {
        self.rx.recv_deadline(deadline).ok()
    }

    /// Buffer a non-matching arrival for a later receive.
    pub(crate) fn buffer(&mut self, m: Msg) {
        self.pending.push_back(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_delivery() {
        let (net, mut boxes) = Network::new(2);
        net.send(0, 1, 7, vec![1.0, 2.0]);
        assert_eq!(boxes[1].recv_from(0, 7), vec![1.0, 2.0]);
    }

    #[test]
    fn out_of_order_matching() {
        let (net, mut boxes) = Network::new(3);
        net.send(2, 0, 1, vec![2.0]);
        net.send(1, 0, 1, vec![1.0]);
        // Ask for rank 1's message first although rank 2's arrived first.
        assert_eq!(boxes[0].recv_from(1, 1), vec![1.0]);
        assert_eq!(boxes[0].buffered(), 1);
        assert_eq!(boxes[0].recv_from(2, 1), vec![2.0]);
        assert_eq!(boxes[0].buffered(), 0);
    }

    #[test]
    fn fifo_per_pair_and_tag() {
        let (net, mut boxes) = Network::new(2);
        net.send(0, 1, 5, vec![1.0]);
        net.send(0, 1, 5, vec![2.0]);
        assert_eq!(boxes[1].recv_from(0, 5), vec![1.0]);
        assert_eq!(boxes[1].recv_from(0, 5), vec![2.0]);
    }

    #[test]
    fn cross_thread_exchange() {
        let (net, boxes) = Network::new(2);
        let mut boxes: Vec<Option<Mailbox>> = boxes.into_iter().map(Some).collect();
        let mut b0 = boxes[0].take().unwrap();
        let mut b1 = boxes[1].take().unwrap();
        let net2 = net.clone();
        let h = std::thread::spawn(move || {
            net2.send(1, 0, 0, vec![10.0]);
            b1.recv_from(0, 0)
        });
        net.send(0, 1, 0, vec![20.0]);
        assert_eq!(b0.recv_from(1, 0), vec![10.0]);
        assert_eq!(h.join().unwrap(), vec![20.0]);
    }

    #[test]
    fn poisoned_send_recovers_clean_payload() {
        let reg = crate::metrics::global();
        let before = reg.snapshot();
        let (net, mut boxes) = Network::with_poison(
            2,
            PoisonPlan {
                seed: 11,
                rate: 1.0,
            },
        );
        let payload: Vec<f64> = (0..256).map(|i| i as f64 * 0.5 - 3.0).collect();
        net.send(0, 1, 9, payload.clone());
        assert_eq!(boxes[1].recv_from(0, 9), payload);
        let after = reg.snapshot();
        let fails = after.counter("shm.crc_fail").unwrap_or(0)
            - before.counter("shm.crc_fail").unwrap_or(0);
        let rtx = after.counter("shm.retransmit").unwrap_or(0)
            - before.counter("shm.retransmit").unwrap_or(0);
        assert!(fails >= 1, "the flipped bit must fail the CRC");
        assert!(rtx >= 1, "the clean copy must be recovered");
    }

    #[test]
    fn poisoned_out_of_order_frames_recover_in_order() {
        let (net, mut boxes) = Network::with_poison(3, PoisonPlan { seed: 4, rate: 1.0 });
        net.send(2, 0, 1, vec![2.0, 2.5]);
        net.send(1, 0, 1, vec![1.0, 1.5]);
        net.send(1, 0, 1, vec![7.0, 7.5]);
        assert_eq!(boxes[0].recv_from(1, 1), vec![1.0, 1.5]);
        assert_eq!(boxes[0].recv_from(1, 1), vec![7.0, 7.5]);
        assert_eq!(boxes[0].recv_from(2, 1), vec![2.0, 2.5]);
    }

    #[test]
    fn zero_rate_poison_never_fires() {
        // (Counters are global and other tests bump them concurrently,
        // so assert on behavior: payloads arrive intact and the store
        // stays empty — nothing was ever parked for retransmission.)
        let (net, mut boxes) = Network::with_poison(2, PoisonPlan { seed: 8, rate: 0.0 });
        for i in 0..50 {
            net.send(0, 1, i, vec![i as f64]);
            assert_eq!(boxes[1].recv_from(0, i), vec![i as f64]);
        }
        let state = net.poison.as_ref().unwrap();
        assert!(state.store.lock().unwrap().is_empty());
    }
}
