//! End-to-end DPML on a thread cluster.
//!
//! Threads are grouped into virtual nodes (`nodes × ppn` ranks). Within a
//! node, phases 1/2/4 run on real shared memory exactly as in
//! [`crate::intranode`]; phase 3 runs recursive doubling between same-index
//! leaders of different nodes over the [`crate::mailbox`] fabric. This
//! validates the complete four-phase algorithm numerically — the thread
//! analogue of what `dpml-core` + `dpml-engine` validate symbolically.

use crate::barrier::{BarrierToken, SpinBarrier};
use crate::intranode::{leader_local, partition_elems};
use crate::kernels::{fold_slots, reduce_into};
use crate::mailbox::{Mailbox, Network};
use crate::region::SharedSlots;

/// A virtual cluster of `nodes × ppn` rank threads.
#[derive(Debug, Clone, Copy)]
pub struct ThreadCluster {
    nodes: usize,
    ppn: usize,
}

/// Recursive doubling over `mail`/`net` among `members` (global ranks);
/// `acc` is reduced in place to the members' element-wise sum. Handles any
/// member count via the usual fold-extras prologue/epilogue.
fn recursive_doubling(
    net: &Network,
    mail: &mut Mailbox,
    members: &[usize],
    me: usize,
    acc: &mut Vec<f64>,
    tag_base: u64,
) {
    let p = members.len();
    if p <= 1 {
        return;
    }
    let my_idx = members.iter().position(|&m| m == me).expect("member");
    let pof2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
    let rem = p - pof2;

    // Prologue: fold odd extras into their even partners.
    if my_idx < 2 * rem {
        if my_idx % 2 == 1 {
            net.send(me, members[my_idx - 1], tag_base, acc.clone());
            // Wait for the final value in the epilogue.
            *acc = mail.recv_from(members[my_idx - 1], tag_base + 1000);
            return;
        } else {
            let got = mail.recv_from(members[my_idx + 1], tag_base);
            reduce_into(acc, &got);
        }
    }
    let core_idx = if my_idx < 2 * rem {
        my_idx / 2
    } else {
        my_idx - rem
    };
    let core_rank = |i: usize| {
        if i < rem {
            members[2 * i]
        } else {
            members[i + rem]
        }
    };

    let steps = pof2.trailing_zeros();
    for step in 0..steps {
        let peer = core_rank(core_idx ^ (1 << step));
        net.send(me, peer, tag_base + 1 + step as u64, acc.clone());
        let got = mail.recv_from(peer, tag_base + 1 + step as u64);
        reduce_into(acc, &got);
    }

    // Epilogue: return final values to folded-out extras.
    if my_idx < 2 * rem && my_idx % 2 == 0 {
        net.send(me, members[my_idx + 1], tag_base + 1000, acc.clone());
    }
}

impl ThreadCluster {
    /// Cluster of `nodes` virtual nodes with `ppn` ranks each.
    pub fn new(nodes: usize, ppn: usize) -> Self {
        assert!(nodes >= 1 && ppn >= 1);
        ThreadCluster { nodes, ppn }
    }

    /// Total ranks.
    pub fn world_size(&self) -> usize {
        self.nodes * self.ppn
    }

    /// Full four-phase DPML allreduce with `leaders` per node. `inputs` is
    /// indexed by global rank (node-major); returns each rank's result.
    pub fn allreduce_dpml(&self, inputs: &[Vec<f64>], leaders: usize) -> Vec<Vec<f64>> {
        let p = self.world_size();
        assert_eq!(inputs.len(), p, "one input per rank");
        let n = inputs[0].len();
        assert!(
            inputs.iter().all(|v| v.len() == n),
            "inputs must be same length"
        );
        let l = leaders;
        assert!(l >= 1 && l <= self.ppn, "leaders {l} out of range");

        let parts = partition_elems(n, l);
        let max_len = parts.iter().map(|(s, e)| e - s).max().unwrap_or(0);
        let gathers: Vec<SharedSlots> = (0..self.nodes)
            .map(|_| SharedSlots::new(l * self.ppn, max_len))
            .collect();
        let publishes: Vec<SharedSlots> = (0..self.nodes)
            .map(|_| SharedSlots::new(l, max_len))
            .collect();
        let barriers: Vec<SpinBarrier> = (0..self.nodes)
            .map(|_| SpinBarrier::new(self.ppn))
            .collect();
        let (net, boxes) = Network::new(p);
        let mut boxes: Vec<Option<Mailbox>> = boxes.into_iter().map(Some).collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..p)
                .map(|g| {
                    let node = g / self.ppn;
                    let t = g % self.ppn;
                    let gather = &gathers[node];
                    let publish = &publishes[node];
                    let barrier = &barriers[node];
                    let parts = &parts;
                    let input = &inputs[g];
                    let net = net.clone();
                    let mut mail = boxes[g].take().expect("mailbox taken once");
                    let nodes = self.nodes;
                    let ppn = self.ppn;
                    scope.spawn(move || {
                        let mut tok = BarrierToken::new();
                        // Phase 1.
                        for (j, &(s, e)) in parts.iter().enumerate() {
                            // SAFETY: slot (j, t) written only by thread t.
                            let slot = unsafe { gather.slot_mut(j * ppn + t) };
                            slot[..e - s].copy_from_slice(&input[s..e]);
                        }
                        tok.wait(barrier);
                        // Phases 2 + 3 (leaders only).
                        for (j, &(s, e)) in parts.iter().enumerate() {
                            if leader_local(j, l, ppn) != t {
                                continue;
                            }
                            let plen = e - s;
                            let mut acc = vec![0.0; plen];
                            if plen > 0 {
                                // SAFETY: phase-1 writers barrier-separated.
                                unsafe {
                                    let slots: Vec<&[f64]> = (0..ppn)
                                        .map(|i| &gather.slot(j * ppn + i)[..plen])
                                        .collect();
                                    fold_slots(&mut acc, &slots);
                                }
                            }
                            // Phase 3: inter-node RD among leader-j ranks.
                            let members: Vec<usize> = (0..nodes)
                                .map(|m| m * ppn + leader_local(j, l, ppn))
                                .collect();
                            recursive_doubling(
                                &net,
                                &mut mail,
                                &members,
                                g,
                                &mut acc,
                                (j as u64) << 32,
                            );
                            // Publish.
                            // SAFETY: publish slot j has unique writer.
                            unsafe {
                                publish.slot_mut(j)[..plen].copy_from_slice(&acc);
                            }
                        }
                        tok.wait(barrier);
                        // Phase 4.
                        let mut out = vec![0.0; n];
                        for (j, &(s, e)) in parts.iter().enumerate() {
                            // SAFETY: publish writers barrier-separated.
                            let slot = unsafe { publish.slot(j) };
                            out[s..e].copy_from_slice(&slot[..e - s]);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }

    /// Four-phase DPML with the phase-3 allreduce pipelined over `k`
    /// sub-partitions, mirroring `dpml-core`'s `DPML-Pipelined` schedule
    /// numerically: each leader splits its partition into `k` chunks and
    /// runs `k` interleaved recursive-doubling exchanges.
    pub fn allreduce_dpml_pipelined(
        &self,
        inputs: &[Vec<f64>],
        leaders: usize,
        k: usize,
    ) -> Vec<Vec<f64>> {
        assert!(k >= 1, "need at least one chunk");
        let p = self.world_size();
        assert_eq!(inputs.len(), p, "one input per rank");
        let n = inputs[0].len();
        assert!(
            inputs.iter().all(|v| v.len() == n),
            "inputs must be same length"
        );
        let l = leaders;
        assert!(l >= 1 && l <= self.ppn, "leaders {l} out of range");

        let parts = partition_elems(n, l);
        let max_len = parts.iter().map(|(s, e)| e - s).max().unwrap_or(0);
        let gathers: Vec<SharedSlots> = (0..self.nodes)
            .map(|_| SharedSlots::new(l * self.ppn, max_len))
            .collect();
        let publishes: Vec<SharedSlots> = (0..self.nodes)
            .map(|_| SharedSlots::new(l, max_len))
            .collect();
        let barriers: Vec<SpinBarrier> = (0..self.nodes)
            .map(|_| SpinBarrier::new(self.ppn))
            .collect();
        let (net, boxes) = Network::new(p);
        let mut boxes: Vec<Option<Mailbox>> = boxes.into_iter().map(Some).collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..p)
                .map(|g| {
                    let node = g / self.ppn;
                    let t = g % self.ppn;
                    let gather = &gathers[node];
                    let publish = &publishes[node];
                    let barrier = &barriers[node];
                    let parts = &parts;
                    let input = &inputs[g];
                    let net = net.clone();
                    let mut mail = boxes[g].take().expect("mailbox taken once");
                    let nodes = self.nodes;
                    let ppn = self.ppn;
                    scope.spawn(move || {
                        let mut tok = BarrierToken::new();
                        for (j, &(s, e)) in parts.iter().enumerate() {
                            // SAFETY: slot (j, t) written only by thread t.
                            let slot = unsafe { gather.slot_mut(j * ppn + t) };
                            slot[..e - s].copy_from_slice(&input[s..e]);
                        }
                        tok.wait(barrier);
                        for (j, &(s, e)) in parts.iter().enumerate() {
                            if leader_local(j, l, ppn) != t {
                                continue;
                            }
                            let plen = e - s;
                            let mut acc = vec![0.0; plen];
                            if plen > 0 {
                                // SAFETY: phase-1 writers barrier-separated.
                                unsafe {
                                    let slots: Vec<&[f64]> = (0..ppn)
                                        .map(|i| &gather.slot(j * ppn + i)[..plen])
                                        .collect();
                                    fold_slots(&mut acc, &slots);
                                }
                            }
                            let members: Vec<usize> = (0..nodes)
                                .map(|m| m * ppn + leader_local(j, l, ppn))
                                .collect();
                            // Phase 3, pipelined: k chunk-allreduces.
                            let chunks = partition_elems(plen, k);
                            for (c, &(cs, ce)) in chunks.iter().enumerate() {
                                let mut chunk_acc = acc[cs..ce].to_vec();
                                recursive_doubling(
                                    &net,
                                    &mut mail,
                                    &members,
                                    g,
                                    &mut chunk_acc,
                                    ((j * k + c) as u64) << 32,
                                );
                                acc[cs..ce].copy_from_slice(&chunk_acc);
                            }
                            // SAFETY: publish slot j has unique writer.
                            unsafe {
                                publish.slot_mut(j)[..plen].copy_from_slice(&acc);
                            }
                        }
                        tok.wait(barrier);
                        let mut out = vec![0.0; n];
                        for (j, &(s, e)) in parts.iter().enumerate() {
                            // SAFETY: publish writers barrier-separated.
                            let slot = unsafe { publish.slot(j) };
                            out[s..e].copy_from_slice(&slot[..e - s]);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }

    /// Flat recursive doubling over all ranks (cross-check baseline).
    pub fn allreduce_recursive_doubling(&self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let p = self.world_size();
        assert_eq!(inputs.len(), p);
        let (net, boxes) = Network::new(p);
        let mut boxes: Vec<Option<Mailbox>> = boxes.into_iter().map(Some).collect();
        let members: Vec<usize> = (0..p).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..p)
                .map(|g| {
                    let net = net.clone();
                    let mut mail = boxes[g].take().expect("mailbox taken once");
                    let members = members.clone();
                    let input = &inputs[g];
                    scope.spawn(move || {
                        let mut acc = input.clone();
                        recursive_doubling(&net, &mut mail, &members, g, &mut acc, 0);
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }

    /// Serial reference.
    pub fn serial(&self, inputs: &[Vec<f64>]) -> Vec<f64> {
        let mut acc = vec![0.0; inputs[0].len()];
        for i in inputs {
            reduce_into(&mut acc, i);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::assert_close;

    fn inputs(p: usize, n: usize) -> Vec<Vec<f64>> {
        (0..p)
            .map(|r| {
                (0..n)
                    .map(|i| ((r * 13 + i * 17) % 101) as f64 / 4.0 - 12.0)
                    .collect()
            })
            .collect()
    }

    fn check_dpml(nodes: usize, ppn: usize, n: usize, l: usize) {
        let c = ThreadCluster::new(nodes, ppn);
        let ins = inputs(c.world_size(), n);
        let got = c.allreduce_dpml(&ins, l);
        let expect = c.serial(&ins);
        for g in &got {
            assert_close(g, &expect, 1e-10);
        }
    }

    #[test]
    fn dpml_basic() {
        check_dpml(4, 4, 1000, 2);
    }

    #[test]
    fn dpml_all_leader_counts() {
        for l in [1, 2, 3, 4] {
            check_dpml(4, 4, 777, l);
        }
    }

    #[test]
    fn dpml_non_pow2_nodes() {
        check_dpml(3, 2, 500, 2);
        check_dpml(5, 3, 301, 3);
        check_dpml(6, 4, 64, 4);
    }

    #[test]
    fn dpml_single_node() {
        check_dpml(1, 8, 4096, 4);
    }

    #[test]
    fn dpml_single_rank_nodes() {
        check_dpml(4, 1, 256, 1);
    }

    #[test]
    fn dpml_tiny_vector() {
        check_dpml(2, 4, 3, 4);
    }

    #[test]
    fn pipelined_dpml_matches_serial() {
        for (nodes, ppn, l, k) in [(4usize, 4usize, 2usize, 3usize), (3, 2, 2, 4), (2, 4, 4, 1)] {
            let c = ThreadCluster::new(nodes, ppn);
            let ins = inputs(c.world_size(), 501);
            let got = c.allreduce_dpml_pipelined(&ins, l, k);
            let expect = c.serial(&ins);
            for g in &got {
                assert_close(g, &expect, 1e-10);
            }
        }
    }

    #[test]
    fn flat_rd_matches_serial() {
        let c = ThreadCluster::new(4, 2);
        let ins = inputs(8, 321);
        let got = c.allreduce_recursive_doubling(&ins);
        let expect = c.serial(&ins);
        for g in &got {
            assert_close(g, &expect, 1e-10);
        }
    }

    #[test]
    fn flat_rd_non_pow2_world() {
        let c = ThreadCluster::new(3, 2); // p = 6
        let ins = inputs(6, 100);
        let got = c.allreduce_recursive_doubling(&ins);
        let expect = c.serial(&ins);
        for g in &got {
            assert_close(g, &expect, 1e-10);
        }
    }

    #[test]
    fn dpml_and_flat_agree() {
        let c = ThreadCluster::new(4, 4);
        let ins = inputs(16, 512);
        let a = c.allreduce_dpml(&ins, 4);
        let b = c.allreduce_recursive_doubling(&ins);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_close(x, y, 1e-10);
        }
    }
}
