//! Shared-memory slot regions.
//!
//! [`SharedSlots`] models the per-leader shared regions of DPML phase 1:
//! a matrix of fixed-size slots, each written by exactly one rank during a
//! phase and read by (possibly many) others *after a barrier*. Interior
//! mutability is via `UnsafeCell`; the unsafe accessors carry the access
//! discipline in their contracts, and the safe wrapper in `intranode`
//! upholds it with barriers (the same happens-before structure a real MPI
//! shared-memory window relies on).

use std::cell::UnsafeCell;

/// A bank of equally sized `f64` slots in (conceptually) shared memory.
pub struct SharedSlots {
    data: Vec<UnsafeCell<Box<[f64]>>>,
    slot_len: usize,
}

// SAFETY: concurrent access is governed by the documented discipline —
// a slot has at most one writer at a time, and readers are separated from
// writers by a barrier (callers' obligation on the unsafe accessors).
unsafe impl Sync for SharedSlots {}

impl SharedSlots {
    /// Allocate `slots` zeroed slots of `slot_len` f64s each.
    pub fn new(slots: usize, slot_len: usize) -> Self {
        SharedSlots {
            data: (0..slots)
                .map(|_| UnsafeCell::new(vec![0.0; slot_len].into_boxed_slice()))
                .collect(),
            slot_len,
        }
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.data.len()
    }

    /// Slot length in elements.
    pub fn slot_len(&self) -> usize {
        self.slot_len
    }

    /// Mutable access to one slot.
    ///
    /// # Safety
    /// Within a synchronization epoch (between two barriers), at most one
    /// thread may hold the mutable slice of slot `i`, and no thread may
    /// concurrently read it.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slot_mut(&self, i: usize) -> &mut [f64] {
        // SAFETY: forwarded to the caller per the function contract.
        unsafe { &mut *self.data[i].get() }
    }

    /// Shared access to one slot.
    ///
    /// # Safety
    /// No thread may mutate slot `i` during the epoch in which this
    /// reference is used (writers of the previous epoch must be separated
    /// by a barrier).
    pub unsafe fn slot(&self, i: usize) -> &[f64] {
        // SAFETY: forwarded to the caller per the function contract.
        unsafe { &*self.data[i].get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barrier::{BarrierToken, SpinBarrier};
    use std::sync::Arc;

    #[test]
    fn shape() {
        let s = SharedSlots::new(6, 128);
        assert_eq!(s.num_slots(), 6);
        assert_eq!(s.slot_len(), 128);
        // SAFETY: single-threaded test, no concurrent access.
        unsafe {
            assert!(s.slot(3).iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn single_writer_then_many_readers() {
        let slots = Arc::new(SharedSlots::new(4, 1024));
        let barrier = Arc::new(SpinBarrier::new(4));
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let slots = Arc::clone(&slots);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut tok = BarrierToken::new();
                    // Epoch 1: thread t writes slot t.
                    // SAFETY: each thread writes only its own slot.
                    unsafe {
                        for v in slots.slot_mut(t).iter_mut() {
                            *v = t as f64 + 1.0;
                        }
                    }
                    tok.wait(&barrier);
                    // Epoch 2: everyone reads every slot.
                    // SAFETY: writers are barrier-separated.
                    let total: f64 = unsafe { (0..4).map(|i| slots.slot(i)[17]).sum() };
                    assert_eq!(total, 1.0 + 2.0 + 3.0 + 4.0);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
