//! Concurrency coverage for `dpml_shm::metrics`: snapshots taken while
//! writers are hot, `Registry::reset` racing cached `Arc<Counter>`
//! handles, and the time-series ring under concurrent push/read.

use dpml_shm::metrics::{rates_between, MetricsSnapshot, Registry, TimeSeriesRing, TimedSnapshot};
use std::sync::Arc;

const WRITERS: usize = 8;
const INCREMENTS: u64 = 20_000;

/// Snapshots taken mid-flight must be internally plausible (counter never
/// exceeds the eventual total, histogram count matches recorded samples
/// seen so far) and monotone across successive snapshots.
#[test]
fn snapshot_while_recording_is_monotone_and_bounded() {
    let reg = Arc::new(Registry::new());
    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                let c = reg.counter("hot");
                let h = reg.histogram("lat");
                for i in 0..INCREMENTS {
                    c.inc();
                    h.record(i % 1024);
                }
            });
        }
        let reg2 = Arc::clone(&reg);
        s.spawn(move || {
            let total = WRITERS as u64 * INCREMENTS;
            let mut last = 0u64;
            loop {
                let snap = reg2.snapshot();
                let v = snap.counter("hot").unwrap_or(0);
                assert!(v >= last, "counter went backwards: {last} -> {v}");
                assert!(v <= total, "counter overshot: {v} > {total}");
                if let Some(h) = snap.histogram("lat") {
                    assert!(h.count <= total);
                    let bucket_sum: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
                    assert!(bucket_sum <= total);
                }
                last = v;
                if v == total {
                    break;
                }
                std::thread::yield_now();
            }
        });
    });
    assert_eq!(
        reg.snapshot().counter("hot"),
        Some(WRITERS as u64 * INCREMENTS)
    );
}

/// `Registry::reset` must race safely against writers holding cached
/// `Arc<Counter>` handles from before the reset: no panics, no torn
/// values, and a final quiesced reset really zeroes everything.
#[test]
fn reset_races_cached_counter_handles() {
    let reg = Arc::new(Registry::new());
    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            // Handles cached *before* any reset — the interesting case.
            let c = reg.counter("raced");
            let h = reg.histogram("raced.lat");
            s.spawn(move || {
                for i in 0..INCREMENTS {
                    c.add(1);
                    h.record(i);
                }
            });
        }
        let reg2 = Arc::clone(&reg);
        s.spawn(move || {
            for _ in 0..200 {
                reg2.reset();
                let snap = reg2.snapshot();
                // Post-reset the value can only reflect writes since the
                // reset, never more than the lifetime total.
                let v = snap.counter("raced").unwrap_or(0);
                assert!(v <= WRITERS as u64 * INCREMENTS);
                std::thread::yield_now();
            }
        });
    });
    // Quiesced: one final reset must zero everything while names persist.
    reg.reset();
    let snap = reg.snapshot();
    assert_eq!(snap.counter("raced"), Some(0));
    assert_eq!(snap.histogram("raced.lat").unwrap().count, 0);
    assert!(snap.histogram("raced.lat").unwrap().buckets.is_empty());
}

/// Cached handles stay live (same underlying atomic) across `reset`:
/// writes through an old `Arc` land in the registry's counter, not a
/// detached orphan.
#[test]
fn cached_handle_still_registered_after_reset() {
    let reg = Registry::new();
    let cached = reg.counter("sticky");
    cached.add(5);
    reg.reset();
    cached.add(2);
    assert_eq!(reg.snapshot().counter("sticky"), Some(2));
    assert_eq!(reg.counter("sticky").get(), 2);
}

/// Concurrent pushers never grow the ring past capacity, and a reader
/// always sees a consistent window (timestamps monotone per pusher order
/// is not guaranteed across threads, but lengths and capacity are).
#[test]
fn time_series_ring_concurrent_push_holds_capacity() {
    let ring = Arc::new(TimeSeriesRing::new(8));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                for i in 0..500u64 {
                    ring.push(t * 1_000_000 + i, MetricsSnapshot::default());
                }
            });
        }
        let ring2 = Arc::clone(&ring);
        s.spawn(move || {
            for _ in 0..500 {
                assert!(ring2.len() <= ring2.capacity());
                let recent = ring2.recent(8);
                assert!(recent.len() <= 8);
                std::thread::yield_now();
            }
        });
    });
    assert_eq!(ring.len(), 8);
}

/// End-to-end: a sampler loop pushing live snapshots into the ring while
/// writers record produces sane windowed rates.
#[test]
fn ring_plus_rates_under_load() {
    let reg = Arc::new(Registry::new());
    let ring = TimeSeriesRing::new(16);
    std::thread::scope(|s| {
        let reg2 = Arc::clone(&reg);
        s.spawn(move || {
            let c = reg2.counter("work");
            for _ in 0..50_000 {
                c.inc();
            }
        });
        let mut t_ms = 0u64;
        while ring
            .latest()
            .and_then(|ts| ts.snap.counter("work"))
            .unwrap_or(0)
            < 50_000
        {
            t_ms += 100; // synthetic clock: deterministic dt windows
            ring.push(t_ms, reg.snapshot());
            std::thread::yield_now();
        }
        if ring.len() < 2 {
            // Writer outran the sampler: take one more sample so a
            // rate window exists.
            ring.push(t_ms + 100, reg.snapshot());
        }
    });
    let (older, newer) = ring.last_two().expect("at least two samples");
    let report = rates_between(&older, &newer);
    assert!(report.dt_ms >= 1);
    let rate = report.per_sec("work").unwrap();
    assert!(rate >= 0.0);
    // Whole-run cross-check against the first/last window.
    let first = ring.recent(ring.capacity()).first().cloned().unwrap();
    let last = TimedSnapshot {
        t_ms: newer.t_ms,
        snap: reg.snapshot(),
    };
    let whole = rates_between(&first, &last);
    assert_eq!(
        whole
            .rates
            .iter()
            .find(|r| r.name == "work")
            .map(|r| r.delta),
        Some(50_000 - first.snap.counter("work").unwrap_or(0))
    );
}
