//! Watchdog-triggered failover: a rank thread dies mid-DPML-allreduce and
//! every survivor surfaces a *structured* timeout naming what it was
//! waiting on — the phase-3 peer gets [`ShmTimeout::Recv`] carrying the
//! dead rank's id, node peers get [`ShmTimeout::Barrier`] — and every
//! thread joins cleanly. No hang, no poisoned-mutex panic escaping a
//! worker.
//!
//! The topology mirrors [`dpml_shm::ThreadCluster`]'s four-phase layout
//! (2 nodes x 2 ppn, every local rank a leader) but drives the phases
//! with the deadline-guarded primitives from [`dpml_shm::watchdog`], the
//! way a fault-tolerant runtime would.

use dpml_shm::kernels::fold_slots;
use dpml_shm::mailbox::Network;
use dpml_shm::watchdog::{exchange_with_deadline, ShmTimeout};
use dpml_shm::{SharedSlots, SpinBarrier};
use std::time::Duration;

const NODES: usize = 2;
const PPN: usize = 2;
const P: usize = NODES * PPN;
/// Elements per partition; `l = PPN` leaders, one partition each.
const PART: usize = 32;
const N: usize = PART * PPN;
/// Rank that crashes after its phase-1 deposits (node 1, local 1 —
/// leader of partition 1).
const DEAD: usize = 3;
const TIMEOUT: Duration = Duration::from_millis(300);
/// Generous deadline for synchronization that must succeed.
const HEALTHY: Duration = Duration::from_secs(30);

/// What each rank thread came back with.
#[derive(Debug, PartialEq)]
enum Outcome {
    /// The simulated crash victim: exited after the gather barrier.
    Died,
    /// Completed its partition work, then hit the publish barrier where
    /// the dead rank (or a rank that detected the death) never arrived.
    BarrierTimeout,
    /// Phase-3 exchange timed out awaiting the dead peer's reply.
    PeerTimeout { from: usize, tag: u64 },
}

#[test]
fn dead_rank_mid_allreduce_yields_structured_timeouts() {
    let inputs: Vec<Vec<f64>> = (0..P)
        .map(|r| (0..N).map(|i| (r * 7 + i) as f64).collect())
        .collect();
    let gathers: Vec<SharedSlots> = (0..NODES)
        .map(|_| SharedSlots::new(PPN * PPN, PART))
        .collect();
    let publishes: Vec<SharedSlots> = (0..NODES).map(|_| SharedSlots::new(PPN, PART)).collect();
    let barriers: Vec<SpinBarrier> = (0..NODES).map(|_| SpinBarrier::new(PPN)).collect();
    let (net, boxes) = Network::new(P);
    let mut boxes: Vec<Option<_>> = boxes.into_iter().map(Some).collect();

    let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..P)
            .map(|g| {
                let node = g / PPN;
                let t = g % PPN;
                let gather = &gathers[node];
                let publish = &publishes[node];
                let barrier = &barriers[node];
                let input = &inputs[g];
                let net = net.clone();
                let mut mail = boxes[g].take().expect("mailbox taken once");
                scope.spawn(move || -> Outcome {
                    let mut sense = false;
                    // Phase 1: deposit each partition into the leader's
                    // gather region. Everyone is still alive here, so the
                    // gather barrier completes within the healthy deadline.
                    for j in 0..PPN {
                        // SAFETY: slot (j, t) written only by thread t.
                        let slot = unsafe { gather.slot_mut(j * PPN + t) };
                        slot.copy_from_slice(&input[j * PART..(j + 1) * PART]);
                    }
                    barrier
                        .wait_timeout(&mut sense, HEALTHY)
                        .expect("gather barrier must complete: all ranks alive");

                    // The fail-stop crash: this rank's deposits survive in
                    // the shared region, but it will never run phases 2-4.
                    if g == DEAD {
                        return Outcome::Died;
                    }

                    // Phases 2 + 3: every local rank leads partition `t`.
                    let j = t;
                    let mut acc = vec![0.0; PART];
                    // SAFETY: phase-1 writers are barrier-separated.
                    unsafe {
                        let slots: Vec<&[f64]> =
                            (0..PPN).map(|i| gather.slot(j * PPN + i)).collect();
                        fold_slots(&mut acc, &slots);
                    }
                    let peer = (1 - node) * PPN + j;
                    let tag = j as u64;
                    match exchange_with_deadline(
                        &net,
                        &mut mail,
                        g,
                        peer,
                        tag,
                        acc.clone(),
                        TIMEOUT,
                    ) {
                        Ok(got) => {
                            for (a, b) in acc.iter_mut().zip(&got) {
                                *a += b;
                            }
                        }
                        // The watchdog names the dead participant; report
                        // it instead of publishing a partial result.
                        Err(ShmTimeout::Recv { from, tag, .. }) => {
                            return Outcome::PeerTimeout { from, tag };
                        }
                        Err(e) => panic!("unexpected timeout shape: {e}"),
                    }
                    // SAFETY: publish slot j has a unique writer.
                    unsafe {
                        publish.slot_mut(j).copy_from_slice(&acc);
                    }
                    // Publish barrier: the dead rank (node 1) and the rank
                    // that detected it (node 0) never arrive, so both
                    // survivors time out here instead of hanging.
                    match barrier.wait_timeout(&mut sense, TIMEOUT) {
                        Ok(()) => panic!("publish barrier cannot complete with a dead member"),
                        Err(ShmTimeout::Barrier { .. }) => Outcome::BarrierTimeout,
                        Err(e) => panic!("unexpected timeout shape: {e}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no worker panic may escape"))
            .collect()
    });

    // Rank 3 died; its phase-3 peer (rank 1, partition 1's leader on node
    // 0) reports a receive timeout naming rank 3; ranks 0 and 2 finished
    // partition 0 and report the stalled publish barrier.
    assert_eq!(outcomes[DEAD], Outcome::Died);
    assert_eq!(outcomes[1], Outcome::PeerTimeout { from: DEAD, tag: 1 });
    assert_eq!(outcomes[0], Outcome::BarrierTimeout);
    assert_eq!(outcomes[2], Outcome::BarrierTimeout);
}

#[test]
fn timeout_messages_name_the_dead_participant() {
    let err = ShmTimeout::Recv {
        from: DEAD,
        tag: 1,
        waited: TIMEOUT,
    };
    let msg = err.to_string();
    assert!(msg.contains("rank 3"), "message must name the peer: {msg}");
    let err = ShmTimeout::Barrier { waited: TIMEOUT };
    assert!(err.to_string().contains("poisoned"));
}
