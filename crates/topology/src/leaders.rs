//! Leader selection for hierarchical and multi-leader collectives.
//!
//! The DPML design (paper Section 4.1) designates `l` processes per node as
//! leaders which share reduction work and drive concurrent inter-node
//! transfers. The SHArP designs (Section 4.3) instead use one leader per node
//! or one per socket. This module encodes those policies.

use crate::cluster::ClusterSpec;
use crate::ids::{LocalRank, NodeId, Rank, SocketId};
use crate::rank_map::RankMap;
use crate::TopologyError;
use serde::{Deserialize, Serialize};

/// A policy choosing which local ranks act as leaders on each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaderPolicy {
    /// `l` leaders per node, spread evenly across the local ranks (and hence
    /// across sockets under block binding). DPML with `l = 1` degenerates to
    /// the classic single-leader hierarchical design.
    PerNode(u32),
    /// Exactly one leader per node (local rank 0) — the SHArP
    /// "node-level leader" design.
    NodeLevel,
    /// One leader per socket (the first local rank bound to each socket) —
    /// the SHArP "socket-level leader" design, which avoids cross-socket
    /// gather/broadcast traffic and keeps the SHArP group small.
    SocketLevel,
}

impl LeaderPolicy {
    /// Number of leaders this policy yields per node.
    pub fn leaders_per_node(&self, spec: &ClusterSpec) -> u32 {
        match *self {
            LeaderPolicy::PerNode(l) => l,
            LeaderPolicy::NodeLevel => 1,
            LeaderPolicy::SocketLevel => spec.sockets_per_node.min(spec.ppn),
        }
    }

    /// Validate the policy against a cluster spec.
    pub fn validate(&self, spec: &ClusterSpec) -> Result<(), TopologyError> {
        let l = self.leaders_per_node(spec);
        if l == 0 {
            return Err(TopologyError::ZeroDimension("leaders"));
        }
        if l > spec.ppn {
            return Err(TopologyError::TooManyLeaders {
                leaders: l,
                ppn: spec.ppn,
            });
        }
        Ok(())
    }

    /// The local ranks acting as leaders on any node (identical across
    /// nodes), ordered by leader index.
    pub fn local_leaders(&self, spec: &ClusterSpec) -> Vec<LocalRank> {
        match *self {
            LeaderPolicy::PerNode(l) => {
                let l = l.min(spec.ppn).max(1);
                // Spread leaders evenly: leader j is local rank
                // floor(j * ppn / l). With block socket binding this also
                // spreads leaders across sockets.
                (0..l).map(|j| LocalRank(j * spec.ppn / l)).collect()
            }
            LeaderPolicy::NodeLevel => vec![LocalRank(0)],
            LeaderPolicy::SocketLevel => {
                let mut out = Vec::new();
                for s in 0..spec.sockets_per_node {
                    if let Some(&first) = spec.ranks_on_socket(SocketId(s)).first() {
                        out.push(first);
                    }
                }
                out
            }
        }
    }

    /// The global leader ranks on a given node.
    pub fn leaders_of_node(&self, spec: &ClusterSpec, node: NodeId) -> Vec<Rank> {
        let map = RankMap::block(spec);
        self.local_leaders(spec)
            .into_iter()
            .map(|l| map.rank_at(node, l))
            .collect()
    }

    /// Build the full leader set for a rank map.
    pub fn build(&self, map: &RankMap) -> Result<LeaderSet, TopologyError> {
        self.validate(map.spec())?;
        Ok(LeaderSet {
            locals: self.local_leaders(map.spec()),
            map: map.clone(),
        })
    }
}

/// The resolved set of leaders for a job: which local ranks lead, and the
/// "leader communicators" connecting same-index leaders across nodes.
#[derive(Debug, Clone)]
pub struct LeaderSet {
    locals: Vec<LocalRank>,
    map: RankMap,
}

impl LeaderSet {
    /// Number of leaders per node (`l`).
    #[inline]
    pub fn leaders_per_node(&self) -> u32 {
        self.locals.len() as u32
    }

    /// The local ranks that lead (same on every node).
    #[inline]
    pub fn local_leaders(&self) -> &[LocalRank] {
        &self.locals
    }

    /// Leader index of a rank, if it is a leader.
    pub fn leader_index(&self, rank: Rank) -> Option<u32> {
        let local = self.map.local_of(rank);
        self.locals
            .iter()
            .position(|&l| l == local)
            .map(|i| i as u32)
    }

    /// True if the rank is a leader on its node.
    #[inline]
    pub fn is_leader(&self, rank: Rank) -> bool {
        self.leader_index(rank).is_some()
    }

    /// The global rank of leader `j` on `node`.
    pub fn leader_rank(&self, node: NodeId, j: u32) -> Rank {
        self.map.rank_at(node, self.locals[j as usize])
    }

    /// The "leader communicator" for leader index `j`: the global ranks of
    /// the `j`-th leader on every node, ordered by node. These are the
    /// participants of the purely inter-node allreduce in DPML phase 3.
    pub fn leader_comm(&self, j: u32) -> Vec<Rank> {
        (0..self.map.spec().num_nodes)
            .map(|n| self.leader_rank(NodeId(n), j))
            .collect()
    }

    /// For a given node, map each local rank to the leader index responsible
    /// for it in single-leader-per-group designs (e.g. socket-level SHArP:
    /// each rank is served by its socket's leader). Under `PerNode`, ranks
    /// are assigned to the leader with the same or nearest-lower local rank.
    pub fn leader_for_local(&self, spec: &ClusterSpec, local: LocalRank) -> u32 {
        // Find the last leader whose local rank is <= local; wrap to 0.
        let mut best = 0u32;
        for (j, &ll) in self.locals.iter().enumerate() {
            if ll.0 <= local.0 {
                best = j as u32;
            }
        }
        let _ = spec;
        best
    }

    /// The rank map this leader set was built over.
    #[inline]
    pub fn rank_map(&self) -> &RankMap {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec28() -> ClusterSpec {
        ClusterSpec::new(16, 2, 14, 28).unwrap()
    }

    #[test]
    fn per_node_leaders_are_strided() {
        let spec = spec28();
        let locals = LeaderPolicy::PerNode(4).local_leaders(&spec);
        assert_eq!(
            locals,
            vec![LocalRank(0), LocalRank(7), LocalRank(14), LocalRank(21)]
        );
    }

    #[test]
    fn per_node_leaders_spread_across_sockets() {
        let spec = spec28();
        let locals = LeaderPolicy::PerNode(2).local_leaders(&spec);
        assert_eq!(spec.socket_of(locals[0]), SocketId(0));
        assert_eq!(spec.socket_of(locals[1]), SocketId(1));
    }

    #[test]
    fn node_level_is_rank_zero() {
        let spec = spec28();
        assert_eq!(
            LeaderPolicy::NodeLevel.local_leaders(&spec),
            vec![LocalRank(0)]
        );
    }

    #[test]
    fn socket_level_has_one_per_socket() {
        let spec = spec28();
        let locals = LeaderPolicy::SocketLevel.local_leaders(&spec);
        assert_eq!(locals, vec![LocalRank(0), LocalRank(14)]);
    }

    #[test]
    fn socket_level_single_ppn_collapses_to_one() {
        let spec = ClusterSpec::new(16, 2, 14, 1).unwrap();
        let locals = LeaderPolicy::SocketLevel.local_leaders(&spec);
        assert_eq!(locals, vec![LocalRank(0)]);
        assert_eq!(LeaderPolicy::SocketLevel.leaders_per_node(&spec), 1);
    }

    #[test]
    fn too_many_leaders_rejected() {
        let spec = ClusterSpec::new(2, 1, 4, 4).unwrap();
        assert!(LeaderPolicy::PerNode(5).validate(&spec).is_err());
        assert!(LeaderPolicy::PerNode(4).validate(&spec).is_ok());
    }

    #[test]
    fn leader_comm_spans_all_nodes() {
        let spec = spec28();
        let map = RankMap::block(&spec);
        let set = LeaderPolicy::PerNode(4).build(&map).unwrap();
        let comm = set.leader_comm(2);
        assert_eq!(comm.len(), 16);
        for (n, r) in comm.iter().enumerate() {
            assert_eq!(map.node_of(*r), NodeId(n as u32));
            assert_eq!(set.leader_index(*r), Some(2));
        }
    }

    #[test]
    fn leader_index_none_for_non_leaders() {
        let spec = spec28();
        let map = RankMap::block(&spec);
        let set = LeaderPolicy::PerNode(4).build(&map).unwrap();
        assert_eq!(set.leader_index(Rank(1)), None);
        assert!(set.is_leader(Rank(0)));
        assert!(set.is_leader(Rank(7)));
    }

    #[test]
    fn leaders_per_node_all_leaders() {
        let spec = ClusterSpec::new(4, 2, 4, 8).unwrap();
        let map = RankMap::block(&spec);
        let set = LeaderPolicy::PerNode(8).build(&map).unwrap();
        assert_eq!(set.leaders_per_node(), 8);
        for r in map.ranks_on_node(NodeId(1)) {
            assert!(set.is_leader(r));
        }
    }

    #[test]
    fn leader_for_local_picks_nearest_lower() {
        let spec = spec28();
        let map = RankMap::block(&spec);
        let set = LeaderPolicy::SocketLevel.build(&map).unwrap();
        assert_eq!(set.leader_for_local(&spec, LocalRank(3)), 0);
        assert_eq!(set.leader_for_local(&spec, LocalRank(14)), 1);
        assert_eq!(set.leader_for_local(&spec, LocalRank(27)), 1);
    }
}
