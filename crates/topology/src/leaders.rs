//! Leader selection for hierarchical and multi-leader collectives.
//!
//! The DPML design (paper Section 4.1) designates `l` processes per node as
//! leaders which share reduction work and drive concurrent inter-node
//! transfers. The SHArP designs (Section 4.3) instead use one leader per node
//! or one per socket. This module encodes those policies.

use crate::cluster::ClusterSpec;
use crate::ids::{LocalRank, NodeId, Rank, SocketId};
use crate::rank_map::RankMap;
use crate::TopologyError;
use serde::{Deserialize, Serialize};

/// A policy choosing which local ranks act as leaders on each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaderPolicy {
    /// `l` leaders per node, spread evenly across the local ranks (and hence
    /// across sockets under block binding). DPML with `l = 1` degenerates to
    /// the classic single-leader hierarchical design.
    PerNode(u32),
    /// Exactly one leader per node (local rank 0) — the SHArP
    /// "node-level leader" design.
    NodeLevel,
    /// One leader per socket (the first local rank bound to each socket) —
    /// the SHArP "socket-level leader" design, which avoids cross-socket
    /// gather/broadcast traffic and keeps the SHArP group small.
    SocketLevel,
}

impl LeaderPolicy {
    /// Number of leaders this policy yields per node.
    pub fn leaders_per_node(&self, spec: &ClusterSpec) -> u32 {
        match *self {
            LeaderPolicy::PerNode(l) => l,
            LeaderPolicy::NodeLevel => 1,
            LeaderPolicy::SocketLevel => spec.sockets_per_node.min(spec.ppn),
        }
    }

    /// Validate the policy against a cluster spec.
    pub fn validate(&self, spec: &ClusterSpec) -> Result<(), TopologyError> {
        let l = self.leaders_per_node(spec);
        if l == 0 {
            return Err(TopologyError::ZeroDimension("leaders"));
        }
        if l > spec.ppn {
            return Err(TopologyError::TooManyLeaders {
                leaders: l,
                ppn: spec.ppn,
            });
        }
        Ok(())
    }

    /// The local ranks acting as leaders on any node (identical across
    /// nodes), ordered by leader index.
    pub fn local_leaders(&self, spec: &ClusterSpec) -> Vec<LocalRank> {
        match *self {
            LeaderPolicy::PerNode(l) => {
                let l = l.min(spec.ppn).max(1);
                // Spread leaders evenly: leader j is local rank
                // floor(j * ppn / l). With block socket binding this also
                // spreads leaders across sockets.
                (0..l).map(|j| LocalRank(j * spec.ppn / l)).collect()
            }
            LeaderPolicy::NodeLevel => vec![LocalRank(0)],
            LeaderPolicy::SocketLevel => {
                let mut out = Vec::new();
                for s in 0..spec.sockets_per_node {
                    if let Some(&first) = spec.ranks_on_socket(SocketId(s)).first() {
                        out.push(first);
                    }
                }
                out
            }
        }
    }

    /// The global leader ranks on a given node.
    pub fn leaders_of_node(&self, spec: &ClusterSpec, node: NodeId) -> Vec<Rank> {
        let map = RankMap::block(spec);
        self.local_leaders(spec)
            .into_iter()
            .map(|l| map.rank_at(node, l))
            .collect()
    }

    /// Build the full leader set for a rank map.
    pub fn build(&self, map: &RankMap) -> Result<LeaderSet, TopologyError> {
        self.validate(map.spec())?;
        Ok(LeaderSet {
            locals: self.local_leaders(map.spec()),
            map: map.clone(),
            overrides: Vec::new(),
        })
    }
}

/// The resolved set of leaders for a job: which local ranks lead, and the
/// "leader communicators" connecting same-index leaders across nodes.
#[derive(Debug, Clone)]
pub struct LeaderSet {
    locals: Vec<LocalRank>,
    map: RankMap,
    /// Per-node re-elections from [`LeaderSet::heal`]: `(node, leader
    /// index, replacement local rank)`. Empty on a freshly built set;
    /// healing breaks the cross-node symmetry of `locals`, so lookups
    /// consult these first. Later entries win.
    overrides: Vec<(NodeId, u32, LocalRank)>,
}

impl LeaderSet {
    /// Number of leaders per node (`l`).
    #[inline]
    pub fn leaders_per_node(&self) -> u32 {
        self.locals.len() as u32
    }

    /// The local ranks that lead (same on every node).
    #[inline]
    pub fn local_leaders(&self) -> &[LocalRank] {
        &self.locals
    }

    /// Leader index of a rank, if it is a leader. A rank displaced by
    /// [`LeaderSet::heal`] is no longer a leader; a rank serving two
    /// indices after redistribution reports the lowest.
    pub fn leader_index(&self, rank: Rank) -> Option<u32> {
        if self.overrides.is_empty() {
            // Fast path: symmetric set, same locals on every node.
            let local = self.map.local_of(rank);
            return self
                .locals
                .iter()
                .position(|&l| l == local)
                .map(|i| i as u32);
        }
        let node = self.map.node_of(rank);
        (0..self.leaders_per_node()).find(|&j| self.leader_rank(node, j) == rank)
    }

    /// True if the rank is a leader on its node.
    #[inline]
    pub fn is_leader(&self, rank: Rank) -> bool {
        self.leader_index(rank).is_some()
    }

    /// The global rank of leader `j` on `node`, honoring any re-election
    /// overrides for that node.
    pub fn leader_rank(&self, node: NodeId, j: u32) -> Rank {
        let local = self
            .overrides
            .iter()
            .rev()
            .find(|(n, jj, _)| *n == node && *jj == j)
            .map(|(_, _, l)| *l)
            .unwrap_or(self.locals[j as usize]);
        self.map.rank_at(node, local)
    }

    /// Re-elect leaders after fail-stop deaths: for each dead rank that
    /// held a leader index, promote the first surviving local rank on its
    /// node that is not already serving an index; if every survivor is
    /// already a leader, redistribute the index onto one of them (double
    /// duty). The original set is untouched — healing returns a new set
    /// whose `leader_comm` / `leader_rank` views route around the dead.
    ///
    /// Panics if a dead leader's node has no surviving ranks at all:
    /// whole-node loss also loses the node's shared-memory state, which no
    /// leader re-election can recover — callers must treat that case as a
    /// cold restart before asking for a heal.
    pub fn heal(&self, dead: &[Rank]) -> LeaderSet {
        let mut healed = self.clone();
        let ppn = self.map.spec().ppn;
        for &d in dead {
            let Some(j) = healed.leader_index(d) else {
                continue; // non-leader deaths need no re-election
            };
            let node = healed.map.node_of(d);
            let serving: Vec<LocalRank> = (0..healed.leaders_per_node())
                .map(|jj| healed.map.local_of(healed.leader_rank(node, jj)))
                .collect();
            let alive = |l: LocalRank| !dead.contains(&healed.map.rank_at(node, l));
            let replacement = (0..ppn)
                .map(LocalRank)
                .find(|&l| alive(l) && !serving.contains(&l))
                .or_else(|| (0..ppn).map(LocalRank).find(|&l| alive(l)));
            let Some(l) = replacement else {
                panic!(
                    "node {} has no survivors to take over leader index {j} \
                     (whole-node loss requires a cold restart, not a heal)",
                    node.0
                );
            };
            healed.overrides.push((node, j, l));
        }
        healed
    }

    /// The re-elections applied by [`LeaderSet::heal`], in order:
    /// `(node, leader index, replacement local rank)`.
    #[inline]
    pub fn replacements(&self) -> &[(NodeId, u32, LocalRank)] {
        &self.overrides
    }

    /// The "leader communicator" for leader index `j`: the global ranks of
    /// the `j`-th leader on every node, ordered by node. These are the
    /// participants of the purely inter-node allreduce in DPML phase 3.
    pub fn leader_comm(&self, j: u32) -> Vec<Rank> {
        (0..self.map.spec().num_nodes)
            .map(|n| self.leader_rank(NodeId(n), j))
            .collect()
    }

    /// For a given node, map each local rank to the leader index responsible
    /// for it in single-leader-per-group designs (e.g. socket-level SHArP:
    /// each rank is served by its socket's leader). Under `PerNode`, ranks
    /// are assigned to the leader with the same or nearest-lower local rank.
    pub fn leader_for_local(&self, spec: &ClusterSpec, local: LocalRank) -> u32 {
        // Find the last leader whose local rank is <= local; wrap to 0.
        let mut best = 0u32;
        for (j, &ll) in self.locals.iter().enumerate() {
            if ll.0 <= local.0 {
                best = j as u32;
            }
        }
        let _ = spec;
        best
    }

    /// The rank map this leader set was built over.
    #[inline]
    pub fn rank_map(&self) -> &RankMap {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec28() -> ClusterSpec {
        ClusterSpec::new(16, 2, 14, 28).unwrap()
    }

    #[test]
    fn per_node_leaders_are_strided() {
        let spec = spec28();
        let locals = LeaderPolicy::PerNode(4).local_leaders(&spec);
        assert_eq!(
            locals,
            vec![LocalRank(0), LocalRank(7), LocalRank(14), LocalRank(21)]
        );
    }

    #[test]
    fn per_node_leaders_spread_across_sockets() {
        let spec = spec28();
        let locals = LeaderPolicy::PerNode(2).local_leaders(&spec);
        assert_eq!(spec.socket_of(locals[0]), SocketId(0));
        assert_eq!(spec.socket_of(locals[1]), SocketId(1));
    }

    #[test]
    fn node_level_is_rank_zero() {
        let spec = spec28();
        assert_eq!(
            LeaderPolicy::NodeLevel.local_leaders(&spec),
            vec![LocalRank(0)]
        );
    }

    #[test]
    fn socket_level_has_one_per_socket() {
        let spec = spec28();
        let locals = LeaderPolicy::SocketLevel.local_leaders(&spec);
        assert_eq!(locals, vec![LocalRank(0), LocalRank(14)]);
    }

    #[test]
    fn socket_level_single_ppn_collapses_to_one() {
        let spec = ClusterSpec::new(16, 2, 14, 1).unwrap();
        let locals = LeaderPolicy::SocketLevel.local_leaders(&spec);
        assert_eq!(locals, vec![LocalRank(0)]);
        assert_eq!(LeaderPolicy::SocketLevel.leaders_per_node(&spec), 1);
    }

    #[test]
    fn too_many_leaders_rejected() {
        let spec = ClusterSpec::new(2, 1, 4, 4).unwrap();
        assert!(LeaderPolicy::PerNode(5).validate(&spec).is_err());
        assert!(LeaderPolicy::PerNode(4).validate(&spec).is_ok());
    }

    #[test]
    fn leader_comm_spans_all_nodes() {
        let spec = spec28();
        let map = RankMap::block(&spec);
        let set = LeaderPolicy::PerNode(4).build(&map).unwrap();
        let comm = set.leader_comm(2);
        assert_eq!(comm.len(), 16);
        for (n, r) in comm.iter().enumerate() {
            assert_eq!(map.node_of(*r), NodeId(n as u32));
            assert_eq!(set.leader_index(*r), Some(2));
        }
    }

    #[test]
    fn leader_index_none_for_non_leaders() {
        let spec = spec28();
        let map = RankMap::block(&spec);
        let set = LeaderPolicy::PerNode(4).build(&map).unwrap();
        assert_eq!(set.leader_index(Rank(1)), None);
        assert!(set.is_leader(Rank(0)));
        assert!(set.is_leader(Rank(7)));
    }

    #[test]
    fn leaders_per_node_all_leaders() {
        let spec = ClusterSpec::new(4, 2, 4, 8).unwrap();
        let map = RankMap::block(&spec);
        let set = LeaderPolicy::PerNode(8).build(&map).unwrap();
        assert_eq!(set.leaders_per_node(), 8);
        for r in map.ranks_on_node(NodeId(1)) {
            assert!(set.is_leader(r));
        }
    }

    #[test]
    fn heal_promotes_surviving_non_leader() {
        let spec = ClusterSpec::new(4, 2, 4, 8).unwrap();
        let map = RankMap::block(&spec);
        let set = LeaderPolicy::PerNode(2).build(&map).unwrap();
        // Leaders on node 1 are locals 0 and 4 → ranks 8 and 12.
        let dead = Rank(12);
        assert_eq!(set.leader_index(dead), Some(1));
        let healed = set.heal(&[dead]);
        // The dead rank is no longer a leader; someone on node 1 took
        // index 1; other nodes are untouched.
        assert_eq!(healed.leader_index(dead), None);
        let new_leader = healed.leader_rank(NodeId(1), 1);
        assert_ne!(new_leader, dead);
        assert_eq!(map.node_of(new_leader), NodeId(1));
        assert_eq!(healed.leader_index(new_leader), Some(1));
        assert!(!set.is_leader(new_leader), "promotion, not reuse");
        for n in [0u32, 2, 3] {
            assert_eq!(
                healed.leader_rank(NodeId(n), 1),
                set.leader_rank(NodeId(n), 1)
            );
        }
        // The healed leader comm for index 1 spans all nodes and routes
        // around the dead rank.
        let comm = healed.leader_comm(1);
        assert_eq!(comm.len(), 4);
        assert!(!comm.contains(&dead));
        assert_eq!(healed.replacements().len(), 1);
        // The original set is unchanged.
        assert_eq!(set.leader_rank(NodeId(1), 1), dead);
    }

    #[test]
    fn heal_redistributes_when_all_survivors_lead() {
        // ppn == leaders: every local is a leader, so a death forces
        // double duty on a surviving leader of the same node.
        let spec = ClusterSpec::new(2, 1, 2, 2).unwrap();
        let map = RankMap::block(&spec);
        let set = LeaderPolicy::PerNode(2).build(&map).unwrap();
        let dead = Rank(1); // node 0, leader index 1
        let healed = set.heal(&[dead]);
        let replacement = healed.leader_rank(NodeId(0), 1);
        assert_eq!(replacement, Rank(0), "surviving leader takes index 1");
        // Rank 0 now serves both indices; leader_index reports the lowest.
        assert_eq!(healed.leader_index(Rank(0)), Some(0));
        assert_eq!(healed.leader_index(dead), None);
        assert!(healed.leader_comm(1).iter().all(|r| *r != dead));
    }

    #[test]
    fn heal_ignores_non_leader_deaths() {
        let spec = spec28();
        let map = RankMap::block(&spec);
        let set = LeaderPolicy::PerNode(4).build(&map).unwrap();
        let healed = set.heal(&[Rank(1)]); // local 1 is not a leader
        assert!(healed.replacements().is_empty());
        for j in 0..4 {
            assert_eq!(
                healed.leader_rank(NodeId(0), j),
                set.leader_rank(NodeId(0), j)
            );
        }
    }

    #[test]
    #[should_panic(expected = "no survivors")]
    fn heal_panics_on_whole_node_loss() {
        let spec = ClusterSpec::new(2, 1, 2, 2).unwrap();
        let map = RankMap::block(&spec);
        let set = LeaderPolicy::PerNode(1).build(&map).unwrap();
        let _ = set.heal(&[Rank(0), Rank(1)]); // all of node 0
    }

    #[test]
    fn leader_for_local_picks_nearest_lower() {
        let spec = spec28();
        let map = RankMap::block(&spec);
        let set = LeaderPolicy::SocketLevel.build(&map).unwrap();
        assert_eq!(set.leader_for_local(&spec, LocalRank(3)), 0);
        assert_eq!(set.leader_for_local(&spec, LocalRank(14)), 1);
        assert_eq!(set.leader_for_local(&spec, LocalRank(27)), 1);
    }
}
