//! Mapping of global ranks onto (node, local rank) pairs.

use crate::cluster::ClusterSpec;
use crate::ids::{LocalRank, NodeId, Rank, SocketId};
use serde::{Deserialize, Serialize};

/// How consecutive global ranks are laid out across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Ranks `0..ppn` on node 0, `ppn..2*ppn` on node 1, ... (the default
    /// `mpirun` block mapping; all paper experiments use this).
    Block,
    /// Rank `r` on node `r % num_nodes` (round-robin / cyclic mapping).
    Cyclic,
}

/// A concrete rank-to-node mapping for a cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankMap {
    spec: ClusterSpec,
    placement: Placement,
}

impl RankMap {
    /// Block placement (the paper's configuration).
    pub fn block(spec: &ClusterSpec) -> Self {
        RankMap {
            spec: *spec,
            placement: Placement::Block,
        }
    }

    /// Cyclic placement.
    pub fn cyclic(spec: &ClusterSpec) -> Self {
        RankMap {
            spec: *spec,
            placement: Placement::Cyclic,
        }
    }

    /// The cluster this map is defined over.
    #[inline]
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The placement policy in use.
    #[inline]
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Total number of ranks.
    #[inline]
    pub fn world_size(&self) -> u32 {
        self.spec.world_size()
    }

    /// The node hosting a global rank.
    #[inline]
    pub fn node_of(&self, rank: Rank) -> NodeId {
        debug_assert!(rank.0 < self.world_size());
        match self.placement {
            Placement::Block => NodeId(rank.0 / self.spec.ppn),
            Placement::Cyclic => NodeId(rank.0 % self.spec.num_nodes),
        }
    }

    /// The local rank of a global rank within its node.
    #[inline]
    pub fn local_of(&self, rank: Rank) -> LocalRank {
        debug_assert!(rank.0 < self.world_size());
        match self.placement {
            Placement::Block => LocalRank(rank.0 % self.spec.ppn),
            Placement::Cyclic => LocalRank(rank.0 / self.spec.num_nodes),
        }
    }

    /// The socket hosting a global rank.
    #[inline]
    pub fn socket_of(&self, rank: Rank) -> SocketId {
        self.spec.socket_of(self.local_of(rank))
    }

    /// The global rank at `(node, local)`.
    #[inline]
    pub fn rank_at(&self, node: NodeId, local: LocalRank) -> Rank {
        debug_assert!(node.0 < self.spec.num_nodes);
        debug_assert!(local.0 < self.spec.ppn);
        match self.placement {
            Placement::Block => Rank(node.0 * self.spec.ppn + local.0),
            Placement::Cyclic => Rank(local.0 * self.spec.num_nodes + node.0),
        }
    }

    /// All global ranks on a node, ordered by local rank.
    pub fn ranks_on_node(&self, node: NodeId) -> Vec<Rank> {
        (0..self.spec.ppn)
            .map(|l| self.rank_at(node, LocalRank(l)))
            .collect()
    }

    /// True if two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// True if two ranks share both node and socket.
    #[inline]
    pub fn same_socket(&self, a: Rank, b: Rank) -> bool {
        self.same_node(a, b) && self.socket_of(a) == self.socket_of(b)
    }

    /// Iterator over all ranks in the world.
    pub fn all_ranks(&self) -> impl Iterator<Item = Rank> {
        (0..self.world_size()).map(Rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::new(4, 2, 4, 8).unwrap()
    }

    #[test]
    fn block_mapping_round_trips() {
        let m = RankMap::block(&spec());
        for r in m.all_ranks() {
            let (n, l) = (m.node_of(r), m.local_of(r));
            assert_eq!(m.rank_at(n, l), r);
        }
    }

    #[test]
    fn cyclic_mapping_round_trips() {
        let m = RankMap::cyclic(&spec());
        for r in m.all_ranks() {
            let (n, l) = (m.node_of(r), m.local_of(r));
            assert_eq!(m.rank_at(n, l), r);
        }
    }

    #[test]
    fn block_packs_consecutive_ranks() {
        let m = RankMap::block(&spec());
        assert_eq!(m.node_of(Rank(0)), NodeId(0));
        assert_eq!(m.node_of(Rank(7)), NodeId(0));
        assert_eq!(m.node_of(Rank(8)), NodeId(1));
        assert!(m.same_node(Rank(0), Rank(7)));
        assert!(!m.same_node(Rank(7), Rank(8)));
    }

    #[test]
    fn cyclic_spreads_consecutive_ranks() {
        let m = RankMap::cyclic(&spec());
        assert_eq!(m.node_of(Rank(0)), NodeId(0));
        assert_eq!(m.node_of(Rank(1)), NodeId(1));
        assert_eq!(m.node_of(Rank(4)), NodeId(0));
        assert_eq!(m.local_of(Rank(4)), LocalRank(1));
    }

    #[test]
    fn ranks_on_node_has_ppn_entries() {
        let m = RankMap::block(&spec());
        let rs = m.ranks_on_node(NodeId(2));
        assert_eq!(rs.len(), 8);
        assert_eq!(rs[0], Rank(16));
        assert_eq!(rs[7], Rank(23));
    }

    #[test]
    fn same_socket_respects_block_binding() {
        let m = RankMap::block(&spec());
        // ppn=8 over 2 sockets: locals 0..4 socket 0, 4..8 socket 1.
        assert!(m.same_socket(Rank(0), Rank(3)));
        assert!(!m.same_socket(Rank(3), Rank(4)));
    }

    #[test]
    fn every_node_partition_is_disjoint_and_complete() {
        let m = RankMap::cyclic(&spec());
        let mut seen = vec![false; m.world_size() as usize];
        for n in 0..4u32 {
            for r in m.ranks_on_node(NodeId(n)) {
                assert!(!seen[r.index()], "rank {r} appears twice");
                seen[r.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
