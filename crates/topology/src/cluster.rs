//! Cluster shape: nodes, sockets, cores, and processes per node.

use crate::ids::{LocalRank, SocketId};
use crate::TopologyError;
use serde::{Deserialize, Serialize};

/// The static shape of a cluster: how many nodes it has and how each node is
/// organized internally.
///
/// This mirrors the four evaluation clusters of the paper (Section 6.1):
/// dual-socket 14-core Xeons at 28 ppn (Clusters A–C) and single-socket
/// 68-core KNL at up to 64 ppn (Cluster D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of compute nodes (`h` in the cost model).
    pub num_nodes: u32,
    /// CPU sockets per node.
    pub sockets_per_node: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Processes launched per node (`ppn`). Full subscription means
    /// `ppn == sockets_per_node * cores_per_socket`.
    pub ppn: u32,
}

impl ClusterSpec {
    /// Create a cluster spec, validating all dimensions.
    pub fn new(
        num_nodes: u32,
        sockets_per_node: u32,
        cores_per_socket: u32,
        ppn: u32,
    ) -> Result<Self, TopologyError> {
        if num_nodes == 0 {
            return Err(TopologyError::ZeroDimension("num_nodes"));
        }
        if sockets_per_node == 0 {
            return Err(TopologyError::ZeroDimension("sockets_per_node"));
        }
        if cores_per_socket == 0 {
            return Err(TopologyError::ZeroDimension("cores_per_socket"));
        }
        if ppn == 0 {
            return Err(TopologyError::ZeroDimension("ppn"));
        }
        let cores = sockets_per_node * cores_per_socket;
        if ppn > cores {
            return Err(TopologyError::Oversubscribed { ppn, cores });
        }
        Ok(ClusterSpec {
            num_nodes,
            sockets_per_node,
            cores_per_socket,
            ppn,
        })
    }

    /// Total number of processes in the job (`p = h * ppn`).
    #[inline]
    pub fn world_size(&self) -> u32 {
        self.num_nodes * self.ppn
    }

    /// Total cores per node.
    #[inline]
    pub fn cores_per_node(&self) -> u32 {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Which socket a local rank runs on.
    ///
    /// Uses the block binding common on HPC systems (and assumed by the
    /// paper's socket-leader design): the first `ppn / sockets` local ranks
    /// are bound to socket 0, the next group to socket 1, and so on. When
    /// `ppn` does not divide evenly the earlier sockets get the extra ranks.
    pub fn socket_of(&self, local: LocalRank) -> SocketId {
        debug_assert!(local.0 < self.ppn, "local rank out of range");
        let s = self.sockets_per_node;
        let base = self.ppn / s;
        let extra = self.ppn % s;
        // First `extra` sockets host (base + 1) ranks each.
        let boundary = extra * (base + 1);
        if local.0 < boundary {
            SocketId(local.0 / (base + 1))
        } else {
            match (local.0 - boundary).checked_div(base) {
                Some(q) => SocketId(extra + q),
                // base == 0: more sockets than ranks, one rank per socket.
                None => SocketId(local.0),
            }
        }
    }

    /// Local ranks bound to a given socket, in increasing order.
    pub fn ranks_on_socket(&self, socket: SocketId) -> Vec<LocalRank> {
        (0..self.ppn)
            .map(LocalRank)
            .filter(|&lr| self.socket_of(lr) == socket)
            .collect()
    }

    /// True when every core hosts exactly one process.
    #[inline]
    pub fn is_fully_subscribed(&self) -> bool {
        self.ppn == self.cores_per_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dimensions() {
        assert!(ClusterSpec::new(0, 2, 14, 28).is_err());
        assert!(ClusterSpec::new(4, 0, 14, 28).is_err());
        assert!(ClusterSpec::new(4, 2, 0, 28).is_err());
        assert!(ClusterSpec::new(4, 2, 14, 0).is_err());
    }

    #[test]
    fn rejects_oversubscription() {
        let err = ClusterSpec::new(4, 2, 14, 29).unwrap_err();
        assert_eq!(err, TopologyError::Oversubscribed { ppn: 29, cores: 28 });
    }

    #[test]
    fn world_size_is_nodes_times_ppn() {
        let c = ClusterSpec::new(64, 2, 14, 28).unwrap();
        assert_eq!(c.world_size(), 1792);
        assert!(c.is_fully_subscribed());
    }

    #[test]
    fn socket_binding_is_block() {
        let c = ClusterSpec::new(1, 2, 14, 28).unwrap();
        assert_eq!(c.socket_of(LocalRank(0)), SocketId(0));
        assert_eq!(c.socket_of(LocalRank(13)), SocketId(0));
        assert_eq!(c.socket_of(LocalRank(14)), SocketId(1));
        assert_eq!(c.socket_of(LocalRank(27)), SocketId(1));
    }

    #[test]
    fn socket_binding_uneven_ppn() {
        // 5 ranks over 2 sockets: 3 on socket 0, 2 on socket 1.
        let c = ClusterSpec::new(1, 2, 14, 5).unwrap();
        let s: Vec<u32> = (0..5).map(|i| c.socket_of(LocalRank(i)).0).collect();
        assert_eq!(s, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn socket_binding_single_rank_per_node() {
        let c = ClusterSpec::new(16, 2, 14, 1).unwrap();
        assert_eq!(c.socket_of(LocalRank(0)), SocketId(0));
    }

    #[test]
    fn ranks_on_socket_partitions_everyone() {
        let c = ClusterSpec::new(1, 2, 14, 27).unwrap();
        let s0 = c.ranks_on_socket(SocketId(0));
        let s1 = c.ranks_on_socket(SocketId(1));
        assert_eq!(s0.len() + s1.len(), 27);
        // Uneven split gives the extra rank to socket 0.
        assert_eq!(s0.len(), 14);
        assert_eq!(s1.len(), 13);
    }

    #[test]
    fn knl_single_socket() {
        let c = ClusterSpec::new(32, 1, 68, 32).unwrap();
        assert_eq!(c.world_size(), 1024);
        assert_eq!(c.socket_of(LocalRank(31)), SocketId(0));
        assert!(!c.is_fully_subscribed());
    }
}
