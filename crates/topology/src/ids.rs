//! Strongly-typed identifiers for ranks, nodes, sockets, and switches.
//!
//! All identifiers are thin wrappers around `u32`, ordered and hashable so
//! they can key maps in the engine. `From<u32>`/`From<usize>` conversions
//! keep call sites terse while preventing accidental cross-kind mixups.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The identifier as a `usize` for indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// A global process rank (MPI `COMM_WORLD` rank equivalent).
    Rank
);
id_type!(
    /// A compute node within the cluster.
    NodeId
);
id_type!(
    /// A process's rank *within its node* (0..ppn).
    LocalRank
);
id_type!(
    /// A CPU socket within a node.
    SocketId
);
id_type!(
    /// A switch in the fabric (leaf or core).
    SwitchId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_order() {
        let a = Rank::from(3u32);
        let b = Rank::from(7usize);
        assert!(a < b);
        assert_eq!(a.index(), 3);
        assert_eq!(format!("{a}"), "Rank3");
    }

    #[test]
    fn distinct_kinds_are_distinct_types() {
        // Compile-time property; just exercise construction.
        let n = NodeId(1);
        let s = SocketId(1);
        assert_eq!(n.0, s.0);
    }

    #[test]
    fn ids_hash_as_map_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<NodeId, u32> = HashMap::new();
        m.insert(NodeId(4), 42);
        assert_eq!(m[&NodeId(4)], 42);
    }
}
