//! Cluster topology for the DPML reproduction.
//!
//! This crate describes the *shape* of an HPC system: compute nodes, sockets,
//! the mapping of MPI-style ranks onto nodes, the switch fabric connecting
//! nodes, and the leader-selection policies used by hierarchical and
//! multi-leader collectives (paper Sections 2.1, 4.1, 4.3).
//!
//! It is intentionally free of any timing information — hardware *speeds*
//! live in `dpml-fabric`, and the discrete-event execution lives in
//! `dpml-engine`.
//!
//! # Example
//!
//! ```
//! use dpml_topology::{ClusterSpec, LeaderPolicy, NodeId, RankMap};
//!
//! // Cluster A of the paper: 16 nodes x 2 sockets x 14 cores, 28 ppn.
//! let spec = ClusterSpec::new(16, 2, 14, 28).unwrap();
//! let map = RankMap::block(&spec);
//! assert_eq!(map.world_size(), 448);
//!
//! let leaders = LeaderPolicy::PerNode(4).leaders_of_node(&spec, NodeId(0));
//! assert_eq!(leaders.len(), 4);
//! ```

pub mod cluster;
pub mod ids;
pub mod leaders;
pub mod rank_map;
pub mod switch;

pub use cluster::ClusterSpec;
pub use ids::{LocalRank, NodeId, Rank, SocketId, SwitchId};
pub use leaders::{LeaderPolicy, LeaderSet};
pub use rank_map::{Placement, RankMap};
pub use switch::{SwitchTree, SwitchTreeSpec};

/// Errors produced while constructing topology objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A dimension (nodes, sockets, cores, ppn) was zero.
    ZeroDimension(&'static str),
    /// Requested more processes per node than hardware threads available.
    Oversubscribed { ppn: u32, cores: u32 },
    /// Requested more leaders than processes per node.
    TooManyLeaders { leaders: u32, ppn: u32 },
    /// A rank, node, or switch index was out of range.
    OutOfRange {
        what: &'static str,
        index: u64,
        limit: u64,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::ZeroDimension(d) => {
                write!(f, "topology dimension `{d}` must be non-zero")
            }
            TopologyError::Oversubscribed { ppn, cores } => {
                write!(f, "ppn {ppn} oversubscribes {cores} cores per node")
            }
            TopologyError::TooManyLeaders { leaders, ppn } => {
                write!(
                    f,
                    "{leaders} leaders requested but only {ppn} processes per node"
                )
            }
            TopologyError::OutOfRange { what, index, limit } => {
                write!(f, "{what} index {index} out of range (limit {limit})")
            }
        }
    }
}

impl std::error::Error for TopologyError {}
