//! Switch fabric: a two-level fat tree of leaf and core switches.
//!
//! Cluster D of the paper is "a fat tree topology of eight core switches and
//! 320 leaf switches with 5/4 oversubscription"; Clusters A–C use similar
//! two-level EDR/Omni-Path fabrics. The SHArP aggregation trees of
//! `dpml-sharp` are built on top of this structure (interior vertices of the
//! reduction tree are switches).

use crate::ids::{NodeId, SwitchId};
use crate::TopologyError;
use serde::{Deserialize, Serialize};

/// Parameters of a two-level fat tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchTreeSpec {
    /// Compute nodes attached to each leaf switch.
    pub nodes_per_leaf: u32,
    /// Number of core (spine) switches.
    pub num_core: u32,
    /// Downlinks : uplinks ratio numerator (e.g. 5 for 5/4 oversubscription).
    pub oversub_num: u32,
    /// Oversubscription denominator (e.g. 4 for 5/4).
    pub oversub_den: u32,
}

impl Default for SwitchTreeSpec {
    fn default() -> Self {
        // A non-blocking two-level tree: common for the mid-size IB clusters.
        SwitchTreeSpec {
            nodes_per_leaf: 24,
            num_core: 2,
            oversub_num: 1,
            oversub_den: 1,
        }
    }
}

impl SwitchTreeSpec {
    /// The paper's Cluster D fabric: 5/4 oversubscribed Omni-Path fat tree.
    pub fn opa_oversubscribed() -> Self {
        SwitchTreeSpec {
            nodes_per_leaf: 20,
            num_core: 8,
            oversub_num: 5,
            oversub_den: 4,
        }
    }

    /// Fraction of full bisection bandwidth available across the core
    /// (1.0 for non-blocking, 0.8 for 5/4 oversubscription).
    pub fn core_bandwidth_fraction(&self) -> f64 {
        self.oversub_den as f64 / self.oversub_num as f64
    }
}

/// A concrete two-level switch tree for a cluster of `num_nodes` nodes.
///
/// Switch ids: leaves are `0..num_leaves`, cores are
/// `num_leaves..num_leaves+num_core`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchTree {
    spec: SwitchTreeSpec,
    num_nodes: u32,
    num_leaves: u32,
}

impl SwitchTree {
    /// Build the tree for `num_nodes` nodes.
    pub fn build(num_nodes: u32, spec: SwitchTreeSpec) -> Result<Self, TopologyError> {
        if num_nodes == 0 {
            return Err(TopologyError::ZeroDimension("num_nodes"));
        }
        if spec.nodes_per_leaf == 0 {
            return Err(TopologyError::ZeroDimension("nodes_per_leaf"));
        }
        if spec.num_core == 0 {
            return Err(TopologyError::ZeroDimension("num_core"));
        }
        if spec.oversub_num == 0 || spec.oversub_den == 0 {
            return Err(TopologyError::ZeroDimension("oversubscription"));
        }
        let num_leaves = num_nodes.div_ceil(spec.nodes_per_leaf);
        Ok(SwitchTree {
            spec,
            num_nodes,
            num_leaves,
        })
    }

    /// The fat-tree parameters.
    #[inline]
    pub fn spec(&self) -> &SwitchTreeSpec {
        &self.spec
    }

    /// Number of leaf switches.
    #[inline]
    pub fn num_leaves(&self) -> u32 {
        self.num_leaves
    }

    /// Number of core switches.
    #[inline]
    pub fn num_core(&self) -> u32 {
        self.spec.num_core
    }

    /// Total number of switches (leaves + cores).
    #[inline]
    pub fn num_switches(&self) -> u32 {
        self.num_leaves + self.spec.num_core
    }

    /// The leaf switch a node is cabled to.
    pub fn leaf_of(&self, node: NodeId) -> Result<SwitchId, TopologyError> {
        if node.0 >= self.num_nodes {
            return Err(TopologyError::OutOfRange {
                what: "node",
                index: node.0 as u64,
                limit: self.num_nodes as u64,
            });
        }
        Ok(SwitchId(node.0 / self.spec.nodes_per_leaf))
    }

    /// Nodes cabled to a leaf switch.
    pub fn nodes_under_leaf(&self, leaf: SwitchId) -> Vec<NodeId> {
        let start = leaf.0 * self.spec.nodes_per_leaf;
        let end = (start + self.spec.nodes_per_leaf).min(self.num_nodes);
        (start..end).map(NodeId).collect()
    }

    /// True if the switch id refers to a core switch.
    #[inline]
    pub fn is_core(&self, sw: SwitchId) -> bool {
        sw.0 >= self.num_leaves
    }

    /// Number of switch-to-switch / node-to-switch hops on the path between
    /// two nodes: 0 (same node), 2 (same leaf: node→leaf→node), or
    /// 4 (different leaves: node→leaf→core→leaf→node).
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> Result<u32, TopologyError> {
        if a == b {
            return Ok(0);
        }
        let la = self.leaf_of(a)?;
        let lb = self.leaf_of(b)?;
        Ok(if la == lb { 2 } else { 4 })
    }

    /// The ordered switch path between two distinct nodes (for SHArP tree
    /// construction). Core switch selection hashes the leaf pair for a
    /// deterministic spread.
    pub fn path(&self, a: NodeId, b: NodeId) -> Result<Vec<SwitchId>, TopologyError> {
        let la = self.leaf_of(a)?;
        let lb = self.leaf_of(b)?;
        if a == b {
            return Ok(vec![]);
        }
        if la == lb {
            return Ok(vec![la]);
        }
        let core = SwitchId(self.num_leaves + (la.0 ^ lb.0) % self.spec.num_core);
        Ok(vec![la, core, lb])
    }

    /// The canonical SHArP-style aggregation tree over a set of member
    /// nodes: every involved leaf switch, parented by one core switch root.
    /// Returns `(root, leaves)`; when all members share a single leaf the
    /// root is that leaf and `leaves` is empty.
    pub fn aggregation_tree(
        &self,
        members: &[NodeId],
    ) -> Result<(SwitchId, Vec<SwitchId>), TopologyError> {
        let mut leaves: Vec<SwitchId> = Vec::new();
        for &n in members {
            let l = self.leaf_of(n)?;
            if !leaves.contains(&l) {
                leaves.push(l);
            }
        }
        leaves.sort();
        if leaves.len() <= 1 {
            let root = leaves.first().copied().unwrap_or(SwitchId(0));
            return Ok((root, vec![]));
        }
        let root = SwitchId(self.num_leaves + leaves[0].0 % self.spec.num_core);
        Ok((root, leaves))
    }

    /// Number of nodes in the fabric.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> SwitchTree {
        SwitchTree::build(160, SwitchTreeSpec::opa_oversubscribed()).unwrap()
    }

    #[test]
    fn leaf_count_rounds_up() {
        let t = tree();
        assert_eq!(t.num_leaves(), 8); // 160 / 20
        let t2 = SwitchTree::build(161, SwitchTreeSpec::opa_oversubscribed()).unwrap();
        assert_eq!(t2.num_leaves(), 9);
    }

    #[test]
    fn hop_counts() {
        let t = tree();
        assert_eq!(t.hop_count(NodeId(0), NodeId(0)).unwrap(), 0);
        assert_eq!(t.hop_count(NodeId(0), NodeId(19)).unwrap(), 2); // same leaf
        assert_eq!(t.hop_count(NodeId(0), NodeId(20)).unwrap(), 4); // cross leaf
    }

    #[test]
    fn path_same_leaf_is_single_switch() {
        let t = tree();
        assert_eq!(t.path(NodeId(1), NodeId(2)).unwrap(), vec![SwitchId(0)]);
    }

    #[test]
    fn path_cross_leaf_goes_through_core() {
        let t = tree();
        let p = t.path(NodeId(0), NodeId(25)).unwrap();
        assert_eq!(p.len(), 3);
        assert!(!t.is_core(p[0]));
        assert!(t.is_core(p[1]));
        assert!(!t.is_core(p[2]));
    }

    #[test]
    fn out_of_range_node_is_error() {
        let t = tree();
        assert!(t.leaf_of(NodeId(160)).is_err());
    }

    #[test]
    fn aggregation_tree_single_leaf() {
        let t = tree();
        let (root, leaves) = t.aggregation_tree(&[NodeId(0), NodeId(5)]).unwrap();
        assert_eq!(root, SwitchId(0));
        assert!(leaves.is_empty());
    }

    #[test]
    fn aggregation_tree_multi_leaf() {
        let t = tree();
        let members: Vec<NodeId> = (0..160).step_by(10).map(NodeId).collect();
        let (root, leaves) = t.aggregation_tree(&members).unwrap();
        assert!(t.is_core(root));
        assert_eq!(leaves.len(), 8);
    }

    #[test]
    fn oversubscription_fraction() {
        assert!(
            (SwitchTreeSpec::opa_oversubscribed().core_bandwidth_fraction() - 0.8).abs() < 1e-12
        );
        assert!((SwitchTreeSpec::default().core_bandwidth_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nodes_under_leaf_truncates_at_cluster_edge() {
        let t = SwitchTree::build(45, SwitchTreeSpec::opa_oversubscribed()).unwrap();
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.nodes_under_leaf(SwitchId(2)).len(), 5);
    }
}
