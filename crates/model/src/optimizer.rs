//! Leader-count optimization driven by the analytic model.
//!
//! Section 6.4 of the paper notes that the optimal number of leaders depends
//! on message size, process count, and hardware; the authors tuned
//! empirically. The analytic model gives a first-order prediction of the
//! same tables: minimize Eq. (7) over candidate leader counts.

use crate::cost::CostParams;
use serde::{Deserialize, Serialize};

/// One row of a leader sweep: leader count and modeled latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeaderPoint {
    /// Leader count evaluated.
    pub leaders: u32,
    /// Modeled allreduce time, seconds.
    pub time: f64,
}

/// Candidate leader counts: powers of two up to `ppn`, always including 1.
pub fn candidate_leader_counts(ppn: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut l = 1u32;
    while l <= ppn {
        out.push(l);
        l *= 2;
    }
    out
}

/// Evaluate Eq. (7) for every candidate leader count.
pub fn leader_sweep(base: &CostParams) -> Vec<LeaderPoint> {
    candidate_leader_counts(base.ppn())
        .into_iter()
        .map(|l| LeaderPoint {
            leaders: l,
            time: base.with_leaders(l).t_allreduce(),
        })
        .collect()
}

/// The leader count minimizing modeled latency for this configuration.
pub fn best_leader_count(base: &CostParams) -> u32 {
    leader_sweep(base)
        .into_iter()
        .min_by(|a, b| a.time.total_cmp(&b.time))
        .map(|p| p.leaders)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(n: u64) -> CostParams {
        CostParams {
            p: 1792,
            h: 64,
            l: 1,
            n,
            a: 1.4e-6,
            b: 1.0 / 3.0e9,
            a_shm: 150e-9,
            b_shm: 1.0 / 5.0e9,
            c: 1.0 / 3.0e9,
            k: 1,
        }
    }

    #[test]
    fn candidates_are_powers_of_two_capped_at_ppn() {
        assert_eq!(candidate_leader_counts(28), vec![1, 2, 4, 8, 16]);
        assert_eq!(candidate_leader_counts(64), vec![1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(candidate_leader_counts(1), vec![1]);
    }

    #[test]
    fn small_messages_prefer_few_leaders() {
        // Section 6.2: below ~1KB more leaders do not help (and can hurt,
        // since each copy pays a' per leader).
        let best = best_leader_count(&base(64));
        assert!(best <= 2, "best={best}");
    }

    #[test]
    fn large_messages_prefer_many_leaders() {
        let best = best_leader_count(&base(512 * 1024));
        assert!(best >= 8, "best={best}");
    }

    #[test]
    fn sweep_is_complete_and_ordered() {
        let sweep = leader_sweep(&base(4096));
        assert_eq!(sweep.len(), 5);
        assert!(sweep.windows(2).all(|w| w[0].leaders < w[1].leaders));
        assert!(sweep.iter().all(|p| p.time.is_finite() && p.time > 0.0));
    }

    #[test]
    fn best_is_argmin_of_sweep() {
        let b = base(32 * 1024);
        let best = best_leader_count(&b);
        let sweep = leader_sweep(&b);
        let min = sweep
            .iter()
            .min_by(|x, y| x.time.total_cmp(&y.time))
            .unwrap();
        assert_eq!(best, min.leaders);
    }
}
