//! Analytic cost model of allreduce operations — paper Section 5.
//!
//! Implements Table 1's notation and Equations (1)–(7), extending
//! Rabenseifner's classic model by treating shared-memory copies differently
//! from inter-node transfers. Used to (a) cross-validate the discrete-event
//! engine on contention-free configurations, (b) drive the leader-count
//! optimizer, and (c) regenerate the paper's analytical discussion
//! (Section 5.3).

pub mod cost;
pub mod optimizer;

pub use cost::{CostBreakdown, CostParams};
pub use optimizer::{best_leader_count, leader_sweep};
