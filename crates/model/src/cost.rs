//! Table 1 notation and Equations (1)–(7) of the paper.

use dpml_fabric::Fabric;
use dpml_topology::ClusterSpec;
use serde::{Deserialize, Serialize};

/// The cost-model parameters of the paper's Table 1.
///
/// | Symbol | Field | Description |
/// |---|---|---|
/// | `p` | `p` | number of MPI processes |
/// | `h` | `h` | number of nodes |
/// | `l` | `l` | leader processes per node |
/// | `n` | `n` | input vector size in bytes |
/// | `a` | `a` | startup time per inter-node message |
/// | `b` | `b` | transfer time per byte, inter-node |
/// | `a'`| `a_shm` | startup time per shared-memory copy |
/// | `b'`| `b_shm` | transfer time per byte, shared-memory |
/// | `c` | `c` | computation cost of one reduction per byte |
/// | `k` | `k` | sub-partitions used by DPML-Pipelined |
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Number of MPI processes (`p`).
    pub p: u32,
    /// Number of nodes (`h`).
    pub h: u32,
    /// Leader processes per node (`l`).
    pub l: u32,
    /// Input vector size in bytes (`n`).
    pub n: u64,
    /// Startup time per inter-node message (`a`), seconds.
    pub a: f64,
    /// Per-byte inter-node transfer time (`b`), s/byte.
    pub b: f64,
    /// Startup time per shared-memory copy (`a'`), seconds.
    pub a_shm: f64,
    /// Per-byte shared-memory copy time (`b'`), s/byte.
    pub b_shm: f64,
    /// Per-byte reduction cost (`c`), s/byte.
    pub c: f64,
    /// Pipeline sub-partitions (`k`) for DPML-Pipelined; 1 = plain DPML.
    pub k: u32,
}

/// Per-phase cost decomposition of a DPML allreduce (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Phase 1 — copy to local leaders, Eq. (2).
    pub t_copy: f64,
    /// Phase 2 — intra-node reduction by leaders, Eq. (3).
    pub t_comp: f64,
    /// Phase 3 — inter-node allreduce by leaders, Eq. (4) or (5).
    pub t_comm: f64,
    /// Phase 4 — copy back to all processes, Eq. (6).
    pub t_bcast: f64,
}

impl CostBreakdown {
    /// Total allreduce cost, Eq. (7).
    #[inline]
    pub fn total(&self) -> f64 {
        self.t_copy + self.t_comp + self.t_comm + self.t_bcast
    }
}

/// `ceil(lg x)` for `x >= 1`.
#[inline]
pub fn ceil_lg(x: u32) -> u32 {
    debug_assert!(x >= 1);
    32 - (x - 1).leading_zeros().min(32)
}

impl CostParams {
    /// Derive cost parameters from a fabric speed model and a cluster shape.
    ///
    /// The paper measured `a, b, a', b', c` on each system; we derive them
    /// from the same underlying quantities the engine uses so the analytic
    /// model and the simulator share one source of truth.
    pub fn from_fabric(fabric: &Fabric, spec: &ClusterSpec, leaders: u32, n: u64, k: u32) -> Self {
        CostParams {
            p: spec.world_size(),
            h: spec.num_nodes,
            l: leaders,
            n,
            a: fabric.nic.proc_overhead + fabric.nic.latency_for_hops(4),
            b: 1.0 / fabric.nic.per_flow_bw,
            a_shm: fabric.mem.copy_latency,
            b_shm: 1.0 / fabric.mem.per_proc_copy_bw,
            c: fabric.compute.cost_per_byte(),
            k,
        }
    }

    /// Processes per node (`p / h`).
    #[inline]
    pub fn ppn(&self) -> u32 {
        self.p / self.h
    }

    /// Eq. (1): flat recursive doubling over all `p` processes.
    ///
    /// `T_rd = ceil(lg p) * (a + n*b + n*c)`
    pub fn t_recursive_doubling(&self) -> f64 {
        let n = self.n as f64;
        ceil_lg(self.p) as f64 * (self.a + n * self.b + n * self.c)
    }

    /// Eq. (2): phase 1, every process copies `n/l` bytes to each of the
    /// `l` leaders' shared regions.
    ///
    /// `T_copy = l * (a' + b' * n/l)`
    pub fn t_copy(&self) -> f64 {
        let n = self.n as f64;
        self.l as f64 * (self.a_shm + self.b_shm * n / self.l as f64)
    }

    /// Eq. (3): phase 2, each leader reduces its partition across all local
    /// processes.
    ///
    /// `T_comp = (p/(h*l) - 1) * n * c`
    ///
    /// Note the paper's formulation: with `l` leaders sharing `ppn - 1`
    /// reduction passes over partitions of `n/l` bytes, each leader performs
    /// `(ppn - 1) * n/l * c` work; the equation groups this as
    /// `(ppn/l - 1) * n * c`, which matches at `l = 1` and approximates the
    /// load division for larger `l`. We implement the exact per-leader form
    /// in [`CostParams::t_comp_exact`] and the paper's Eq. (3) here.
    pub fn t_comp(&self) -> f64 {
        let ppn_over_l = self.p as f64 / (self.h as f64 * self.l as f64);
        ((ppn_over_l - 1.0) * self.n as f64 * self.c).max(0.0)
    }

    /// Exact phase-2 cost: each leader folds `ppn - 1` partitions of
    /// `n/l` bytes.
    pub fn t_comp_exact(&self) -> f64 {
        let passes = (self.ppn() as f64 - 1.0).max(0.0);
        passes * (self.n as f64 / self.l as f64) * self.c
    }

    /// Eq. (4): phase 3, `l` concurrent inter-node recursive-doubling
    /// allreduces of `n/l` bytes over `h` nodes.
    ///
    /// `T_comm = ceil(lg h) * (a + n*b/l + n*c/l)`
    pub fn t_comm(&self) -> f64 {
        if self.h <= 1 {
            return 0.0;
        }
        let n = self.n as f64;
        let l = self.l as f64;
        ceil_lg(self.h) as f64 * (self.a + n * self.b / l + n * self.c / l)
    }

    /// Eq. (5): phase 3 with pipelining into `k` sub-partitions.
    ///
    /// `T_comm_k = ceil(lg h) * (a*k + n*b/l + n*c/l)`
    pub fn t_comm_pipelined(&self) -> f64 {
        if self.h <= 1 {
            return 0.0;
        }
        let n = self.n as f64;
        let l = self.l as f64;
        ceil_lg(self.h) as f64 * (self.a * self.k as f64 + n * self.b / l + n * self.c / l)
    }

    /// Eq. (6): phase 4, every process copies `n/l` bytes back from each
    /// leader — same form as phase 1.
    pub fn t_bcast(&self) -> f64 {
        self.t_copy()
    }

    /// Eq. (7): full DPML decomposition.
    pub fn breakdown(&self) -> CostBreakdown {
        CostBreakdown {
            t_copy: self.t_copy(),
            t_comp: self.t_comp(),
            t_comm: if self.k > 1 {
                self.t_comm_pipelined()
            } else {
                self.t_comm()
            },
            t_bcast: self.t_bcast(),
        }
    }

    /// Eq. (7) total.
    pub fn t_allreduce(&self) -> f64 {
        self.breakdown().total()
    }

    /// Modeled speedup of DPML over flat recursive doubling.
    pub fn speedup_vs_rd(&self) -> f64 {
        self.t_recursive_doubling() / self.t_allreduce()
    }

    /// Return a copy with a different leader count.
    pub fn with_leaders(&self, l: u32) -> Self {
        CostParams { l, ..*self }
    }

    /// Return a copy with a different message size.
    pub fn with_bytes(&self, n: u64) -> Self {
        CostParams { n, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        // Cluster-B-like: 64 nodes x 28 ppn, 512 KB message.
        CostParams {
            p: 1792,
            h: 64,
            l: 16,
            n: 512 * 1024,
            a: 1.4e-6,
            b: 1.0 / 3.0e9,
            a_shm: 150e-9,
            b_shm: 1.0 / 5.0e9,
            c: 1.0 / 3.0e9,
            k: 1,
        }
    }

    #[test]
    fn ceil_lg_values() {
        assert_eq!(ceil_lg(1), 0);
        assert_eq!(ceil_lg(2), 1);
        assert_eq!(ceil_lg(3), 2);
        assert_eq!(ceil_lg(4), 2);
        assert_eq!(ceil_lg(5), 3);
        assert_eq!(ceil_lg(1024), 10);
        assert_eq!(ceil_lg(1025), 11);
    }

    #[test]
    fn eq1_recursive_doubling() {
        let p = params();
        let n = p.n as f64;
        let expect = 11.0 * (p.a + n * p.b + n * p.c); // ceil(lg 1792) = 11
        assert!((p.t_recursive_doubling() - expect).abs() < 1e-12);
    }

    #[test]
    fn eq2_copy_cost() {
        let p = params();
        let expect = 16.0 * (p.a_shm + p.b_shm * (p.n as f64 / 16.0));
        assert!((p.t_copy() - expect).abs() < 1e-12);
        assert!((p.t_bcast() - expect).abs() < 1e-12);
    }

    #[test]
    fn eq3_compute_cost() {
        let p = params();
        let expect = (28.0 / 16.0 - 1.0) * p.n as f64 * p.c;
        assert!((p.t_comp() - expect).abs() < 1e-12);
    }

    #[test]
    fn eq3_never_negative() {
        // l = ppn means every process is a leader; Eq. (3) would go
        // negative without the clamp (ppn/l - 1 = 0 exactly at l = ppn,
        // but guard l > ppn misuse too).
        let mut p = params();
        p.l = 28;
        assert_eq!(p.t_comp(), 0.0);
        p.l = 56;
        assert!(p.t_comp() >= 0.0);
    }

    #[test]
    fn eq4_comm_cost() {
        let p = params();
        let n = p.n as f64;
        let expect = 6.0 * (p.a + n * p.b / 16.0 + n * p.c / 16.0); // lg 64 = 6
        assert!((p.t_comm() - expect).abs() < 1e-12);
    }

    #[test]
    fn eq5_reduces_to_eq4_at_k1() {
        let p = params();
        assert!((p.t_comm_pipelined() - p.t_comm()).abs() < 1e-15);
    }

    #[test]
    fn eq5_adds_k_startups() {
        let mut p = params();
        p.k = 8;
        let base = p.t_comm();
        let piped = p.t_comm_pipelined();
        let extra = 6.0 * p.a * 7.0; // ceil(lg h) * a * (k-1)
        assert!((piped - base - extra).abs() < 1e-12);
    }

    #[test]
    fn eq7_total_is_sum_of_phases() {
        let p = params();
        let b = p.breakdown();
        assert!((p.t_allreduce() - (b.t_copy + b.t_comp + b.t_comm + b.t_bcast)).abs() < 1e-15);
    }

    #[test]
    fn single_node_has_no_comm() {
        let mut p = params();
        p.h = 1;
        p.p = 28;
        assert_eq!(p.t_comm(), 0.0);
        assert_eq!(p.t_comm_pipelined(), 0.0);
    }

    #[test]
    fn more_leaders_cut_large_message_cost() {
        // Section 5.3: for n >> 1 increasing l reduces latency.
        let p = params();
        let t1 = p.with_leaders(1).t_allreduce();
        let t4 = p.with_leaders(4).t_allreduce();
        let t16 = p.with_leaders(16).t_allreduce();
        assert!(t4 < t1);
        assert!(t16 < t4);
    }

    #[test]
    fn dpml_beats_flat_rd_for_large_messages_on_many_cores() {
        let p = params();
        assert!(p.speedup_vs_rd() > 2.0, "speedup {}", p.speedup_vs_rd());
    }

    #[test]
    fn steps_reduced_from_lg_p_to_lg_h() {
        // Section 5.3's headline: comm steps drop from ceil(lg p) to
        // ceil(lg h).
        assert_eq!(ceil_lg(1792), 11);
        assert_eq!(ceil_lg(64), 6);
    }

    #[test]
    fn from_fabric_matches_hand_derivation() {
        let preset = dpml_fabric::presets::cluster_b();
        let spec = preset.default_spec(64).unwrap();
        let cp = CostParams::from_fabric(&preset.fabric, &spec, 4, 65536, 1);
        assert_eq!(cp.p, 1792);
        assert_eq!(cp.h, 64);
        assert_eq!(cp.ppn(), 28);
        assert!((cp.b - 1.0 / preset.fabric.nic.per_flow_bw).abs() < 1e-24);
        assert!((cp.c - preset.fabric.compute.cost_per_byte()).abs() < 1e-24);
    }

    #[test]
    fn exact_comp_matches_paper_form_at_l1() {
        let p = params().with_leaders(1);
        assert!((p.t_comp() - p.t_comp_exact()).abs() / p.t_comp() < 1e-12);
    }
}
