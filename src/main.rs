//! `dpml` — command-line front end to the simulator and algorithm library.
//!
//! ```text
//! dpml info
//! dpml simulate --cluster c --nodes 16 --alg dpml:16 --bytes 64K
//! dpml profile  --cluster a --nodes 8  --alg dpml:4  --bytes 64K [--sweep]
//! dpml sweep    --cluster b --nodes 16 --alg dpml:16 [--alg rd ...]
//! dpml compare  --cluster d --nodes 8  --bytes 512K
//! dpml tune     --cluster c --nodes 8  [--out tuned.json]
//! dpml app      --app hpcg|miniamr --cluster a --nodes 8
//! dpml faults   --cluster a --nodes 8 --alg sharp-socket --bytes 256 --intensity 0.5
//! dpml recover  --cluster a --nodes 4 --leaders 2 --bytes 1M --crash-rank 6 --crash-at-us 800
//! dpml integrity --cluster b --nodes 4 --alg dpml:4 --bytes 256K --corruption 0.05 --drop 0.02
//! dpml serve    --addr 127.0.0.1:7077 --workers 4 --journal serve.journal
//! dpml top      --addr 127.0.0.1:7077 --interval 1000 # live telemetry dashboard
//! dpml metrics  --addr 127.0.0.1:7077                 # Prometheus-style exposition
//! dpml chaos    campaign --seed 7 --budget 256        # coverage-guided search
//! dpml chaos    mine --dir tests/corpus               # shrink + commit reproducers
//! dpml chaos    replay --dir tests/corpus             # bit-exact corpus replay
//! ```
//!
//! Exit codes (stable, for scripts and CI):
//!
//! | code | class     | meaning                                            |
//! |------|-----------|----------------------------------------------------|
//! | 0    | ok        | command succeeded                                  |
//! | 1    | internal  | I/O or other unexpected failure                    |
//! | 2    | usage     | bad flags, sizes, algorithm specs, unknown command |
//! | 3    | build     | topology or schedule construction failed           |
//! | 4    | sim       | the discrete-event simulation itself failed        |
//! | 5    | integrity | result verification failed or the integrity ladder |
//! |      |           | exhausted its budget (no trustworthy result)       |
//! | 6    | partial   | sweep finished but some scenarios failed; the      |
//! |      |           | table above the summary holds the partial results  |

use dpml::chaos::{
    replay_dir, run_campaign, run_serve_campaign, shrink_case, CampaignConfig, Reproducer,
    ServeCampaignConfig,
};
use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::heal::{run_dpml_failstop, FailstopOutcome};
use dpml::core::integrity::{run_allreduce_verified, IntegrityPolicy, VerifiedError};
use dpml::core::profile::profile_allreduce;
use dpml::core::resilience::{run_allreduce_resilient, FaultPolicy};
use dpml::core::run::{run_allreduce, RunError};
use dpml::core::selector::Library;
use dpml::core::tuner::{default_candidates, tune};
use dpml::fabric::presets::{all_presets, Preset};
use dpml::faults::{DataFaults, FaultPlan, ProcessFaults, SharpFaults};
use dpml::serve::{start, ServeConfig};
use dpml::topology::ClusterSpec;
use dpml::workloads::app::{run_app, AppError};
use dpml::workloads::{HpcgConfig, MiniAmrConfig};

/// A classified CLI failure. Each class maps to a distinct, documented
/// exit code (see the module docs) so scripts can branch on *why* a
/// command failed without parsing stderr.
enum CliError {
    /// I/O or other unexpected failure (exit 1).
    Internal(String),
    /// Bad flags, sizes, algorithm specs, unknown command (exit 2).
    Usage(String),
    /// Topology or schedule construction failed (exit 3).
    Build(String),
    /// The simulation itself failed — deadlock, budget, oracle (exit 4).
    Sim(String),
    /// Verification or data-integrity failure (exit 5).
    Integrity(String),
    /// A sweep completed but some scenarios failed (exit 6).
    Partial { failed: usize, total: usize },
}

impl CliError {
    fn io(e: impl std::fmt::Display) -> Self {
        CliError::Internal(e.to_string())
    }

    fn class(&self) -> &'static str {
        match self {
            CliError::Internal(_) => "internal",
            CliError::Usage(_) => "usage",
            CliError::Build(_) => "build",
            CliError::Sim(_) => "sim",
            CliError::Integrity(_) => "integrity",
            CliError::Partial { .. } => "partial",
        }
    }

    fn code(&self) -> i32 {
        match self {
            CliError::Internal(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Build(_) => 3,
            CliError::Sim(_) => 4,
            CliError::Integrity(_) => 5,
            CliError::Partial { .. } => 6,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Internal(m)
            | CliError::Usage(m)
            | CliError::Build(m)
            | CliError::Sim(m)
            | CliError::Integrity(m) => write!(f, "{m}"),
            CliError::Partial { failed, total } => write!(
                f,
                "sweep completed with {failed} of {total} scenarios failed \
                 (partial results above)"
            ),
        }
    }
}

/// Bare-string errors come from flag/spec parsing — usage class.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Usage(msg.into())
    }
}

impl From<RunError> for CliError {
    fn from(e: RunError) -> Self {
        match &e {
            RunError::Topology(_) | RunError::Build(_) | RunError::NoSharpOnFabric => {
                CliError::Build(e.to_string())
            }
            RunError::Sim(_) => CliError::Sim(e.to_string()),
            RunError::Verify(_) => CliError::Integrity(e.to_string()),
        }
    }
}

impl From<AppError> for CliError {
    fn from(e: AppError) -> Self {
        match &e {
            AppError::Topology(_) | AppError::Build(_) => CliError::Build(e.to_string()),
            AppError::Sim(_) => CliError::Sim(e.to_string()),
        }
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn arg_values(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < args.len() {
        if args[i] == flag {
            out.push(args[i + 1].clone());
            i += 1;
        }
        i += 1;
    }
    out
}

/// Parse sizes like `64`, `4K`, `2M`.
fn parse_bytes(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1024u64),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1 << 20),
        _ => (s, 1),
    };
    num.parse::<u64>()
        .map(|v| v * mult)
        .map_err(|e| format!("bad size `{s}`: {e}"))
}

/// Parse algorithm specs via the canonical grammar in
/// [`Algorithm::parse`] (shared with the serve protocol):
/// `rd | rabenseifner | ring | binomial | single-leader[:rd|rab|ring]
///  | dpml:<l>[:rd|rab|ring] | dpml-pipelined:<l>:<k>
///  | sharp-node | sharp-socket`.
fn parse_algorithm(s: &str) -> Result<Algorithm, String> {
    Algorithm::parse(s)
}

fn cluster_and_spec(args: &[String]) -> Result<(Preset, ClusterSpec), String> {
    let id = arg_value(args, "--cluster").unwrap_or_else(|| "c".into());
    let preset = Preset::by_id(&id).ok_or(format!("unknown cluster `{id}` (a|b|c|d)"))?;
    let nodes: u32 = arg_value(args, "--nodes")
        .map(|v| v.parse().map_err(|e| format!("bad --nodes: {e}")))
        .transpose()?
        .unwrap_or(8);
    let ppn: u32 = arg_value(args, "--ppn")
        .map(|v| v.parse().map_err(|e| format!("bad --ppn: {e}")))
        .transpose()?
        .unwrap_or(preset.default_ppn);
    let spec = preset.spec(nodes, ppn).map_err(|e| e.to_string())?;
    Ok((preset, spec))
}

fn cmd_info() {
    println!("cluster presets (--cluster):");
    for p in all_presets() {
        println!(
            "  {}  {}  ({} sockets x {} cores, default ppn {}, up to {} nodes)",
            p.id.to_lowercase(),
            p.fabric.name,
            p.sockets_per_node,
            p.cores_per_socket,
            p.default_ppn,
            p.max_nodes
        );
    }
    println!("\nalgorithms (--alg):");
    for a in [
        "rd",
        "rabenseifner",
        "ring",
        "binomial",
        "single-leader[:rd|rab|ring]",
        "dpml:<leaders>[:rd|rab|ring]",
        "dpml-pipelined:<leaders>:<chunks>",
        "sharp-node (cluster a only)",
        "sharp-socket (cluster a only)",
    ] {
        println!("  {a}");
    }
    println!("\nsizes accept K/M suffixes: 64, 4K, 2M");
}

/// Parse `--intra serial|auto|N` into the engine parallelism knob.
/// Absent flag = serial, the historical behavior. Output is bit-identical
/// either way (DESIGN.md §16); the knob only buys wall-clock time.
fn parse_intra(args: &[String]) -> Result<dpml_core::Parallelism, CliError> {
    match arg_value(args, "--intra") {
        None => Ok(dpml_core::Parallelism::Serial),
        Some(v) => dpml_core::Parallelism::parse(&v)
            .map_err(|e| CliError::Usage(format!("bad --intra: {e}"))),
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), CliError> {
    let (preset, spec) = cluster_and_spec(args)?;
    let alg = parse_algorithm(&arg_value(args, "--alg").ok_or("--alg required".to_string())?)?;
    let bytes = parse_bytes(&arg_value(args, "--bytes").ok_or("--bytes required".to_string())?)?;
    let parallelism = parse_intra(args)?;
    let rep = dpml_core::run::run_allreduce_with(
        &preset,
        &spec,
        alg,
        bytes,
        &dpml_core::RunOpts::parallel(parallelism),
    )?;
    println!(
        "{} on {} ({} x {} = {} ranks), {} bytes:",
        alg.name(),
        preset.fabric.name,
        spec.num_nodes,
        spec.ppn,
        spec.world_size(),
        bytes
    );
    println!(
        "  latency          {:>12.2} us (verified correct)",
        rep.latency_us
    );
    let st = rep.report.stats;
    println!("  messages         {:>12}", st.messages);
    println!(
        "  inter-node       {:>12} msgs, {} bytes",
        st.inter_node_messages, st.inter_node_bytes
    );
    println!("  shm copies       {:>12}", st.copies);
    println!("  reductions       {:>12}", st.reduces);
    println!(
        "  sharp ops        {:>12} ({} retries, {} fallbacks)",
        st.sharp_ops, st.sharp_retries, st.sharp_fallbacks
    );
    println!("  sim events       {:>12}", st.events);
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), CliError> {
    let (preset, spec) = cluster_and_spec(args)?;
    let alg = parse_algorithm(&arg_value(args, "--alg").unwrap_or_else(|| "dpml:4".into()))?;

    if args.iter().any(|a| a == "--sweep") {
        // Zone-transition sweep: one profiled run per size, Figure 1 regimes.
        println!(
            "{} zone sweep on {} ({} x {} = {} ranks):",
            alg.name(),
            preset.fabric.name,
            spec.num_nodes,
            spec.ppn,
            spec.world_size()
        );
        println!(
            "{:>10} {:>12} {:>16} {:>14}",
            "size", "latency", "zone", "dominant"
        );
        let mut bytes = 4u64;
        while bytes <= 4 << 20 {
            let run = profile_allreduce(&preset, &spec, alg, bytes)?;
            println!(
                "{:>10} {:>10.2}us {:>16} {:>14}",
                bytes, run.profile.latency_us, run.profile.zone, run.profile.dominant
            );
            bytes *= 4;
        }
        return Ok(());
    }

    let bytes = parse_bytes(&arg_value(args, "--bytes").unwrap_or_else(|| "64K".into()))?;
    let run = profile_allreduce(&preset, &spec, alg, bytes)?;
    let prof = &run.profile;
    println!(
        "{} on {} ({} x {} = {} ranks), {} bytes:",
        prof.algorithm,
        preset.fabric.name,
        spec.num_nodes,
        spec.ppn,
        spec.world_size(),
        bytes
    );
    println!(
        "  latency {:.2} us   zone {}   dominant cost: {}",
        prof.latency_us, prof.zone, prof.dominant
    );

    println!("\n  phase            busy(us)  critical(us)  critical%");
    let makespan = prof.latency_us.max(f64::MIN_POSITIVE);
    for row in &prof.phases {
        println!(
            "  {:<16} {:>8.2}  {:>12.2}  {:>8.1}%",
            row.phase,
            row.busy_s * 1e6,
            row.critical_s * 1e6,
            100.0 * row.critical_s * 1e6 / makespan
        );
    }
    println!("\n  cost             critical(us)  critical%");
    for row in &prof.costs {
        println!(
            "  {:<16} {:>12.2}  {:>8.1}%",
            row.kind,
            row.critical_s * 1e6,
            100.0 * row.critical_s * 1e6 / makespan
        );
    }
    let mut busiest: Vec<_> = prof.resources.iter().collect();
    busiest.sort_by(|a, b| b.mean_util.total_cmp(&a.mean_util));
    if !busiest.is_empty() {
        println!("\n  resource          mean util  peak util        bytes");
        for r in busiest.iter().take(6) {
            println!(
                "  {:<16} {:>9.1}%  {:>8.1}%  {:>11.0}",
                r.name,
                100.0 * r.mean_util,
                100.0 * r.peak_util,
                r.bytes
            );
        }
    }

    std::fs::create_dir_all("results").map_err(CliError::io)?;
    let json_path = format!("results/profile_{}_{}.json", prof.algorithm, bytes);
    let json = serde_json::to_string_pretty(prof).map_err(CliError::io)?;
    std::fs::write(&json_path, json).map_err(CliError::io)?;
    let trace = run.report.trace.as_ref().expect("profiled run is traced");
    let trace_path = "results/dpml_timeline.json";
    std::fs::write(trace_path, trace.to_chrome_json()).map_err(CliError::io)?;
    println!("\n  profile written to {json_path}");
    println!("  Perfetto trace written to {trace_path} (open at https://ui.perfetto.dev)");
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    let (preset, spec) = cluster_and_spec(args)?;
    let alg_specs = arg_values(args, "--alg");
    if alg_specs.is_empty() {
        return Err("at least one --alg required".into());
    }
    let algs: Vec<Algorithm> = alg_specs
        .iter()
        .map(|s| parse_algorithm(s))
        .collect::<Result<_, _>>()?;
    println!(
        "sweep on {} ({} x {} = {} ranks)",
        preset.fabric.name,
        spec.num_nodes,
        spec.ppn,
        spec.world_size()
    );
    print!("{:>8}", "size");
    for a in &algs {
        print!("  {:>16}", a.name());
    }
    println!();
    // Fan the (size, algorithm) matrix out across worker threads; results
    // return in input order, so the table matches a serial sweep exactly.
    let mut sizes = Vec::new();
    let mut bytes = 4u64;
    while bytes <= 1 << 20 {
        sizes.push(bytes);
        bytes *= 4;
    }
    let mut scenarios = Vec::new();
    for &bytes in &sizes {
        for &a in &algs {
            scenarios.push((a, bytes));
        }
    }
    let parallelism = parse_intra(args)?;
    // Split the machine between the inter-scenario rayon runner and each
    // scenario's frontier pool (PoolPolicy owns the composition rule) —
    // without this, `--intra` would oversubscribe hw × hw threads.
    dpml_bench::PoolPolicy::detect(parallelism.threads()).apply();
    let reports = dpml_core::run::run_allreduce_batch_with(
        &preset,
        &spec,
        &scenarios,
        &dpml_core::RunOpts::parallel(parallelism),
    );
    let mut failures: Vec<(u64, String, String)> = Vec::new();
    for (i, &bytes) in sizes.iter().enumerate() {
        print!("{bytes:>8}");
        for (j, a) in algs.iter().enumerate() {
            match &reports[i * algs.len() + j] {
                Ok(rep) => print!("  {:>14.1}us", rep.latency_us),
                Err(e) => {
                    print!("  {:>16}", "-");
                    failures.push((bytes, a.name(), e.to_string()));
                }
            }
        }
        println!();
    }
    // Partial results stay on stdout above; the failure summary and the
    // distinct exit code let scripts tell "all clean" from "holes".
    if failures.is_empty() {
        Ok(())
    } else {
        let total = sizes.len() * algs.len();
        println!("\n{} of {} scenarios failed:", failures.len(), total);
        for (bytes, name, why) in &failures {
            println!("  {name} @ {bytes}B: {why}");
        }
        Err(CliError::Partial {
            failed: failures.len(),
            total,
        })
    }
}

fn cmd_compare(args: &[String]) -> Result<(), CliError> {
    let (preset, spec) = cluster_and_spec(args)?;
    let bytes = parse_bytes(&arg_value(args, "--bytes").ok_or("--bytes required")?)?;
    println!(
        "library comparison on {} ({} ranks) at {} bytes:",
        preset.fabric.name,
        spec.world_size(),
        bytes
    );
    for lib in [Library::Mvapich2, Library::IntelMpi, Library::DpmlTuned] {
        let alg = lib.choose(&preset, &spec, bytes);
        let rep = run_allreduce(&preset, &spec, alg, bytes)?;
        println!(
            "  {:<16} -> {:<16} {:>12.2} us",
            lib.name(),
            alg.name(),
            rep.latency_us
        );
    }
    Ok(())
}

fn cmd_tune(args: &[String]) -> Result<(), CliError> {
    let (preset, spec) = cluster_and_spec(args)?;
    let sizes: Vec<u64> = (2..=20).map(|e| 1u64 << e).collect();
    let cands = default_candidates(&preset, &spec);
    println!(
        "tuning {} candidates over {} sizes on {} ({} ranks)...",
        cands.len(),
        sizes.len(),
        preset.fabric.name,
        spec.world_size()
    );
    let table = tune(&preset, &spec, &sizes, &cands);
    println!("{:>10}  {:<18} {:>12}", "<= size", "algorithm", "latency");
    for e in &table.entries {
        println!(
            "{:>10}  {:<18} {:>10.2}us",
            e.max_bytes,
            e.algorithm.name(),
            e.latency_us
        );
    }
    if let Some(out) = arg_value(args, "--out") {
        let json = serde_json::to_string_pretty(&table).map_err(CliError::io)?;
        std::fs::write(&out, json).map_err(CliError::io)?;
        println!("table written to {out}");
    }
    Ok(())
}

fn cmd_app(args: &[String]) -> Result<(), CliError> {
    let (preset, spec) = cluster_and_spec(args)?;
    let app = arg_value(args, "--app").ok_or("--app hpcg|miniamr required")?;
    match app.as_str() {
        "hpcg" => {
            let cfg = HpcgConfig {
                iterations: 20,
                ..Default::default()
            };
            let profile = cfg.profile();
            println!(
                "HPCG skeleton on {} ({} ranks):",
                preset.fabric.name,
                spec.world_size()
            );
            let designs: Vec<(&str, Algorithm)> = if preset.fabric.has_sharp() {
                vec![
                    (
                        "host-based",
                        Algorithm::SingleLeader {
                            inner: FlatAlg::RecursiveDoubling,
                        },
                    ),
                    ("sharp-node", Algorithm::SharpNodeLeader),
                    ("sharp-socket", Algorithm::SharpSocketLeader),
                ]
            } else {
                vec![(
                    "host-based",
                    Algorithm::SingleLeader {
                        inner: FlatAlg::RecursiveDoubling,
                    },
                )]
            };
            for (name, alg) in designs {
                let rep = run_app(&preset, &spec, &profile, &|_| alg)?;
                println!(
                    "  {:<12} total {:>10.1}us  ddot {:>9.1}us",
                    name, rep.total_us, rep.comm_us
                );
            }
        }
        "miniamr" => {
            let cfg = MiniAmrConfig {
                refinements: 10,
                ..Default::default()
            };
            let profile = cfg.profile(spec.world_size());
            println!(
                "miniAMR skeleton on {} ({} ranks, {}B refinement tags):",
                preset.fabric.name,
                spec.world_size(),
                cfg.refinement_bytes(spec.world_size())
            );
            for lib in [Library::Mvapich2, Library::IntelMpi, Library::DpmlTuned] {
                let rep = run_app(&preset, &spec, &profile, &|b| lib.choose(&preset, &spec, b))?;
                println!("  {:<16} refine comm {:>10.1}us", lib.name(), rep.comm_us);
            }
        }
        other => return Err(CliError::Usage(format!("unknown app `{other}`"))),
    }
    Ok(())
}

fn cmd_faults(args: &[String]) -> Result<(), CliError> {
    let (preset, spec) = cluster_and_spec(args)?;
    let alg = parse_algorithm(&arg_value(args, "--alg").ok_or("--alg required")?)?;
    let bytes = parse_bytes(&arg_value(args, "--bytes").ok_or("--bytes required")?)?;
    let intensity: f64 = arg_value(args, "--intensity")
        .map(|v| v.parse().map_err(|e| format!("bad --intensity: {e}")))
        .transpose()?
        .unwrap_or(0.5);
    if !(0.0..=1.0).contains(&intensity) {
        return Err("--intensity must be in [0, 1]".into());
    }
    let seed: u64 = arg_value(args, "--seed")
        .map(|v| v.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(7);
    let flaky: u32 = arg_value(args, "--flaky-sharp")
        .map(|v| v.parse().map_err(|e| format!("bad --flaky-sharp: {e}")))
        .transpose()?
        .unwrap_or(0);
    let mut plan = FaultPlan::canonical(seed, intensity);
    if args.iter().any(|a| a == "--deny-sharp") {
        plan.sharp = SharpFaults {
            deny_groups: true,
            ..Default::default()
        };
    } else if flaky > 0 {
        plan.sharp = SharpFaults {
            flaky_attempts: flaky,
            op_timeout: 1e-4,
            ..Default::default()
        };
    }

    let policy = FaultPolicy::default();
    let clean = run_allreduce_resilient(&preset, &spec, alg, bytes, &FaultPlan::zero(), policy)?;
    let faulted = run_allreduce_resilient(&preset, &spec, alg, bytes, &plan, policy)?;

    println!(
        "{} on {} ({} x {} = {} ranks), {} bytes, fault intensity {:.2}, seed {}:",
        alg.name(),
        preset.fabric.name,
        spec.num_nodes,
        spec.ppn,
        spec.world_size(),
        bytes,
        intensity,
        seed
    );
    println!("  fault-free       {:>12.2} us", clean.latency_us);
    println!(
        "  faulted          {:>12.2} us ({:.2}x, verified correct)",
        faulted.latency_us,
        faulted.latency_us / clean.latency_us
    );
    if faulted.sharp_retries > 0 {
        println!("  sharp retries    {:>12}", faulted.sharp_retries);
    }
    if faulted.fell_back {
        println!("  fell back to     {:>12}", faulted.completed_with);
    }
    Ok(())
}

fn cmd_recover(args: &[String]) -> Result<(), CliError> {
    let (preset, spec) = cluster_and_spec(args)?;
    let leaders: u32 = arg_value(args, "--leaders")
        .map(|v| v.parse().map_err(|e| format!("bad --leaders: {e}")))
        .transpose()?
        .unwrap_or(2);
    let bytes = parse_bytes(&arg_value(args, "--bytes").unwrap_or_else(|| "1M".into()))?;
    let crash_rank: u32 = arg_value(args, "--crash-rank")
        .map(|v| v.parse().map_err(|e| format!("bad --crash-rank: {e}")))
        .transpose()?
        .unwrap_or(0);
    if crash_rank >= spec.world_size() {
        return Err(CliError::Usage(format!(
            "--crash-rank {crash_rank} out of range (world size {})",
            spec.world_size()
        )));
    }
    let alg = Algorithm::Dpml {
        leaders,
        inner: FlatAlg::RecursiveDoubling,
    };
    let clean = run_allreduce(&preset, &spec, alg, bytes)?;
    // Default crash time: 60% through the fault-free run (mid-phase-3).
    let crash_at = arg_value(args, "--crash-at-us")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|e| format!("bad --crash-at-us: {e}"))
        })
        .transpose()?
        .unwrap_or(0.6 * clean.latency_us)
        * 1e-6;
    let detect = arg_value(args, "--detect-us")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|e| format!("bad --detect-us: {e}"))
        })
        .transpose()?;
    let mut process = ProcessFaults::single(crash_rank, crash_at);
    if let Some(d) = detect {
        process.detection_timeout = d * 1e-6;
    }
    let plan = FaultPlan {
        process,
        ..FaultPlan::zero()
    };
    let out = run_dpml_failstop(
        &preset,
        &spec,
        leaders,
        FlatAlg::RecursiveDoubling,
        bytes,
        &plan,
    )?;

    println!(
        "dpml-l{leaders} on {} ({} x {} = {} ranks), {} bytes; rank {} crashes at {:.1}us:",
        preset.fabric.name,
        spec.num_nodes,
        spec.ppn,
        spec.world_size(),
        bytes,
        crash_rank,
        crash_at * 1e6
    );
    println!("  fault-free       {:>12.2} us", clean.latency_us);
    match out {
        FailstopOutcome::Clean { .. } => {
            println!("  outcome          no rank died (crash fell after completion)");
        }
        FailstopOutcome::Healed { report, recovery } => {
            println!("  outcome          healed (survivors verified correct)");
            println!("  detected at      {:>12.2} us", recovery.detected_at_us);
            println!("  continuation     {:>12.2} us", report.latency_us);
            println!("  healed total     {:>12.2} us", recovery.healed_latency_us);
            println!(
                "  cold restart     {:>12.2} us ({:.2}x the healed path)",
                recovery.cold_restart_latency_us,
                recovery.cold_restart_latency_us / recovery.healed_latency_us
            );
            println!(
                "  replanned        {:>12} ranks",
                recovery.replanned_ranks.len()
            );
            for (node, j, local) in &recovery.reelections {
                println!("  re-elected       node {node} leader {j} -> local rank {local}");
            }
        }
        FailstopOutcome::ColdRestart {
            recovery, reason, ..
        } => {
            println!("  outcome          cold restart ({reason})");
            println!(
                "  restart total    {:>12.2} us",
                recovery.cold_restart_latency_us
            );
        }
    }
    Ok(())
}

fn cmd_integrity(args: &[String]) -> Result<(), CliError> {
    let (preset, spec) = cluster_and_spec(args)?;
    let alg = parse_algorithm(&arg_value(args, "--alg").unwrap_or_else(|| "dpml:4".into()))?;
    let bytes = parse_bytes(&arg_value(args, "--bytes").unwrap_or_else(|| "256K".into()))?;
    let rate = |flag: &str, default: f64| -> Result<f64, CliError> {
        let v: f64 = arg_value(args, flag)
            .map(|v| v.parse().map_err(|e| format!("bad {flag}: {e}")))
            .transpose()?
            .unwrap_or(default);
        if !(0.0..=1.0).contains(&v) {
            return Err(CliError::Usage(format!("{flag} must be in [0, 1]")));
        }
        Ok(v)
    };
    let corruption = rate("--corruption", 0.05)?;
    let drop = rate("--drop", 0.02)?;
    let shm_flip = rate("--shm-flip", 0.0)?;
    let seed: u64 = arg_value(args, "--seed")
        .map(|v| v.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(7);
    let budget: u32 = arg_value(args, "--budget")
        .map(|v| v.parse().map_err(|e| format!("bad --budget: {e}")))
        .transpose()?
        .unwrap_or(8);

    let plan = FaultPlan {
        seed,
        data: DataFaults {
            max_retransmits: budget,
            shm_flip_rate: shm_flip,
            ..DataFaults::wire(corruption, drop)
        },
        ..FaultPlan::zero()
    };
    println!(
        "{} on {} ({} x {} = {} ranks), {} bytes; corruption {:.3}, drop {:.3}, \
         shm flip {:.3}, retry budget {budget}, seed {seed}:",
        alg.name(),
        preset.fabric.name,
        spec.num_nodes,
        spec.ppn,
        spec.world_size(),
        bytes,
        corruption,
        drop,
        shm_flip
    );
    match run_allreduce_verified(
        &preset,
        &spec,
        alg,
        bytes,
        &plan,
        IntegrityPolicy::default(),
    ) {
        Ok(rep) => {
            println!(
                "  fault-free       {:>12.2} us (unverified baseline)",
                rep.base_latency_us
            );
            println!(
                "  self-verifying   {:>12.2} us (+{:.2} us checksum overhead)",
                rep.clean_latency_us, rep.verify_overhead_us
            );
            println!(
                "  under faults     {:>12.2} us ({:.2}x, bit-identical to baseline)",
                rep.total_latency_us,
                rep.total_latency_us / rep.base_latency_us
            );
            println!("  retransmits      {:>12}", rep.retransmits());
            println!("  crc detections   {:>12}", rep.corruptions_detected());
            if rep.shm_crc_fails() > 0 {
                println!("  shm redo copies  {:>12}", rep.shm_crc_fails());
            }
            println!("  undetected risk  {:>15.2e}", rep.undetected_risk());
            if rep.restarts > 0 {
                println!("  full restarts    {:>12}", rep.restarts);
            }
            if let Some(rec) = &rep.recovery {
                println!(
                    "  recovered        partition {} in {} pass(es); detected {:.2} us, \
                     replan {:.2} us",
                    rec.partition, rec.passes, rec.detected_at_us, rec.replan_us
                );
            }
            Ok(())
        }
        Err(VerifiedError::Integrity(e)) => {
            println!("  outcome          structured integrity failure (no corrupt data returned)");
            println!("  {e}");
            // The collective reported honestly instead of returning
            // corrupt data — still a failure for the caller: exit 5.
            Err(CliError::Integrity(e.to_string()))
        }
        Err(VerifiedError::Run(e)) => Err(e.into()),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let mut cfg = ServeConfig {
        addr: arg_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7077".into()),
        ..ServeConfig::default()
    };
    let usize_flag = |flag: &str, default: usize| -> Result<usize, CliError> {
        arg_value(args, flag)
            .map(|v| v.parse().map_err(|e| format!("bad {flag}: {e}")))
            .transpose()
            .map_err(CliError::from)
            .map(|v| v.unwrap_or(default))
    };
    cfg.workers = usize_flag("--workers", cfg.workers)?.max(1);
    cfg.queue_capacity = usize_flag("--queue", cfg.queue_capacity)?.max(1);
    cfg.client_inflight_cap = usize_flag("--client-cap", cfg.client_inflight_cap)?.max(1);
    cfg.cache_capacity = usize_flag("--cache", cfg.cache_capacity)?;
    cfg.max_retries = usize_flag("--max-retries", cfg.max_retries as usize)? as u32;
    if let Some(p) = arg_value(args, "--journal") {
        cfg.journal_path = p.into();
    }
    if let Some(id) = arg_value(args, "--watchdog-preset") {
        Preset::by_id(&id).ok_or(format!("unknown watchdog preset `{id}` (a|b|c|d)"))?;
        cfg.watchdog_preset = id;
    }
    if let Some(ms) = arg_value(args, "--sample-interval") {
        cfg.sample_interval_ms = ms
            .parse()
            .map_err(|e| format!("bad --sample-interval: {e}"))?;
    }
    cfg.postmortem_dir = arg_value(args, "--postmortem-dir").map(Into::into);
    cfg.max_postmortems = usize_flag("--max-postmortems", cfg.max_postmortems)?;
    cfg.checkpoint_interval =
        usize_flag("--checkpoint-interval", cfg.checkpoint_interval as usize)? as u64;
    cfg.checkpoint_dir = arg_value(args, "--checkpoint-dir").map(Into::into);
    if let Some(b) = arg_value(args, "--journal-max-bytes") {
        cfg.journal_max_bytes =
            parse_bytes(&b).map_err(|e| format!("bad --journal-max-bytes: {e}"))?;
    }

    let handle = start(cfg.clone()).map_err(CliError::io)?;
    println!(
        "dpml-serve listening on {} ({} workers, queue {}, journal {})",
        handle.addr,
        cfg.workers,
        cfg.queue_capacity,
        cfg.journal_path.display()
    );
    println!("send the `shutdown` verb to drain; exit 0 means a clean drain");
    install_terminate_monitor(&handle);
    // Blocks until a client sends Shutdown (or SIGTERM/SIGINT arrives)
    // and the admitted work drains.
    let code = handle.wait();
    if code == 0 {
        Ok(())
    } else {
        Err(CliError::Internal(format!("drain exited with code {code}")))
    }
}

/// Connect a telemetry client to a running daemon.
fn telemetry_client(args: &[String]) -> Result<dpml::serve::Client, CliError> {
    let addr = arg_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7077".into());
    let client = dpml::serve::Client::connect(&addr)
        .map_err(|e| CliError::Internal(format!("connect {addr}: {e}")))?;
    client
        .set_timeout(Some(std::time::Duration::from_secs(60)))
        .map_err(CliError::io)?;
    Ok(client)
}

fn cmd_top(args: &[String]) -> Result<(), CliError> {
    let interval_ms: u64 = arg_value(args, "--interval")
        .map(|v| v.parse().map_err(|e| format!("bad --interval: {e}")))
        .transpose()?
        .unwrap_or(1000);
    let frames: u32 = arg_value(args, "--frames")
        .map(|v| v.parse().map_err(|e| format!("bad --frames: {e}")))
        .transpose()?
        .unwrap_or(0); // 0 = until the daemon drains or we are killed
    let addr = arg_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7077".into());
    let mut client = telemetry_client(args)?;
    client
        .watch_start(interval_ms, frames)
        .map_err(|e| CliError::Internal(e.to_string()))?;
    let mut dash = dpml::serve::top::Dashboard::new();
    let mut seen = 0u32;
    loop {
        match client.next_frame() {
            Ok(Some(frame)) => {
                // Clear and home with plain ANSI; the renderer owns the rest.
                print!("\x1b[2J\x1b[H{}", dash.render(&addr, &frame));
                use std::io::Write as _;
                std::io::stdout().flush().map_err(CliError::io)?;
                seen += 1;
                if frames > 0 && seen >= frames {
                    return Ok(()); // bounded watch: server stops after N too
                }
            }
            Ok(None) => return Ok(()), // daemon drained: clean exit
            Err(e) => return Err(CliError::Internal(format!("watch stream: {e}"))),
        }
    }
}

fn cmd_metrics(args: &[String]) -> Result<(), CliError> {
    let mut client = telemetry_client(args)?;
    let text = client
        .metrics()
        .map_err(|e| CliError::Internal(e.to_string()))?;
    print!("{text}");
    Ok(())
}

/// Map SIGTERM/SIGINT to a graceful terminate: stop admitting, finish
/// running jobs, journal-requeue everything still waiting, flush, exit 0.
/// Signal-handler rules allow almost nothing, so the handler only flips
/// an atomic; a monitor thread does the real work.
#[cfg(unix)]
fn install_terminate_monitor(handle: &dpml::serve::ServerHandle) {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_term(_sig: i32) {
        TERM_REQUESTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
        signal(SIGINT, on_term as *const () as usize);
    }

    let state = std::sync::Arc::clone(handle.state());
    std::thread::Builder::new()
        .name("dpml-serve-term".into())
        .spawn(move || loop {
            if TERM_REQUESTED.load(Ordering::SeqCst) {
                let (running, requeued) = state.begin_terminate();
                eprintln!(
                    "dpml-serve: termination signal — finishing {running} running job(s), \
                     {requeued} requeued to the journal for the next start"
                );
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        })
        .expect("spawn terminate monitor");
}

#[cfg(not(unix))]
fn install_terminate_monitor(_handle: &dpml::serve::ServerHandle) {}

fn cmd_chaos(args: &[String]) -> Result<(), CliError> {
    let verb = args.first().map(String::as_str).unwrap_or("campaign");
    let rest = if args.is_empty() { args } else { &args[1..] };
    let seed: u64 = arg_value(rest, "--seed")
        .map(|v| v.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(0xc4a0_5eed);
    match verb {
        "campaign" => {
            let budget: u32 = arg_value(rest, "--budget")
                .map(|v| v.parse().map_err(|e| format!("bad --budget: {e}")))
                .transpose()?
                .unwrap_or(128);
            let mut cfg = CampaignConfig::new(seed, budget);
            cfg.guided = !rest.iter().any(|a| a == "--random");
            cfg.postmortem_dir = arg_value(rest, "--postmortem-dir").map(Into::into);
            let mode = if cfg.guided { "guided" } else { "random" };
            println!("chaos campaign: seed {seed:#x}, budget {budget}, {mode}");
            let report = run_campaign(&cfg);
            println!(
                "  coverage        {} cells from {} runs ({} discoveries)",
                report.cells.len(),
                report.executed,
                report.discoveries.len()
            );
            for p in &report.curve {
                println!("    after {:>5} runs: {:>3} cells", p.runs, p.cells);
            }
            if report.violations.is_empty() {
                println!("  violations      none");
                Ok(())
            } else {
                for v in &report.violations {
                    println!(
                        "  VIOLATION       {} on {}: {}",
                        v.signature,
                        v.scenario.id(),
                        v.detail
                    );
                    if let Some(bundle) = &v.bundle {
                        println!("    post-mortem   {bundle}");
                    }
                }
                Err(CliError::Integrity(format!(
                    "campaign found {} violation(s); shrink with `dpml chaos mine`",
                    report.violations.len()
                )))
            }
        }
        "serve" => {
            let iterations: u32 = arg_value(rest, "--iterations")
                .map(|v| v.parse().map_err(|e| format!("bad --iterations: {e}")))
                .transpose()?
                .unwrap_or(3);
            let report = run_serve_campaign(&ServeCampaignConfig::new(seed, iterations));
            println!(
                "serve chaos: {} daemon lifecycles, {} jobs, {} kill points audited",
                report.iterations, report.jobs_submitted, report.kill_points
            );
            println!("  coverage        {} cells", report.cells.len());
            for c in &report.cells {
                println!("    {c}");
            }
            if report.violations.is_empty() {
                println!("  violations      none (exactly-once held at every kill point)");
                Ok(())
            } else {
                for v in &report.violations {
                    println!("  VIOLATION       {v}");
                }
                Err(CliError::Integrity(format!(
                    "serve campaign found {} violation(s)",
                    report.violations.len()
                )))
            }
        }
        "shrink" => {
            let (sc, plan) = dpml::chaos::shrink::known_bad_case(seed);
            let before = dpml::faults::mutate::fault_count(&plan);
            let out = shrink_case(&sc, &plan, 400);
            println!(
                "shrink demo: {} faults -> {} in {} evals (signature {})",
                before, out.final_faults, out.evals, out.signature
            );
            println!(
                "  minimized to    {} with plan {}",
                out.scenario.id(),
                serde_json::to_string(&out.plan).map_err(CliError::io)?
            );
            Ok(())
        }
        "mine" => {
            let dir = std::path::PathBuf::from(
                arg_value(rest, "--dir").unwrap_or_else(|| "tests/corpus".into()),
            );
            let budget: u32 = arg_value(rest, "--budget")
                .map(|v| v.parse().map_err(|e| format!("bad --budget: {e}")))
                .transpose()?
                .unwrap_or(128);
            let max: usize = arg_value(rest, "--max")
                .map(|v| v.parse().map_err(|e| format!("bad --max: {e}")))
                .transpose()?
                .unwrap_or(8);
            let mut cfg = CampaignConfig::new(seed, budget);
            cfg.postmortem_dir = arg_value(rest, "--postmortem-dir").map(Into::into);
            let report = run_campaign(&cfg);
            // Reproducer candidates: violations first (carrying their
            // post-mortem bundle link, if one was dumped), then
            // structured failures among the discoveries — one per
            // signature.
            let mut candidates: Vec<(dpml::chaos::Scenario, FaultPlan, Option<String>)> = report
                .violations
                .iter()
                .map(|v| (v.scenario.clone(), v.plan.clone(), v.bundle.clone()))
                .collect();
            candidates.extend(
                report
                    .discoveries
                    .iter()
                    .map(|(sc, plan, _)| (sc.clone(), plan.clone(), None)),
            );
            let mut seen = std::collections::BTreeSet::new();
            let mut saved = 0usize;
            for (sc, plan, bundle) in candidates {
                if saved >= max {
                    break;
                }
                let out = dpml::chaos::run_case(&sc, &plan);
                let interesting = out.violation.is_some() || out.class.starts_with("err:");
                if !interesting || !seen.insert(out.signature.clone()) {
                    continue;
                }
                let shrunk = shrink_case(&sc, &plan, 200);
                let rep = Reproducer::capture(
                    &shrunk.scenario,
                    &shrunk.plan,
                    &format!(
                        "mined: campaign seed {seed:#x} budget {budget}; \
                         shrunk {} -> {} faults in {} evals",
                        shrunk.initial_faults, shrunk.final_faults, shrunk.evals
                    ),
                )
                .with_bundle(bundle);
                let path = rep.save(&dir).map_err(CliError::io)?;
                println!("saved {} ({})", path.display(), rep.signature);
                saved += 1;
            }
            println!("mined {saved} reproducer(s) into {}", dir.display());
            Ok(())
        }
        "replay" => {
            let dir = std::path::PathBuf::from(
                arg_value(rest, "--dir").unwrap_or_else(|| "tests/corpus".into()),
            );
            let (replayed, failures) = replay_dir(&dir).map_err(CliError::Internal)?;
            if failures.is_empty() {
                println!("corpus replay: {replayed} reproducer(s), all bit-exact");
                Ok(())
            } else {
                for (path, why) in &failures {
                    println!("DRIFT {}: {why}", path.display());
                }
                Err(CliError::Integrity(format!(
                    "{} of {replayed} corpus reproducer(s) drifted",
                    failures.len()
                )))
            }
        }
        other => Err(CliError::Usage(format!(
            "unknown chaos verb `{other}`; try campaign|serve|shrink|mine|replay"
        ))),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest = if args.is_empty() {
        &args[..]
    } else {
        &args[1..]
    };
    let result = match cmd {
        "info" => {
            cmd_info();
            Ok(())
        }
        "simulate" => cmd_simulate(rest),
        "profile" => cmd_profile(rest),
        "sweep" => cmd_sweep(rest),
        "compare" => cmd_compare(rest),
        "tune" => cmd_tune(rest),
        "app" => cmd_app(rest),
        "faults" => cmd_faults(rest),
        "recover" => cmd_recover(rest),
        "integrity" => cmd_integrity(rest),
        "serve" => cmd_serve(rest),
        "top" => cmd_top(rest),
        "metrics" => cmd_metrics(rest),
        "chaos" => cmd_chaos(rest),
        "help" | "--help" | "-h" => {
            println!(
                "usage: dpml <info|simulate|profile|sweep|compare|tune|app|faults|recover|integrity|serve|top|metrics|chaos> [options]\n\
                 try: dpml info\n     \
                 dpml simulate --cluster c --nodes 16 --alg dpml:16 --bytes 64K \
                 [--intra serial|auto|N]\n     \
                 dpml profile --cluster a --nodes 8 --alg dpml:4 --bytes 64K [--sweep]\n     \
                 dpml compare --cluster d --nodes 8 --bytes 512K\n     \
                 dpml tune --cluster b --nodes 8 --out tuned.json\n     \
                 dpml app --app miniamr --cluster c --nodes 8\n     \
                 dpml faults --cluster a --nodes 8 --alg sharp-socket --bytes 256 \
                 --intensity 0.5 [--deny-sharp|--flaky-sharp N]\n     \
                 dpml recover --cluster a --nodes 4 --leaders 2 --bytes 1M \
                 --crash-rank 6 [--crash-at-us T] [--detect-us T]\n     \
                 dpml integrity --cluster b --nodes 4 --alg dpml:4 --bytes 256K \
                 --corruption 0.05 --drop 0.02 [--shm-flip R] [--budget N] [--seed S]\n     \
                 dpml serve [--addr H:P] [--workers N] [--queue N] [--client-cap N] \
                 [--journal PATH] [--journal-max-bytes B] [--checkpoint-interval N] \
                 [--checkpoint-dir DIR] [--cache N] [--max-retries N] \
                 [--watchdog-preset a|b|c|d] [--sample-interval MS] [--postmortem-dir DIR] \
                 [--max-postmortems N]\n     \
                 dpml top [--addr H:P] [--interval MS] [--frames N]\n     \
                 dpml metrics [--addr H:P]\n     \
                 dpml chaos campaign [--seed S] [--budget N] [--random] [--postmortem-dir DIR]\n     \
                 dpml chaos serve [--seed S] [--iterations N]\n     \
                 dpml chaos mine [--dir tests/corpus] [--seed S] [--budget N] [--max N] \
                 [--postmortem-dir DIR]\n     \
                 dpml chaos replay [--dir tests/corpus]\n\
                 exit codes: 0 ok, 1 internal, 2 usage, 3 build, 4 sim, 5 integrity, 6 partial sweep"
            );
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`; try `dpml help`"
        ))),
    };
    if let Err(e) = result {
        eprintln!("error[{}]: {e}", e.class());
        std::process::exit(e.code());
    }
}
