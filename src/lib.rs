//! # dpml — Data Partitioning-based Multi-Leader reduction collectives
//!
//! A from-scratch Rust reproduction of *"Scalable Reduction Collectives with
//! Data Partitioning-based Multi-Leader Design"* (Bayatpour et al., SC '17).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`topology`] — cluster shapes, rank maps, switch trees, leader policies
//! * [`fabric`] — hardware speed models and calibrated Cluster A–D presets
//! * [`model`] — the paper's analytic cost model (Section 5, Eqs. 1–7)
//! * [`engine`] — flow-level discrete-event cluster simulator
//! * [`sharp`] — in-network (SHArP) aggregation model
//! * [`core`] — the collective algorithms: DPML, DPML-Pipelined, SHArP
//!   leader designs, and the baselines (recursive doubling, Rabenseifner,
//!   ring, single-leader hierarchical) plus library selectors
//! * [`shm`] — a real-threads shared-memory runtime executing the same
//!   algorithms with actual data for numerical validation and wall-clock
//!   benchmarking
//! * [`faults`] — deterministic fault-injection plans (OS noise,
//!   link degradation, SHArP resource faults) executed by the engine
//! * [`workloads`] — HPCG-like and miniAMR-like application skeletons
//! * [`serve`] — a fault-isolated simulation daemon: bounded queues,
//!   deadlines, deterministic retries, crash-safe job journaling, and a
//!   content-addressed result cache (DESIGN.md §12)
//! * [`chaos`] — coverage-guided chaos campaigns: outcome-coverage
//!   search over fault plans, delta-debugging failure shrinking, and a
//!   replayable regression corpus (DESIGN.md §13)
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use dpml_chaos as chaos;
pub use dpml_core as core;
pub use dpml_engine as engine;
pub use dpml_fabric as fabric;
pub use dpml_faults as faults;
pub use dpml_model as model;
pub use dpml_serve as serve;
pub use dpml_sharp as sharp;
pub use dpml_shm as shm;
pub use dpml_topology as topology;
pub use dpml_workloads as workloads;

/// Convenience prelude importing the most common types.
pub mod prelude {
    pub use dpml_core::algorithms::Algorithm;
    pub use dpml_core::resilience::{run_allreduce_resilient, FaultPolicy, ResilientReport};
    pub use dpml_core::run::{run_allreduce, AllreduceReport};
    pub use dpml_fabric::presets::{cluster_a, cluster_b, cluster_c, cluster_d};
    pub use dpml_fabric::Fabric;
    pub use dpml_faults::FaultPlan;
    pub use dpml_topology::{ClusterSpec, LeaderPolicy, RankMap};
}
