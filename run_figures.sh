#!/bin/bash
# Regenerate every figure of the paper; outputs under results/.
set -e
cd /root/repo
mkdir -p results
BIN=target/release
run() { echo "=== $* ==="; "$@" | tee "results/$(basename $1)_$2$3.txt" >/dev/null; }
$BIN/fig1 | tee results/fig1.txt >/dev/null
echo fig1 done
for c in a b c d; do
  $BIN/fig4_7_leader_sweep --cluster $c | tee results/fig4_7_$c.txt >/dev/null
  echo fig4_7 $c done
done
$BIN/fig8_sharp | tee results/fig8.txt >/dev/null
echo fig8 done
$BIN/fig9_libraries | tee results/fig9.txt >/dev/null
echo fig9 done
$BIN/fig10_scale | tee results/fig10.txt >/dev/null
echo fig10 done
$BIN/fig11_apps | tee results/fig11.txt >/dev/null
echo fig11 done
$BIN/model_check | tee results/model_check.txt >/dev/null
echo model_check done
$BIN/ablate_fairness | tee results/ablate_fairness.txt >/dev/null
$BIN/ablate_pipeline | tee results/ablate_pipeline.txt >/dev/null
$BIN/ablate_sharp_groups | tee results/ablate_sharp_groups.txt >/dev/null
$BIN/recovery | tee results/recovery.txt >/dev/null
echo recovery done
echo ALL_FIGURES_DONE
