//! End-to-end integrity guarantees through the public facade: under any
//! seeded silent-corruption plan, the self-verifying allreduce either
//! returns a result bit-identical to the fault-free baseline or a
//! structured `IntegrityError` — never silently wrong data.

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::integrity::{
    run_allreduce_verified, IntegrityErrorKind, IntegrityPolicy, VerifiedError,
};
use dpml::fabric::presets::cluster_b;
use dpml::faults::{DataFaults, FaultPlan};
use proptest::prelude::*;

fn matrix_alg(ix: u8) -> Algorithm {
    match ix % 6 {
        0 => Algorithm::RecursiveDoubling,
        1 => Algorithm::Rabenseifner,
        2 => Algorithm::Ring,
        3 => Algorithm::SingleLeader {
            inner: FlatAlg::RecursiveDoubling,
        },
        4 => Algorithm::Dpml {
            leaders: 2,
            inner: FlatAlg::RecursiveDoubling,
        },
        _ => Algorithm::DpmlPipelined {
            leaders: 2,
            chunks: 2,
        },
    }
}

fn wire_plan(seed: u64, corruption: f64, drop: f64, budget: u32) -> FaultPlan {
    FaultPlan {
        seed,
        data: DataFaults {
            max_retransmits: budget,
            ..DataFaults::wire(corruption, drop)
        },
        ..FaultPlan::zero()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The central claim of the integrity ladder: for ANY seed and any
    /// nonzero corruption/drop rates with a sufficient retry budget, the
    /// verified runner ends in exactly one of two states — a report that
    /// passed end-to-end verification AND matched the fault-free
    /// baseline (the runner's own gate), or a structured integrity
    /// error. A simulator-level escape (`VerifiedError::Run`) or a
    /// panic/hang is a protocol bug.
    #[test]
    fn corruption_is_absorbed_or_reported(
        seed in 0u64..1_000_000,
        corruption in 0.001f64..0.3,
        drop in 0.0f64..0.15,
        alg_ix in 0u8..6,
        bytes_exp in 12u32..18,
    ) {
        let p = cluster_b();
        let spec = p.spec(2, 4).expect("2x4 spec");
        let alg = matrix_alg(alg_ix);
        let plan = wire_plan(seed, corruption, drop, 64);
        match run_allreduce_verified(&p, &spec, alg, 1u64 << bytes_exp, &plan,
                                     IntegrityPolicy::default()) {
            Ok(rep) => {
                // Ok means the gate already proved bit-identity with the
                // fault-free baseline; sanity-check the accounting.
                prop_assert!(rep.total_latency_us >= rep.clean_latency_us - 1e-9,
                    "{}: faults cannot make the run faster", alg.name());
                prop_assert!(rep.undetected_risk() >= 0.0);
                prop_assert!(rep.verify_overhead_us > 0.0);
            }
            Err(VerifiedError::Integrity(e)) => {
                // Structured give-up: allowed, but it must carry a cause.
                prop_assert!(!e.detail.is_empty());
                prop_assert!(e.kind != IntegrityErrorKind::VerifyMismatch,
                    "{}: a VerifyMismatch means corrupt data reached the \
                     finish line: {e}", alg.name());
            }
            Err(VerifiedError::Run(e)) => {
                return Err(TestCaseError::fail(format!(
                    "{}: unstructured escape from the ladder: {e}", alg.name())));
            }
        }
    }
}

#[test]
fn verified_run_replays_bit_identically() {
    let p = cluster_b();
    let spec = p.spec(4, 4).expect("4x4 spec");
    let alg = Algorithm::Dpml {
        leaders: 4,
        inner: FlatAlg::RecursiveDoubling,
    };
    let plan = wire_plan(42, 0.1, 0.05, 64);
    let a = run_allreduce_verified(&p, &spec, alg, 1 << 17, &plan, IntegrityPolicy::default())
        .expect("seed 42 completes");
    let b = run_allreduce_verified(&p, &spec, alg, 1 << 17, &plan, IntegrityPolicy::default())
        .expect("seed 42 again");
    assert_eq!(a.total_latency_us.to_bits(), b.total_latency_us.to_bits());
    assert_eq!(a.retransmits(), b.retransmits());
    assert_eq!(a.corruptions_detected(), b.corruptions_detected());
    assert!(a.retransmits() > 0, "a 10%/5% wire must cost retransmits");
}

#[test]
fn exhausted_budget_is_structured_never_wrong() {
    let p = cluster_b();
    let spec = p.spec(2, 4).expect("2x4 spec");
    // Every delivery corrupt and a budget of one: no algorithm can win.
    let plan = wire_plan(5, 1.0, 0.0, 1);
    for alg in [
        Algorithm::Ring,
        Algorithm::Dpml {
            leaders: 2,
            inner: FlatAlg::RecursiveDoubling,
        },
    ] {
        let err =
            run_allreduce_verified(&p, &spec, alg, 1 << 14, &plan, IntegrityPolicy::default())
                .expect_err("hopeless wire must not succeed");
        let VerifiedError::Integrity(e) = err else {
            panic!(
                "{}: expected structured integrity error, got {err:?}",
                alg.name()
            );
        };
        assert!(
            matches!(
                e.kind,
                IntegrityErrorKind::BudgetExhausted | IntegrityErrorKind::RecoveryFailed
            ),
            "{}: unexpected kind {:?}",
            alg.name(),
            e.kind
        );
        assert!(e.attempts >= 2, "{}: budget 1 means 2 attempts", alg.name());
    }
}

#[test]
fn zero_rate_verification_overhead_stays_small() {
    let p = cluster_b();
    let spec = p.spec(4, 4).expect("4x4 spec");
    for ix in 0..6u8 {
        let alg = matrix_alg(ix);
        let rep = run_allreduce_verified(
            &p,
            &spec,
            alg,
            1 << 16,
            &FaultPlan::zero(),
            IntegrityPolicy::default(),
        )
        .expect("zero plan completes");
        assert_eq!(rep.retransmits(), 0, "{}", alg.name());
        assert_eq!(rep.corruptions_detected(), 0, "{}", alg.name());
        assert_eq!(rep.restarts, 0, "{}", alg.name());
        assert!(rep.recovery.is_none(), "{}", alg.name());
        assert!(
            rep.overhead_fraction() < 0.05,
            "{}: verification cost {:.2}% exceeds a few percent",
            alg.name(),
            100.0 * rep.overhead_fraction()
        );
    }
}
