//! Critical-path profiler integration: attribution must tile the makespan
//! exactly, phase tagging must cover every span the allreduce matrix
//! emits, and the Zone A/B/C classifier must reproduce the Figure 1
//! regimes of the paper's Section 4.2.

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::profile::profile_allreduce;
use dpml::engine::Zone;
use dpml::fabric::presets::{all_presets, cluster_c};
use dpml_bench::microbench::{multi_pair_critical_path, PairPlacement};

fn algorithms_for(sharp: bool, ppn: u32) -> Vec<Algorithm> {
    let mut algs = vec![
        Algorithm::RecursiveDoubling,
        Algorithm::Rabenseifner,
        Algorithm::Ring,
        Algorithm::BinomialReduceBcast,
        Algorithm::SingleLeader {
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::Dpml {
            leaders: 2.min(ppn),
            inner: FlatAlg::Rabenseifner,
        },
        Algorithm::Dpml {
            leaders: 4.min(ppn),
            inner: FlatAlg::Ring,
        },
        Algorithm::DpmlPipelined {
            leaders: 2.min(ppn),
            chunks: 3,
        },
    ];
    if sharp {
        algs.push(Algorithm::SharpNodeLeader);
        algs.push(Algorithm::SharpSocketLeader);
    }
    algs
}

/// The attributed critical path must sum to the makespan to 1e-9 s for
/// every algorithm on every preset.
#[test]
fn attribution_tiles_the_makespan_for_every_algorithm() {
    for preset in all_presets() {
        let spec = preset.spec(4, 4).expect("4x4 spec");
        for alg in algorithms_for(preset.fabric.has_sharp(), spec.ppn) {
            let run = profile_allreduce(&preset, &spec, alg, 6000)
                .unwrap_or_else(|e| panic!("{} {}: {e}", preset.id, alg.name()));
            let makespan = run.report.makespan().seconds();
            assert!(
                (run.critical.total() - makespan).abs() < 1e-9,
                "{} {}: critical {} != makespan {}",
                preset.id,
                alg.name(),
                run.critical.total(),
                makespan
            );
        }
    }
}

/// Every span the allreduce matrix emits must carry a real phase label.
#[test]
fn no_unknown_phase_spans_across_the_matrix() {
    for preset in all_presets() {
        let spec = preset.spec(4, 4).expect("4x4 spec");
        for alg in algorithms_for(preset.fabric.has_sharp(), spec.ppn) {
            for bytes in [64u64, 65_536] {
                let run = profile_allreduce(&preset, &spec, alg, bytes)
                    .unwrap_or_else(|e| panic!("{} {}: {e}", preset.id, alg.name()));
                let trace = run.report.trace.as_ref().expect("traced");
                let unknown = trace
                    .spans
                    .iter()
                    .filter(|s| s.phase == dpml::engine::Phase::Unknown)
                    .count();
                assert_eq!(
                    unknown,
                    0,
                    "{} {} {}B: {unknown} untagged spans",
                    preset.id,
                    alg.name(),
                    bytes
                );
            }
        }
    }
}

/// Small allreduces are latency-bound (Zone A); the critical path agrees.
#[test]
fn small_allreduce_is_latency_bound() {
    for preset in all_presets() {
        let spec = preset.spec(8, preset.default_ppn).expect("spec");
        let alg = Algorithm::Dpml {
            leaders: 4,
            inner: FlatAlg::RecursiveDoubling,
        };
        let run = profile_allreduce(&preset, &spec, alg, 64).expect("profiled");
        assert_eq!(
            run.zone(),
            Zone::LatencyBound,
            "{}: 64B dpml-l4 classified {}",
            preset.id,
            run.profile.zone
        );
    }
}

/// The Figure 1(c) multi-pair workload transitions latency → msg-rate →
/// bandwidth, consistent with the recorded relative-throughput collapse in
/// `results/fig1_throughput.json` (28 pairs scale ~28x through 64B and
/// collapse to ~1.2x by 4KB).
#[test]
fn fig1_zones_transition_with_size_and_window() {
    let p = cluster_c();
    // Single small ping: pure latency regime (Zone A).
    let ping = multi_pair_critical_path(&p, PairPlacement::InterNode, 28, 64, 1);
    assert_eq!(ping.zone(), Zone::LatencyBound);
    // Windowed small messages: per-message costs bound the message rate
    // (Zone B) — the regime where Figure 1 still scales linearly.
    for bytes in [1u64, 16, 64] {
        let cp = multi_pair_critical_path(&p, PairPlacement::InterNode, 28, bytes, 64);
        assert_eq!(cp.zone(), Zone::MsgRateBound, "{bytes}B window 64");
    }
    // Large messages: the shared NIC saturates (Zone C) — the sizes where
    // fig1_throughput.json records the collapse to ~1x.
    for bytes in [4096u64, 65_536, 1 << 20] {
        let cp = multi_pair_critical_path(&p, PairPlacement::InterNode, 28, bytes, 64);
        assert_eq!(cp.zone(), Zone::BandwidthBound, "{bytes}B window 64");
    }
}

/// Phase attribution on the critical path also tiles the makespan: the
/// per-phase critical times sum to the total.
#[test]
fn phase_attribution_sums_to_makespan() {
    let p = cluster_c();
    let spec = p.spec(8, 8).expect("spec");
    let alg = Algorithm::Dpml {
        leaders: 4,
        inner: FlatAlg::RecursiveDoubling,
    };
    let run = profile_allreduce(&p, &spec, alg, 65_536).expect("profiled");
    let phase_sum: f64 = run.profile.phases.iter().map(|r| r.critical_s).sum();
    let makespan = run.report.makespan().seconds();
    assert!(
        (phase_sum - makespan).abs() < 1e-9,
        "phase sum {phase_sum} != makespan {makespan}"
    );
}
