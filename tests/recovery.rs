//! End-to-end fail-stop recovery: crash every DPML leader, one at a
//! time, at three points of the collective's timeline and prove the
//! healed continuation (a) leaves every survivor with the same fully
//! reduced vector as the fault-free run and (b) strictly beats a cold
//! restart on end-to-end latency. Also pins the zero-crash invariant:
//! a `ProcessFaults` plan that never fires is bit-identical to the
//! fault-free path.

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::heal::{run_dpml_failstop, FailstopOutcome};
use dpml::core::run::run_allreduce;
use dpml::engine::RankSet;
use dpml::fabric::presets::cluster_a;
use dpml::faults::{FaultPlan, ProcessFaults};

const LEADERS: u32 = 2;
const BYTES: u64 = 1 << 20; // 1 MiB, the paper's flagship message size
const INNER: FlatAlg = FlatAlg::RecursiveDoubling;

/// Crash points as fractions of the fault-free makespan: shortly after
/// the phase-1 deposits, mid-phase-3, and late in phase 4.
const CRASH_FRACS: [f64; 3] = [0.35, 0.6, 0.85];

fn crash_plan(rank: u32, at_secs: f64) -> FaultPlan {
    FaultPlan {
        process: ProcessFaults::single(rank, at_secs),
        ..FaultPlan::zero()
    }
}

#[test]
fn every_leader_heals_at_three_crash_times_with_identical_data() {
    let p = cluster_a();
    let spec = p.spec(4, 4).expect("4x4 spec");
    let alg = Algorithm::Dpml {
        leaders: LEADERS,
        inner: INNER,
    };
    let clean = run_allreduce(&p, &spec, alg, BYTES).expect("fault-free run");
    let world = spec.num_nodes * spec.ppn;
    let full = RankSet::full(world);
    // Sanity: the baseline we compare against is itself a complete
    // allreduce on every rank.
    for cov in &clean.report.result_coverage {
        assert!(cov.covers_exactly(0, BYTES, &full));
    }

    // Under `PerNode(l)` leaders sit at locals `j * ppn / l`: with
    // ppn = 4 and l = 2 that is locals {0, 2} on every node.
    let leader_ranks: Vec<u32> = (0..spec.num_nodes)
        .flat_map(|n| (0..LEADERS).map(move |j| n * spec.ppn + j * spec.ppn / LEADERS))
        .collect();
    assert_eq!(leader_ranks.len(), (spec.num_nodes * LEADERS) as usize);

    for &victim in &leader_ranks {
        for frac in CRASH_FRACS {
            let plan = crash_plan(victim, frac * clean.latency_us * 1e-6);
            let out = run_dpml_failstop(&p, &spec, LEADERS, INNER, BYTES, &plan)
                .expect("fail-stop run completes");
            let FailstopOutcome::Healed { report, recovery } = out else {
                panic!("rank {victim} at {frac}: expected a heal, got {out:?}");
            };

            // (a) Bit-identical reduced data: in the symbolic engine a
            // result buffer is correct iff it covers the whole vector
            // with exactly the full contribution set, so matching the
            // fault-free coverage is matching the reduced bytes.
            for (r, cov) in report.report.result_coverage.iter().enumerate() {
                if r as u32 == victim {
                    continue;
                }
                assert!(
                    cov.covers_exactly(0, BYTES, &full),
                    "rank {victim} at {frac}: survivor {r} diverged from the fault-free result"
                );
            }
            report
                .report
                .verify_allreduce_excluding(&[victim])
                .expect("healed run verifies");

            // (b) Healing strictly beats restarting from scratch.
            assert!(
                recovery.healed_latency_us < recovery.cold_restart_latency_us,
                "rank {victim} at {frac}: healed {} must beat cold restart {}",
                recovery.healed_latency_us,
                recovery.cold_restart_latency_us
            );
            assert_eq!(recovery.dead_ranks, vec![victim]);

            // Killing a leader always forces a re-election on its node
            // for its leader index.
            let (node, local) = (victim / spec.ppn, victim % spec.ppn);
            let j = local * LEADERS / spec.ppn;
            assert_eq!(
                recovery.reelections,
                vec![(node, j, recovery.reelections[0].2)],
                "rank {victim}: exactly one re-election on node {node}, index {j}"
            );
            assert_ne!(
                recovery.reelections[0].2, local,
                "replacement must differ from the dead local rank"
            );
            // Everyone in the healed leader comm of the lost partition
            // re-plans, as do the dead node's survivors.
            assert!(recovery.replanned_ranks.len() >= spec.num_nodes as usize);
            assert!(!recovery.replanned_ranks.contains(&victim));
        }
    }
}

#[test]
fn zero_crash_process_plan_is_bit_identical() {
    let p = cluster_a();
    let spec = p.spec(4, 4).expect("4x4 spec");
    let clean = run_allreduce(
        &p,
        &spec,
        Algorithm::Dpml {
            leaders: LEADERS,
            inner: INNER,
        },
        BYTES,
    )
    .expect("fault-free run");
    // A plan whose process-fault table is present but empty must not
    // perturb virtual time or data by a single bit.
    let plan = FaultPlan {
        process: ProcessFaults::default(),
        ..FaultPlan::zero()
    };
    let out = run_dpml_failstop(&p, &spec, LEADERS, INNER, BYTES, &plan).expect("zero-crash run");
    let FailstopOutcome::Clean { report } = out else {
        panic!("zero-crash plan must be clean, got {out:?}");
    };
    assert_eq!(
        clean.latency_us.to_bits(),
        report.latency_us.to_bits(),
        "zero-crash plan moved the clock"
    );
    assert_eq!(
        clean.report, report.report,
        "zero-crash plan changed the data"
    );
}
