//! End-to-end fault injection through the public facade: a zero plan is
//! bit-identical to the fault-free path, and the SHArP degradation ladder
//! (denial → fallback, flaky → retry) completes verified collectives.

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::resilience::{
    host_fallback_algorithm, run_allreduce_faulted, run_allreduce_resilient, FaultPolicy,
};
use dpml::core::run::run_allreduce;
use dpml::fabric::presets::{cluster_a, cluster_c};
use dpml::faults::{DataFaults, FaultPlan, ProcessFaults, SharpFaults};

#[test]
fn zero_intensity_plan_is_bit_identical_across_algorithms() {
    let p = cluster_c();
    let spec = p.spec(4, 8).expect("4x8 spec");
    for (alg, bytes) in [
        (Algorithm::RecursiveDoubling, 4 * 1024),
        (
            Algorithm::Dpml {
                leaders: 4,
                inner: FlatAlg::RecursiveDoubling,
            },
            128 * 1024,
        ),
        (
            Algorithm::DpmlPipelined {
                leaders: 4,
                chunks: 4,
            },
            1 << 20,
        ),
    ] {
        let clean = run_allreduce(&p, &spec, alg, bytes).expect("clean run");
        let faulted = run_allreduce_faulted(&p, &spec, alg, bytes, &FaultPlan::zero())
            .expect("zero-plan run");
        assert_eq!(
            clean.latency_us.to_bits(),
            faulted.latency_us.to_bits(),
            "{}: zero plan moved the clock",
            alg.name()
        );
        assert_eq!(
            clean.report,
            faulted.report,
            "{}: zero plan changed the report",
            alg.name()
        );
        // The canonical scenario at intensity zero must behave the same.
        let canon = run_allreduce_faulted(&p, &spec, alg, bytes, &FaultPlan::canonical(123, 0.0))
            .expect("canonical(0) run");
        assert_eq!(clean.latency_us.to_bits(), canon.latency_us.to_bits());
        // An armed fail-stop detector with zero scheduled crashes is
        // free: virtual time and data both stay bit-identical.
        let armed = FaultPlan {
            process: ProcessFaults {
                crashes: Vec::new(),
                lost_nodes: Vec::new(),
                detection_timeout: 1e-3,
            },
            ..FaultPlan::zero()
        };
        let watched = run_allreduce_faulted(&p, &spec, alg, bytes, &armed).expect("zero-crash run");
        assert_eq!(
            clean.latency_us.to_bits(),
            watched.latency_us.to_bits(),
            "{}: zero-crash process plan moved the clock",
            alg.name()
        );
        assert_eq!(
            clean.report,
            watched.report,
            "{}: zero-crash process plan changed the report",
            alg.name()
        );
    }
}

#[test]
fn noise_slows_but_never_corrupts() {
    let p = cluster_c();
    let spec = p.spec(4, 8).expect("4x8 spec");
    let alg = Algorithm::Dpml {
        leaders: 8,
        inner: FlatAlg::RecursiveDoubling,
    };
    let clean = run_allreduce(&p, &spec, alg, 64 * 1024).expect("clean run");
    let plan = FaultPlan::canonical(11, 1.0);
    let noisy = run_allreduce_faulted(&p, &spec, alg, 64 * 1024, &plan).expect("noisy run");
    // run_allreduce_faulted verifies internally; re-verify here to make the
    // e2e claim explicit.
    noisy
        .report
        .verify_allreduce()
        .expect("noisy run still correct");
    assert!(
        noisy.latency_us > clean.latency_us,
        "full-intensity faults must cost time: {} vs {}",
        noisy.latency_us,
        clean.latency_us
    );
}

#[test]
fn sharp_denial_degrades_to_verified_host_run() {
    let p = cluster_a();
    let spec = p.spec(4, 4).expect("4x4 spec");
    let plan = FaultPlan {
        sharp: SharpFaults {
            deny_groups: true,
            ..Default::default()
        },
        ..FaultPlan::zero()
    };
    let rep = run_allreduce_resilient(
        &p,
        &spec,
        Algorithm::SharpSocketLeader,
        256,
        &plan,
        FaultPolicy::default(),
    )
    .expect("degraded run completes");
    assert!(rep.fell_back);
    assert_eq!(rep.completed_with, host_fallback_algorithm(&spec).name());
    assert_eq!(rep.report.report.stats.sharp_ops, 0);
    assert_eq!(rep.report.report.stats.sharp_fallbacks, 1);
    rep.report
        .report
        .verify_allreduce()
        .expect("fallback run verifies");
}

#[test]
fn flaky_sharp_retries_and_accounts_time() {
    let p = cluster_a();
    let spec = p.spec(4, 4).expect("4x4 spec");
    let plan = FaultPlan {
        sharp: SharpFaults {
            flaky_attempts: 1,
            op_timeout: 5e-5,
            ..Default::default()
        },
        ..FaultPlan::zero()
    };
    let rep = run_allreduce_resilient(
        &p,
        &spec,
        Algorithm::SharpNodeLeader,
        512,
        &plan,
        FaultPolicy::default(),
    )
    .expect("flaky run completes");
    assert!(!rep.fell_back);
    assert_eq!(rep.sharp_retries, 1);
    assert_eq!(rep.report.report.stats.sharp_retries, 1);
    // One failed attempt burns the 50us op timeout plus 10us backoff.
    assert!(rep.latency_us >= rep.report.latency_us + 60.0 - 1e-9);
}

#[test]
fn wire_corruption_detected_and_retransmitted() {
    let p = cluster_c();
    let spec = p.spec(4, 8).expect("4x8 spec");
    let alg = Algorithm::Dpml {
        leaders: 4,
        inner: FlatAlg::RecursiveDoubling,
    };
    let clean = run_allreduce(&p, &spec, alg, 256 * 1024).expect("clean run");
    let plan = FaultPlan {
        seed: 17,
        data: DataFaults {
            max_retransmits: 64,
            ..DataFaults::wire(0.1, 0.05)
        },
        ..FaultPlan::zero()
    };
    let faulted =
        run_allreduce_faulted(&p, &spec, alg, 256 * 1024, &plan).expect("faulted run completes");
    faulted
        .report
        .verify_allreduce()
        .expect("retransmitted run still correct");
    let st = &faulted.report.stats;
    assert!(st.retransmits > 0, "a 10%/5% wire must retransmit");
    assert!(st.corruptions_detected > 0, "CRC must catch corrupt frames");
    assert!(
        st.undetected_risk > 0.0 && st.undetected_risk < 1e-6,
        "residual risk is detections * 2^-32, got {}",
        st.undetected_risk
    );
    assert!(
        faulted.latency_us > clean.latency_us,
        "retransmits must cost time: {} vs {}",
        faulted.latency_us,
        clean.latency_us
    );
}

#[test]
fn same_seed_same_timing_different_seed_differs() {
    let p = cluster_c();
    let spec = p.spec(2, 8).expect("2x8 spec");
    let alg = Algorithm::Dpml {
        leaders: 2,
        inner: FlatAlg::RecursiveDoubling,
    };
    let a = run_allreduce_faulted(&p, &spec, alg, 32 * 1024, &FaultPlan::canonical(1, 0.8))
        .expect("seed 1");
    let b = run_allreduce_faulted(&p, &spec, alg, 32 * 1024, &FaultPlan::canonical(1, 0.8))
        .expect("seed 1 again");
    assert_eq!(
        a.latency_us.to_bits(),
        b.latency_us.to_bits(),
        "same seed must replay exactly"
    );
    let c = run_allreduce_faulted(&p, &spec, alg, 32 * 1024, &FaultPlan::canonical(2, 0.8))
        .expect("seed 2");
    assert_ne!(
        a.latency_us.to_bits(),
        c.latency_us.to_bits(),
        "different seed, different noise"
    );
}
