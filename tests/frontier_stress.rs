//! Frontier-scheduler stress: tiny windows, maximum thread counts, big
//! worlds, repeated merges.
//!
//! The conservative causal-frontier executor (DESIGN.md §16) keeps its
//! bit-identity contract *structurally* — the serial pump stays the only
//! consumer of simulation state — so no amount of scheduling pressure
//! should ever shake a divergence loose. These tests apply the pressure
//! anyway:
//!
//! * pathologically small lookahead windows force maximal stall/recompute
//!   churn at the scatter/consume boundary;
//! * thread counts far beyond the host's cores force constant pool
//!   wake/sleep races in the round protocol;
//! * repeated runs of one scenario check run-to-run pool determinism,
//!   not just serial-vs-parallel agreement.
//!
//! The `*_nightly` hammer sweeps the paper-scale `b/16x16/1MB` world and
//! is `#[ignore]`d out of the tier-1 budget; CI runs it in the nightly
//! soak job (`cargo test -q -- --ignored`). The smoke variant covers the
//! same axes at tier-1 scale.

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::Parallelism;
use dpml::engine::{take_last_frontier_stats, SimConfig, Simulator};
use dpml::fabric::presets::{cluster_b, Preset};
use dpml::faults::FaultPlan;
use dpml::topology::RankMap;
use dpml_bench::PoolPolicy;

/// Run one scenario, returning the fully serialized report. `window`
/// `None` = the fabric-derived default lookahead.
fn run_json(
    preset: &Preset,
    (nodes, ppn): (u32, u32),
    alg: &Algorithm,
    bytes: u64,
    plan: &FaultPlan,
    parallelism: Parallelism,
    window: Option<f64>,
) -> String {
    let spec = preset.spec(nodes, ppn).expect("spec");
    let map = RankMap::block(&spec);
    let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch).expect("cfg");
    let world = alg.build(&map, bytes).expect("build");
    let mut sim = Simulator::new(&cfg)
        .with_faults(plan)
        .with_parallelism(parallelism);
    if let Some(w) = window {
        sim = sim.with_frontier_window(w);
    }
    let rep = sim.run(&world).expect("run");
    serde_json::to_string(&rep).expect("serialize")
}

fn stress_algorithms(ppn: u32) -> Vec<Algorithm> {
    vec![
        Algorithm::Ring,
        Algorithm::Dpml {
            leaders: ppn.min(4),
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::DpmlPipelined {
            leaders: ppn.min(2),
            chunks: 4,
        },
    ]
}

/// Tier-1 smoke: the same axes as the nightly hammer — tiny windows,
/// oversubscribed pools, fault plans — on a world small enough for the
/// default test budget.
#[test]
fn frontier_stress_smoke() {
    // Oversubscription is the point here: pin the sweep side down so the
    // frontier pools are the only source of extra threads (DESIGN.md §16).
    PoolPolicy::detect(1).apply();
    let preset = cluster_b();
    let plans = [FaultPlan::zero(), FaultPlan::canonical(77, 0.5)];
    for plan in &plans {
        for alg in stress_algorithms(4) {
            let baseline = run_json(
                &preset,
                (4, 4),
                &alg,
                1 << 16,
                plan,
                Parallelism::Serial,
                None,
            );
            for threads in [2usize, 8] {
                for window in [None, Some(1e-12)] {
                    let got = run_json(
                        &preset,
                        (4, 4),
                        &alg,
                        1 << 16,
                        plan,
                        Parallelism::Intra(threads),
                        window,
                    );
                    assert_eq!(
                        got,
                        baseline,
                        "{} diverged at intra({threads}) window {window:?}",
                        alg.name()
                    );
                }
            }
        }
    }
}

/// Nightly: the paper-scale target world (`b/16x16`, 1 MB) across the
/// full window × thread grid. Every cell must be byte-identical to the
/// serial baseline.
#[test]
#[ignore = "nightly frontier hammer — run with `cargo test -- --ignored`"]
fn frontier_hammer_paper_scale_nightly() {
    PoolPolicy::detect(1).apply();
    let preset = cluster_b();
    let plan = FaultPlan::zero();
    let bytes = 1 << 20;
    for alg in [
        Algorithm::Ring,
        Algorithm::Dpml {
            leaders: 16,
            inner: FlatAlg::RecursiveDoubling,
        },
    ] {
        let baseline = run_json(
            &preset,
            (16, 16),
            &alg,
            bytes,
            &plan,
            Parallelism::Serial,
            None,
        );
        for threads in [2usize, 4, 8, 16] {
            for window in [None, Some(1e-6), Some(1e-9), Some(1e-12)] {
                let got = run_json(
                    &preset,
                    (16, 16),
                    &alg,
                    bytes,
                    &plan,
                    Parallelism::Intra(threads),
                    window,
                );
                assert_eq!(
                    got,
                    baseline,
                    "{} diverged at intra({threads}) window {window:?}",
                    alg.name()
                );
            }
        }
    }
}

/// Nightly: merge determinism under churn. One faulted scenario, rerun
/// many times at maximum oversubscription with a one-picosecond window —
/// every repetition must produce the same bytes and actually exercise
/// the scatter/stall machinery (no silent serial fallback).
#[test]
#[ignore = "nightly frontier hammer — run with `cargo test -- --ignored`"]
fn frontier_merge_churn_is_deterministic_nightly() {
    PoolPolicy::detect(1).apply();
    let preset = cluster_b();
    let plan = FaultPlan::canonical(4242, 0.75);
    let alg = Algorithm::Dpml {
        leaders: 8,
        inner: FlatAlg::Ring,
    };
    let baseline = run_json(
        &preset,
        (8, 8),
        &alg,
        1 << 18,
        &plan,
        Parallelism::Serial,
        None,
    );
    for rep in 0..8 {
        let _ = take_last_frontier_stats();
        let got = run_json(
            &preset,
            (8, 8),
            &alg,
            1 << 18,
            &plan,
            Parallelism::Intra(16),
            Some(1e-12),
        );
        assert_eq!(got, baseline, "repetition {rep} diverged");
        let stats = take_last_frontier_stats().expect("frontier ran");
        assert_eq!(stats.threads, 16);
        assert!(stats.rounds > 0, "repetition {rep}: {stats:?}");
        assert_eq!(
            stats.scattered,
            stats.consumed + stats.stalls + stats.unused,
            "repetition {rep} leaked precomputed work: {stats:?}"
        );
    }
}
