//! End-to-end failure paths: broken schedules must produce structured,
//! diagnosable errors through the public facade — never hangs or panics.

use dpml::engine::program::BUF_INPUT;
use dpml::engine::{BufKey, ByteRange, SimConfig, SimError, Simulator, WorldProgram};
use dpml::fabric::presets::cluster_b;
use dpml::topology::{Rank, RankMap};

fn config(nodes: u32, ppn: u32) -> SimConfig {
    let preset = cluster_b();
    let spec = preset.spec(nodes, ppn).expect("spec");
    SimConfig::new(RankMap::block(&spec), preset.fabric, preset.switch).expect("topology")
}

#[test]
fn receive_without_sender_reports_blocked_ranks() {
    let cfg = config(2, 1);
    let mut w = WorldProgram::new(2, 64);
    // Rank 0 waits for a message rank 1 never sends; rank 1 finishes.
    let p = w.rank(Rank(0));
    let r = p.irecv(Rank(1), 0, BufKey::Priv(2));
    p.wait_all(vec![r]);
    let err = Simulator::new(&cfg).run(&w).unwrap_err();
    match err {
        SimError::Deadlock { blocked } => {
            assert_eq!(
                blocked.len(),
                1,
                "exactly the stuck rank is reported: {blocked:?}"
            );
            let (rank, _pc, why) = &blocked[0];
            assert_eq!(*rank, 0);
            assert!(
                !why.is_empty(),
                "the reason string must say what the rank waits on"
            );
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn mismatched_tags_deadlock_both_ranks() {
    let cfg = config(2, 1);
    let mut w = WorldProgram::new(2, 64);
    // Both ranks send with one tag and receive on another: classic tag
    // mismatch — every rank ends up blocked and named in the error.
    for r in 0..2u32 {
        let peer = Rank(1 - r);
        let p = w.rank(Rank(r));
        let s = p.isend(peer, 1, BUF_INPUT, ByteRange::whole(64));
        let recv = p.irecv(peer, 2, BufKey::Priv(2));
        p.wait_all(vec![s, recv]);
    }
    let err = Simulator::new(&cfg).run(&w).unwrap_err();
    match err {
        SimError::Deadlock { blocked } => {
            let ranks: Vec<u32> = blocked.iter().map(|(r, _, _)| *r).collect();
            assert_eq!(
                ranks,
                vec![0, 1],
                "both ranks must be reported: {blocked:?}"
            );
            let msg = SimError::Deadlock { blocked }.to_string();
            assert!(msg.contains("deadlock"), "{msg}");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn event_budget_stops_runaway_programs() {
    let cfg = config(2, 2);
    let mut w = WorldProgram::new(4, 1024);
    // A legitimate but chatty program: ping-pong enough times that a tiny
    // event budget trips before completion.
    for round in 0..50u32 {
        for r in 0..4u32 {
            let peer = Rank(r ^ 1);
            let p = w.rank(Rank(r));
            let s = p.isend(peer, round, BUF_INPUT, ByteRange::whole(1024));
            let recv = p.irecv(peer, round, BufKey::Priv(2));
            p.wait_all(vec![s, recv]);
        }
    }
    let err = Simulator::new(&cfg)
        .with_event_budget(100)
        .run(&w)
        .unwrap_err();
    match err {
        SimError::EventBudgetExceeded(budget) => assert_eq!(budget, 100),
        other => panic!("expected EventBudgetExceeded, got {other:?}"),
    }
    // The same program completes under the default budget.
    Simulator::new(&cfg)
        .run(&w)
        .expect("completes without the artificial cap");
}

#[test]
fn time_budget_converts_slow_runs_into_errors() {
    let cfg = config(2, 1);
    let mut w = WorldProgram::new(2, 8 << 20);
    for r in 0..2u32 {
        let peer = Rank(1 - r);
        let p = w.rank(Rank(r));
        let s = p.isend(peer, 0, BUF_INPUT, ByteRange::whole(8 << 20));
        let recv = p.irecv(peer, 0, BufKey::Priv(2));
        p.wait_all(vec![s, recv]);
    }
    // An 8MB exchange takes milliseconds of virtual time; a 10us budget
    // must trip.
    let err = Simulator::new(&cfg)
        .with_time_budget(10e-6)
        .run(&w)
        .unwrap_err();
    assert!(
        matches!(err, SimError::TimeBudgetExceeded(_)),
        "got {err:?}"
    );
}
