//! Cross-validation of the analytic cost model (paper Section 5) against
//! the discrete-event simulator: the model ignores contention and queueing,
//! so agreement is expected within a modest factor for compute/bandwidth-
//! dominated configurations, and the *argmin over leader counts* — the
//! decision the model exists to inform — should match.

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::run::run_allreduce;
use dpml::fabric::presets::cluster_b;
use dpml::model::{best_leader_count, leader_sweep, CostParams};

#[test]
fn model_tracks_simulation_for_medium_large() {
    let p = cluster_b();
    let spec = p.default_spec(16).unwrap();
    for bytes in [16 * 1024u64, 128 * 1024, 1 << 20] {
        for l in [1u32, 4, 16] {
            let sim = run_allreduce(
                &p,
                &spec,
                Algorithm::Dpml {
                    leaders: l,
                    inner: FlatAlg::RecursiveDoubling,
                },
                bytes,
            )
            .unwrap()
            .latency_us;
            let model = CostParams::from_fabric(&p.fabric, &spec, l, bytes, 1).t_allreduce() * 1e6;
            let ratio = sim / model;
            assert!(
                (0.5..3.0).contains(&ratio),
                "{bytes}B l={l}: sim {sim:.1}us vs model {model:.1}us (ratio {ratio:.2})"
            );
        }
    }
}

#[test]
fn model_and_sim_agree_on_best_leader_count_for_large() {
    let p = cluster_b();
    let spec = p.default_spec(16).unwrap();
    for bytes in [128 * 1024u64, 512 * 1024] {
        let cp = CostParams::from_fabric(&p.fabric, &spec, 1, bytes, 1);
        let model_best = best_leader_count(&cp);
        let sim_best = [1u32, 2, 4, 8, 16]
            .into_iter()
            .min_by(|&a, &b| {
                let la = run_allreduce(
                    &p,
                    &spec,
                    Algorithm::Dpml {
                        leaders: a,
                        inner: FlatAlg::RecursiveDoubling,
                    },
                    bytes,
                )
                .unwrap()
                .latency_us;
                let lb = run_allreduce(
                    &p,
                    &spec,
                    Algorithm::Dpml {
                        leaders: b,
                        inner: FlatAlg::RecursiveDoubling,
                    },
                    bytes,
                )
                .unwrap()
                .latency_us;
                la.total_cmp(&lb)
            })
            .unwrap();
        assert_eq!(model_best, sim_best, "{bytes}B");
    }
}

#[test]
fn model_sweep_is_monotone_where_paper_says() {
    // Section 5.3: for n >> 1, increasing l reduces the modeled latency.
    let p = cluster_b();
    let spec = p.default_spec(64).unwrap();
    let cp = CostParams::from_fabric(&p.fabric, &spec, 1, 1 << 20, 1);
    let sweep = leader_sweep(&cp);
    for w in sweep.windows(2) {
        assert!(
            w[1].time < w[0].time,
            "modeled latency must fall with l at 1MB: {:?}",
            sweep
        );
    }
}

#[test]
fn eq1_matches_flat_rd_simulation_loosely() {
    // Eq. (1) uses a single a/b pair; the simulated flat RD at ppn=1
    // (no intra-node complications) should land within a small factor.
    let p = cluster_b();
    let spec = p.spec(16, 1).unwrap();
    let bytes = 64 * 1024u64;
    let sim = run_allreduce(&p, &spec, Algorithm::RecursiveDoubling, bytes)
        .unwrap()
        .latency_us;
    let model = CostParams::from_fabric(&p.fabric, &spec, 1, bytes, 1).t_recursive_doubling() * 1e6;
    let ratio = sim / model;
    assert!(
        (0.4..2.5).contains(&ratio),
        "sim {sim:.1} vs Eq.1 {model:.1} ({ratio:.2})"
    );
}
