//! Cross-crate integration: every algorithm, on every cluster preset, over
//! a matrix of shapes and sizes — each run simulated and *proven* correct
//! by the engine's symbolic coverage verification.

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::run::run_allreduce;
use dpml::fabric::presets::{all_presets, cluster_a, cluster_b};

fn algorithms_for(sharp: bool, ppn: u32) -> Vec<Algorithm> {
    let mut algs = vec![
        Algorithm::RecursiveDoubling,
        Algorithm::Rabenseifner,
        Algorithm::Ring,
        Algorithm::BinomialReduceBcast,
        Algorithm::SingleLeader {
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::SingleLeader {
            inner: FlatAlg::Rabenseifner,
        },
        Algorithm::Dpml {
            leaders: 1,
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::Dpml {
            leaders: 2.min(ppn),
            inner: FlatAlg::Rabenseifner,
        },
        Algorithm::Dpml {
            leaders: 4.min(ppn),
            inner: FlatAlg::Ring,
        },
        Algorithm::DpmlPipelined {
            leaders: 2.min(ppn),
            chunks: 3,
        },
    ];
    if sharp {
        algs.push(Algorithm::SharpNodeLeader);
        algs.push(Algorithm::SharpSocketLeader);
    }
    algs
}

#[test]
fn every_algorithm_verifies_on_every_preset() {
    for preset in all_presets() {
        let spec = preset.spec(4, 4).expect("4x4 spec");
        for alg in algorithms_for(preset.fabric.has_sharp(), spec.ppn) {
            let rep = run_allreduce(&preset, &spec, alg, 6000)
                .unwrap_or_else(|e| panic!("{} {}: {e}", preset.id, alg.name()));
            assert!(rep.latency_us > 0.0);
        }
    }
}

#[test]
fn awkward_shapes_verify() {
    // Non-power-of-two nodes, odd ppn, vector not divisible by anything.
    let preset = cluster_b();
    for (nodes, ppn) in [(3u32, 5u32), (5, 3), (7, 1), (1, 7), (6, 6)] {
        let spec = preset.spec(nodes, ppn).expect("spec");
        for alg in algorithms_for(false, ppn) {
            run_allreduce(&preset, &spec, alg, 997)
                .unwrap_or_else(|e| panic!("{nodes}x{ppn} {}: {e}", alg.name()));
        }
    }
}

#[test]
fn tiny_vectors_verify() {
    let preset = cluster_b();
    let spec = preset.spec(4, 8).expect("spec");
    for bytes in [1u64, 2, 3, 7, 8] {
        for alg in algorithms_for(false, 8) {
            run_allreduce(&preset, &spec, alg, bytes)
                .unwrap_or_else(|e| panic!("{bytes}B {}: {e}", alg.name()));
        }
    }
}

#[test]
fn sharp_designs_verify_across_shapes() {
    let preset = cluster_a();
    for (nodes, ppn) in [(2u32, 1u32), (16, 1), (4, 4), (8, 28), (3, 5)] {
        let spec = preset.spec(nodes, ppn).expect("spec");
        for alg in [Algorithm::SharpNodeLeader, Algorithm::SharpSocketLeader] {
            run_allreduce(&preset, &spec, alg, 512)
                .unwrap_or_else(|e| panic!("{nodes}x{ppn} {}: {e}", alg.name()));
        }
    }
}

#[test]
fn paper_scale_shapes_verify() {
    // The exact shapes behind Figs. 4 and 7 (at reduced node counts the
    // figures' harnesses override).
    let a = cluster_a();
    let spec = a.default_spec(16).expect("16x28");
    run_allreduce(
        &a,
        &spec,
        Algorithm::Dpml {
            leaders: 16,
            inner: FlatAlg::RecursiveDoubling,
        },
        512 * 1024,
    )
    .expect("fig4 point");

    let d = dpml::fabric::presets::cluster_d();
    let spec = d.default_spec(8).expect("8x32");
    run_allreduce(
        &d,
        &spec,
        Algorithm::DpmlPipelined {
            leaders: 16,
            chunks: 8,
        },
        1 << 20,
    )
    .expect("fig7 point");
}
