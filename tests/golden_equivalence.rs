//! Golden-equivalence suite: locks the engine's observable behavior down
//! to the bit so the hot path can be rebuilt without moving a single
//! result (DESIGN.md §11).
//!
//! A 64-case matrix (4 clusters × 8 host-based algorithms × 2 sizes, on a
//! 4×4 cluster shape) runs traced through [`profile_allreduce`]; each case
//! is digested into the exact f64 bit patterns of its makespan, per-rank
//! finish times, per-resource utilization, and critical-path attribution
//! vector, plus every integer `RunStats` counter. The digests live in
//! `tests/golden/engine_v1.json` and were recorded from the pre-fast-path
//! engine; this test asserts the current engine reproduces every one
//! bit-exactly.
//!
//! Intentional behavior changes regenerate the file with
//! `GOLDEN_BLESS=1 cargo test --test golden_equivalence` — the diff then
//! shows exactly which cases moved, which is itself review signal.

use dpml_core::algorithms::{Algorithm, FlatAlg};
use dpml_core::profile::profile_allreduce_with;
use dpml_core::Parallelism;
use dpml_engine::CostKind;
use dpml_fabric::{presets, Preset};
use serde::{Deserialize, Serialize};

const GOLDEN_PATH: &str = "tests/golden/engine_v1.json";
const NODES: u32 = 4;
const PPN: u32 = 4;
const SIZES: [u64; 2] = [4096, 262144];

fn clusters() -> Vec<(&'static str, Preset)> {
    vec![
        ("a", presets::cluster_a()),
        ("b", presets::cluster_b()),
        ("c", presets::cluster_c()),
        ("d", presets::cluster_d()),
    ]
}

/// Eight host-based algorithms (SHArP designs are excluded so the same
/// matrix runs on all four clusters; SHArP timing is locked down by the
/// fig8/recovery suites instead).
fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::RecursiveDoubling,
        Algorithm::Rabenseifner,
        Algorithm::Ring,
        Algorithm::BinomialReduceBcast,
        Algorithm::SingleLeader {
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::Dpml {
            leaders: 2,
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::Dpml {
            leaders: 4,
            inner: FlatAlg::Ring,
        },
        Algorithm::DpmlPipelined {
            leaders: 2,
            chunks: 4,
        },
    ]
}

/// `f64` as its exact bit pattern — immune to decimal round-trip noise.
fn bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ResourceDigest {
    name: String,
    bytes_bits: String,
    mean_util_bits: String,
    peak_util_bits: String,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CaseDigest {
    cluster: String,
    algorithm: String,
    nodes: u32,
    ppn: u32,
    bytes: u64,
    makespan_bits: String,
    finish_time_bits: Vec<String>,
    messages: u64,
    inter_node_messages: u64,
    inter_node_bytes: u64,
    copies: u64,
    reduces: u64,
    sharp_ops: u64,
    events: u64,
    peak_flows: u64,
    resources: Vec<ResourceDigest>,
    /// Critical-path attribution, one f64 bit pattern per
    /// [`CostKind::ALL`] entry in order.
    critical_bits: Vec<String>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Goldens {
    version: u32,
    note: String,
    cases: Vec<CaseDigest>,
}

fn digest_case(
    tag: &str,
    preset: &Preset,
    alg: Algorithm,
    bytes: u64,
    parallelism: Parallelism,
) -> CaseDigest {
    let spec = preset.spec(NODES, PPN).expect("golden cluster shape");
    let run = profile_allreduce_with(preset, &spec, alg, bytes, parallelism)
        .unwrap_or_else(|e| panic!("golden case {tag}/{}/{bytes}: {e}", alg.name()));
    let report = &run.report;
    CaseDigest {
        cluster: tag.to_string(),
        algorithm: alg.name(),
        nodes: NODES,
        ppn: PPN,
        bytes,
        makespan_bits: bits(report.makespan().seconds()),
        finish_time_bits: report
            .finish_times
            .iter()
            .map(|t| bits(t.seconds()))
            .collect(),
        messages: report.stats.messages,
        inter_node_messages: report.stats.inter_node_messages,
        inter_node_bytes: report.stats.inter_node_bytes,
        copies: report.stats.copies,
        reduces: report.stats.reduces,
        sharp_ops: report.stats.sharp_ops,
        events: report.stats.events,
        peak_flows: report.stats.peak_flows as u64,
        resources: report
            .resources
            .iter()
            .map(|r| ResourceDigest {
                name: r.name.clone(),
                bytes_bits: bits(r.bytes),
                mean_util_bits: bits(r.mean_util),
                peak_util_bits: bits(r.peak_util),
            })
            .collect(),
        critical_bits: CostKind::ALL
            .iter()
            .map(|&k| bits(run.critical.total_of(k)))
            .collect(),
    }
}

fn compute_goldens(parallelism: Parallelism) -> Goldens {
    let mut cases = Vec::new();
    for (tag, preset) in clusters() {
        for alg in algorithms() {
            for &bytes in &SIZES {
                cases.push(digest_case(tag, &preset, alg, bytes, parallelism));
            }
        }
    }
    Goldens {
        version: 1,
        note: "Engine behavior digests (bit-exact f64 patterns). Regenerate only for \
               intentional behavior changes: GOLDEN_BLESS=1 cargo test --test golden_equivalence"
            .to_string(),
        cases,
    }
}

#[test]
fn engine_reproduces_golden_digests_bit_exactly() {
    check_against_goldens(Parallelism::Serial);
}

/// The causal-frontier scheduler must reproduce every golden digest at
/// every thread count — same file, no re-bless permitted (DESIGN.md §16:
/// intra-parallelism is a wall-clock knob, never a behavior knob).
#[test]
fn frontier_scheduler_reproduces_golden_digests_at_every_thread_count() {
    if std::env::var("GOLDEN_BLESS").as_deref() == Ok("1") {
        // Blessing is the serial test's job; digests are mode-invariant.
        return;
    }
    for threads in [2usize, 4, 8] {
        check_against_goldens(Parallelism::Intra(threads));
    }
}

fn check_against_goldens(parallelism: Parallelism) {
    let computed = compute_goldens(parallelism);
    assert_eq!(computed.cases.len(), 64, "the golden matrix is 4×8×2");

    if std::env::var("GOLDEN_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all("tests/golden").unwrap();
        let json = serde_json::to_string_pretty(&computed).unwrap();
        std::fs::write(GOLDEN_PATH, json + "\n").unwrap();
        eprintln!("blessed {} cases into {GOLDEN_PATH}", computed.cases.len());
        return;
    }

    let raw = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "{GOLDEN_PATH} missing ({e}); record it with \
             GOLDEN_BLESS=1 cargo test --test golden_equivalence"
        )
    });
    let golden: Goldens = serde_json::from_str(&raw).expect("parse golden file");
    assert_eq!(golden.version, 1);
    assert_eq!(
        golden.cases.len(),
        computed.cases.len(),
        "golden case count changed; re-bless if intentional"
    );

    let mut mismatches = Vec::new();
    for (want, got) in golden.cases.iter().zip(&computed.cases) {
        let key = (&want.cluster, &want.algorithm, want.bytes);
        assert_eq!(
            key,
            (&got.cluster, &got.algorithm, got.bytes),
            "golden matrix order changed; re-bless if intentional"
        );
        if want != got {
            mismatches.push(format!(
                "cluster {} {} @ {}B:\n  golden: {:?}\n  got:    {:?}",
                want.cluster, want.algorithm, want.bytes, want, got
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} golden cases diverged under {parallelism} (bit-exact check):\n{}",
        mismatches.len(),
        golden.cases.len(),
        mismatches.join("\n")
    );
}
