//! Tier-1 regression-corpus replay (DESIGN.md §13).
//!
//! Every reproducer under `tests/corpus/` was mined by a chaos campaign,
//! minimized by the delta-debugging shrinker, and committed with the
//! outcome digest observed at mining time. Replaying them here pins the
//! simulator bit-exactly: any drift in latency bits, failure class, or
//! detail string fails tier-1 with the offending file named.

use dpml::chaos::shrink::known_bad_case;
use dpml::chaos::{load_dir, replay_dir, shrink_case, SCHEMA_VERSION};
use dpml::faults::fault_count;
use std::path::Path;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus"))
}

#[test]
fn corpus_is_nonempty_and_well_formed() {
    let reps = load_dir(corpus_dir()).expect("corpus dir must load");
    assert!(
        !reps.is_empty(),
        "tests/corpus must hold at least one mined reproducer"
    );
    for (path, r) in &reps {
        assert_eq!(r.schema, SCHEMA_VERSION, "{}: schema drift", path.display());
        assert!(!r.signature.is_empty());
        assert_eq!(r.expected_digest.len(), 16, "digest must be 16 hex chars");
    }
}

#[test]
fn corpus_replays_bit_exactly() {
    let (count, drifts) = replay_dir(corpus_dir()).expect("corpus dir must load");
    assert!(count > 0);
    for (path, why) in &drifts {
        eprintln!("DRIFT {}: {why}", path.display());
    }
    assert!(
        drifts.is_empty(),
        "{} of {count} corpus reproducer(s) drifted — the simulator's \
         outcome digests changed; re-mine with `dpml chaos mine` if the \
         change is intentional",
        drifts.len()
    );
}

#[test]
fn shrinker_meets_three_fault_acceptance_bound() {
    let (sc, plan) = known_bad_case(0xc4a0_5eed);
    let before = fault_count(&plan);
    assert!(before >= 6, "seeded known-bad plan must start fault-heavy");
    let shrunk = shrink_case(&sc, &plan, 400);
    assert!(
        shrunk.final_faults <= 3,
        "shrinker left {} faults (> 3) on the seeded known-bad plan",
        shrunk.final_faults
    );
    assert_eq!(
        shrunk.signature, "err:integrity-budget-exhausted",
        "shrinking must preserve the failure signature"
    );
}
