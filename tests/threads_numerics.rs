//! Property-based numerical validation of the real-threads DPML runtime:
//! for arbitrary cluster shapes, leader counts, and inputs, the four-phase
//! algorithm must compute exactly what a serial sum computes (within
//! reassociation tolerance), and agree with flat recursive doubling.

use dpml::shm::kernels::{assert_close, serial_reference};
use dpml::shm::{IntraAlgo, NodeRuntime, ThreadCluster};
use proptest::prelude::*;

fn gen_inputs(p: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..p)
        .map(|r| {
            (0..n)
                .map(|i| {
                    let x = seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add((r * n + i) as u64)
                        .wrapping_mul(0xBF58476D1CE4E5B9);
                    ((x >> 40) as f64) / 256.0 - 32_768.0
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cluster_dpml_matches_serial(
        nodes in 1usize..5,
        ppn in 1usize..5,
        n in 0usize..200,
        l_seed in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let l = 1 + l_seed % ppn;
        let c = ThreadCluster::new(nodes, ppn);
        let inputs = gen_inputs(c.world_size(), n, seed);
        let got = c.allreduce_dpml(&inputs, l);
        let expect = c.serial(&inputs);
        for g in &got {
            assert_close(g, &expect, 1e-9);
        }
    }

    #[test]
    fn cluster_rd_matches_serial(
        nodes in 1usize..5,
        ppn in 1usize..4,
        n in 0usize..150,
        seed in 0u64..10_000,
    ) {
        let c = ThreadCluster::new(nodes, ppn);
        let inputs = gen_inputs(c.world_size(), n, seed);
        let got = c.allreduce_recursive_doubling(&inputs);
        let expect = c.serial(&inputs);
        for g in &got {
            assert_close(g, &expect, 1e-9);
        }
    }

    #[test]
    fn intranode_multi_leader_matches_reference(
        ppn in 1usize..7,
        n in 0usize..300,
        l_seed in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let l = 1 + l_seed % ppn;
        let rt = NodeRuntime::new(ppn);
        let inputs = gen_inputs(ppn, n, seed);
        let got = rt.allreduce(&inputs, IntraAlgo::MultiLeader { leaders: l });
        let expect = serial_reference(&inputs);
        for g in &got {
            assert_close(g, &expect, 1e-9);
        }
    }
}

#[test]
fn dpml_and_flat_rd_agree_exactly_shaped() {
    // Deterministic cross-check on a shape big enough to exercise the
    // non-power-of-two fold (6 nodes) and uneven partitions (n % l != 0).
    let c = ThreadCluster::new(6, 3);
    let inputs = gen_inputs(c.world_size(), 1013, 42);
    let a = c.allreduce_dpml(&inputs, 3);
    let b = c.allreduce_recursive_doubling(&inputs);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_close(x, y, 1e-9);
    }
}
