//! Nightly chaos-soak and full-matrix integrity coverage.
//!
//! These tests sweep the *entire* cluster × algorithm matrix under heavy
//! fault plans — far more simulation than the tier-1 budget allows — so
//! they are `#[ignore]`d under a default `cargo test -q` and run nightly
//! in CI with `cargo test -q -- --ignored` (see
//! `.github/workflows/ci.yml`). Both fan their matrices out over the
//! scenario-parallel sweep runner; every point derives its own RNG
//! stream, so a failure reproduces identically when re-run serially.

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::integrity::{
    run_allreduce_verified, IntegrityErrorKind, IntegrityPolicy, VerifiedError,
};
use dpml::core::run::run_allreduce;
use dpml::fabric::presets::all_presets;
use dpml::faults::{DataFaults, FaultPlan};
use dpml_bench::{sweep, PoolPolicy};

fn matrix(ppn: u32) -> Vec<Algorithm> {
    let mut algs = vec![
        Algorithm::RecursiveDoubling,
        Algorithm::Rabenseifner,
        Algorithm::Ring,
        Algorithm::BinomialReduceBcast,
        Algorithm::SingleLeader {
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::Dpml {
            leaders: 2,
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::DpmlPipelined {
            leaders: 2,
            chunks: 4,
        },
    ];
    if ppn >= 4 {
        algs.push(Algorithm::Dpml {
            leaders: 4,
            inner: FlatAlg::Ring,
        });
    }
    if ppn >= 16 {
        algs.push(Algorithm::Dpml {
            leaders: 16,
            inner: FlatAlg::RecursiveDoubling,
        });
    }
    algs
}

/// Every preset × algorithm × fault seed under the canonical chaos plan
/// (OS noise, brownout, link flap) *plus* wire corruption and drops: each
/// run must end bit-identical to the fault-free baseline or with a
/// structured integrity error — never a silently wrong answer.
#[test]
#[ignore = "nightly chaos soak — run with `cargo test -- --ignored`"]
fn chaos_soak_no_silent_escapes() {
    // Soak scenarios run serial engines, so every hardware thread goes to
    // the inter-scenario sweep side; deriving the split from PoolPolicy
    // (rather than letting rayon default) keeps this test from
    // oversubscribing hosts where an earlier test raised the intra knob.
    PoolPolicy::detect(1).apply();
    let policy = IntegrityPolicy::default();
    let mut scenarios = Vec::new();
    for preset in all_presets() {
        let spec = preset.spec(4, 4).expect("spec");
        for alg in matrix(spec.ppn) {
            for seed in 1..=5u64 {
                scenarios.push((preset.clone(), spec, alg, seed));
            }
        }
    }
    let total = scenarios.len();
    let outcomes = sweep(scenarios, |(preset, spec, alg, seed)| {
        let plan = FaultPlan {
            seed,
            data: DataFaults {
                max_retransmits: 64,
                ..DataFaults::wire(0.02, 0.01)
            },
            ..FaultPlan::canonical(seed, 0.8)
        };
        match run_allreduce_verified(&preset, &spec, alg, 65_536, &plan, policy) {
            Ok(_) => None,
            Err(VerifiedError::Integrity(e)) if e.kind != IntegrityErrorKind::VerifyMismatch => {
                None // structured error: detected, reported, acceptable
            }
            Err(e) => Some(format!(
                "{}/{} seed {seed}: silent escape or harness failure: {e:?}",
                preset.id,
                alg.name()
            )),
        }
    });
    let escapes: Vec<String> = outcomes.into_iter().flatten().collect();
    assert!(
        escapes.is_empty(),
        "{} of {total} chaos-soak runs escaped:\n{}",
        escapes.len(),
        escapes.join("\n")
    );
}

/// The full preset × algorithm × size matrix, fault-free: every run must
/// pass the engine's coverage verification (every rank holds every
/// contribution exactly where it should).
#[test]
#[ignore = "nightly full-matrix integrity — run with `cargo test -- --ignored`"]
fn full_matrix_integrity_verifies_everywhere() {
    // Same pool split as above: serial engines, all threads to the sweep.
    PoolPolicy::detect(1).apply();
    let mut scenarios = Vec::new();
    for preset in all_presets() {
        for (nodes, ppn) in [(2u32, 2u32), (4, 4), (8, 8)] {
            let spec = preset.spec(nodes, ppn).expect("spec");
            for alg in matrix(spec.ppn) {
                for bytes in [1_024u64, 65_536, 1 << 20] {
                    scenarios.push((preset.clone(), spec, alg, bytes));
                }
            }
        }
    }
    let total = scenarios.len();
    let failures: Vec<String> = sweep(scenarios, |(preset, spec, alg, bytes)| {
        run_allreduce(&preset, &spec, alg, bytes).err().map(|e| {
            format!(
                "{}/{}x{}/{}/{bytes}B: {e}",
                preset.id,
                spec.num_nodes,
                spec.ppn,
                alg.name()
            )
        })
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} of {total} matrix points failed verification:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
