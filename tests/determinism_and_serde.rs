//! Repeatability and serialization: identical configurations must produce
//! bit-identical reports (the engine is deterministic by construction), and
//! every public result type must round-trip through serde for the bench
//! harness result files.

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::run::run_allreduce;
use dpml::engine::RunReport;
use dpml::fabric::presets::{cluster_a, cluster_c};

fn run_once(alg: Algorithm, bytes: u64) -> dpml::core::run::AllreduceReport {
    let p = cluster_c();
    let spec = p.spec(4, 8).unwrap();
    run_allreduce(&p, &spec, alg, bytes).unwrap()
}

#[test]
fn repeated_runs_are_bit_identical() {
    for alg in [
        Algorithm::Ring,
        Algorithm::Dpml {
            leaders: 4,
            inner: FlatAlg::Rabenseifner,
        },
        Algorithm::DpmlPipelined {
            leaders: 8,
            chunks: 4,
        },
    ] {
        let a = run_once(alg, 100_000);
        let b = run_once(alg, 100_000);
        assert_eq!(a.latency_us, b.latency_us, "{}", alg.name());
        assert_eq!(a.report, b.report, "{}", alg.name());
    }
}

#[test]
fn sharp_runs_are_deterministic_too() {
    let p = cluster_a();
    let spec = p.spec(8, 28).unwrap();
    let a = run_allreduce(&p, &spec, Algorithm::SharpSocketLeader, 1024).unwrap();
    let b = run_allreduce(&p, &spec, Algorithm::SharpSocketLeader, 1024).unwrap();
    assert_eq!(a.report, b.report);
}

#[test]
fn run_report_serde_round_trip() {
    let rep = run_once(Algorithm::Ring, 4096);
    let json = serde_json::to_string(&rep.report).expect("serialize");
    let back: RunReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(rep.report, back);
}

#[test]
fn fabric_serde_round_trip() {
    // `Preset::id` is a &'static str (not deserializable from owned JSON);
    // the speed model itself must round-trip for result files.
    for preset in dpml::fabric::presets::all_presets() {
        let json = serde_json::to_string(&preset.fabric).expect("serialize");
        let back: dpml::fabric::Fabric = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(preset.fabric, back);
    }
}

#[test]
fn algorithm_serde_round_trip() {
    let algs = vec![
        Algorithm::RecursiveDoubling,
        Algorithm::Dpml {
            leaders: 16,
            inner: FlatAlg::Ring,
        },
        Algorithm::DpmlPipelined {
            leaders: 8,
            chunks: 4,
        },
        Algorithm::SharpSocketLeader,
    ];
    let json = serde_json::to_string(&algs).expect("serialize");
    let back: Vec<Algorithm> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(algs, back);
}

#[test]
fn world_program_serde_round_trip() {
    use dpml::topology::{ClusterSpec, RankMap};
    let spec = ClusterSpec::new(2, 1, 4, 2).unwrap();
    let map = RankMap::block(&spec);
    let w = Algorithm::Ring.build(&map, 1000).unwrap();
    let json = serde_json::to_string(&w).expect("serialize");
    let back: dpml::engine::WorldProgram = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(w, back);
}

#[test]
fn parallel_sweep_matches_serial_byte_for_byte() {
    // The scenario-parallel sweep runner must leak no thread-schedule
    // dependence into results: the same seeded faulty matrix run through
    // the parallel runner twice and through the single-threaded reference
    // must serialize to byte-identical JSON. Each scenario gets its RNG
    // stream from (base_seed, index) only, and results collect in input
    // order regardless of completion order.
    use dpml::core::integrity::{run_allreduce_verified, IntegrityPolicy};
    use dpml::faults::{DataFaults, FaultPlan};
    use dpml_bench::{sweep_seeded, sweep_serial};

    let preset = cluster_c();
    let spec = preset.spec(2, 4).unwrap();
    let algs = [
        Algorithm::Ring,
        Algorithm::Dpml {
            leaders: 2,
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::DpmlPipelined {
            leaders: 2,
            chunks: 2,
        },
    ];
    // Six scenarios: each algorithm twice, under different derived streams.
    let scenarios: Vec<Algorithm> = algs.iter().cycle().take(6).copied().collect();
    let run = |alg: Algorithm, seed: u64| {
        let plan = FaultPlan {
            seed,
            data: DataFaults {
                max_retransmits: 64,
                ..DataFaults::wire(0.02, 0.01)
            },
            ..FaultPlan::canonical(seed, 0.5)
        };
        let rep = run_allreduce_verified(
            &preset,
            &spec,
            alg,
            16_384,
            &plan,
            IntegrityPolicy::default(),
        )
        .expect("verified faulty run");
        serde_json::to_string(&rep).expect("serialize")
    };
    let par1 = sweep_seeded(0xD5, scenarios.clone(), run);
    let par2 = sweep_seeded(0xD5, scenarios.clone(), run);
    let serial = sweep_serial(0xD5, scenarios, run);
    assert_eq!(par1, par2, "two parallel sweeps diverged");
    assert_eq!(par1, serial, "parallel sweep differs from serial reference");
}
