//! Differential lockdown of the causal-frontier scheduler (DESIGN.md §16).
//!
//! The frontier executor's whole contract is *bit-identity*: for any
//! world, any fault plan, and any thread count, its output — the full
//! serialized [`RunReport`] on success, the structured [`SimError`] on
//! failure — must equal the serial pump's byte for byte. These proptest
//! families throw randomized geometry × algorithm × seeded fault plans
//! at both executors and compare the results wholesale; a fourth family
//! extends the contract through the checkpoint pipeline under injected
//! storage faults.
//!
//! Any divergence is mined into `tests/corpus/` in the chaos
//! reproducer format (`dpml::chaos::corpus::Reproducer`), so a failing
//! case becomes a permanent regression fixture replayable by the
//! nightly corpus job — the panic message names the file.
//!
//! Together the families run 256 cases per CI invocation (112 + 64 +
//! 56 + 24), each case executing serial and parallel variants.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dpml::chaos::{Reproducer, Scenario};
use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::{
    run_allreduce_checkpointed, ChunkControl, Parallelism, SweepCheckpoint, SweepEnd,
};
use dpml::engine::sim::SimError;
use dpml::engine::{SimConfig, Simulator};
use dpml::fabric::presets::{cluster_b, cluster_c, cluster_d, Preset};
use dpml::faults::storage::{StorageFaultPlan, StorageFaults};
use dpml::faults::{DataFaults, FaultPlan, LinkFault, ProcessFault};
use dpml::serve::checkpoint::CheckpointStore;
use dpml::topology::RankMap;
use proptest::prelude::*;

/// Deterministic algorithm pick from small integers, paired with its
/// `Algorithm::parse` spelling so a mined reproducer replays the exact
/// same schedule. SHArP designs are excluded: they need an oracle and
/// are locked down separately by the golden suite at every thread count.
fn pick_algorithm(
    alg_pick: usize,
    flat_pick: usize,
    leaders: u32,
    chunks: u32,
) -> (Algorithm, String) {
    let (inner, inner_spec) = match flat_pick % 3 {
        0 => (FlatAlg::RecursiveDoubling, "rd"),
        1 => (FlatAlg::Rabenseifner, "rab"),
        _ => (FlatAlg::Ring, "ring"),
    };
    match alg_pick % 7 {
        0 => (Algorithm::RecursiveDoubling, "rd".into()),
        1 => (Algorithm::Rabenseifner, "rab".into()),
        2 => (Algorithm::Ring, "ring".into()),
        3 => (Algorithm::BinomialReduceBcast, "binomial".into()),
        4 => (
            Algorithm::SingleLeader { inner },
            format!("single-leader:{inner_spec}"),
        ),
        5 => (
            Algorithm::Dpml { leaders, inner },
            format!("dpml:{leaders}:{inner_spec}"),
        ),
        _ => (
            Algorithm::DpmlPipelined { leaders, chunks },
            format!("dpml-pipelined:{leaders}:{chunks}"),
        ),
    }
}

fn pick_preset(preset_pick: usize) -> Preset {
    match preset_pick % 3 {
        0 => cluster_b(),
        1 => cluster_c(),
        _ => cluster_d(),
    }
}

/// Run one raw engine case under `parallelism`. `Ok` carries the full
/// serialized report — every field, every per-rank span — so the
/// comparison can't miss a divergence the way a latency check could;
/// `Err` carries the structured engine error verbatim.
fn sim_case(
    preset: &Preset,
    nodes: u32,
    ppn: u32,
    alg: Algorithm,
    bytes: u64,
    plan: &FaultPlan,
    parallelism: Parallelism,
) -> Result<String, SimError> {
    let spec = preset
        .spec(nodes, ppn)
        .expect("geometry in generator range");
    let map = RankMap::block(&spec);
    let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch)
        .expect("preset fabric is always consistent");
    let world = alg
        .build(&map, bytes)
        .expect("generator picks valid schedules");
    Simulator::new(&cfg)
        .with_faults(plan)
        .with_parallelism(parallelism)
        .run(&world)
        .map(|rep| serde_json::to_string(&rep).expect("RunReport serializes"))
}

/// Compare a serial and a parallel outcome; on divergence, mine the
/// case into `tests/corpus/` as a chaos reproducer and panic with the
/// mined path so CI failures arrive with their regression fixture
/// already written.
fn expect_identical(
    sc: &Scenario,
    plan: &FaultPlan,
    threads: usize,
    serial: &Result<String, SimError>,
    parallel: &Result<String, SimError>,
) {
    if serial == parallel {
        return;
    }
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let notes = format!(
        "parallel-differential: serial vs intra({threads}) divergence on {}",
        sc.id()
    );
    let mined = Reproducer::capture(sc, plan, &notes)
        .save(&corpus)
        .map(|p| p.display().to_string())
        .unwrap_or_else(|e| format!("<corpus save failed: {e}>"));
    let clip = |r: &Result<String, SimError>| match r {
        Ok(json) => {
            let head: String = json.chars().take(160).collect();
            format!("Ok({head}…)")
        }
        Err(e) => format!("Err({}: {e})", e.label()),
    };
    panic!(
        "frontier scheduler diverged from serial at intra({threads}) on {}\n\
         reproducer mined to {mined}\n  serial:   {}\n  parallel: {}",
        sc.id(),
        clip(serial),
        clip(parallel),
    );
}

fn scenario(preset: &Preset, nodes: u32, ppn: u32, alg_spec: &str, bytes: u64) -> Scenario {
    Scenario {
        preset: preset.id.to_string(),
        nodes,
        ppn,
        alg: alg_spec.to_string(),
        bytes,
    }
}

const THREADS: [usize; 3] = [2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(112))]

    /// Family 1: clean runs and the canonical chaos plan (OS noise,
    /// brownout, link flap) across random geometry, algorithms, sizes,
    /// and thread counts. The happy path and the perturbed-but-successful
    /// path must both be bit-identical.
    #[test]
    fn frontier_matches_serial_on_random_worlds(
        preset_pick in 0usize..3,
        nodes in 1u32..6,
        ppn in 1u32..6,
        bytes in 1u64..16_384,
        alg_pick in 0usize..7,
        flat_pick in 0usize..3,
        l_seed in 0u32..8,
        k in 1u32..5,
        t_pick in 0usize..3,
        seed in 0u64..1_000_000,
        intensity_pick in 0usize..4,
    ) {
        let preset = pick_preset(preset_pick);
        let (alg, alg_spec) = pick_algorithm(alg_pick, flat_pick, 1 + l_seed % ppn, k);
        let plan = if intensity_pick == 0 {
            FaultPlan::zero()
        } else {
            FaultPlan::canonical(seed, 0.25 * intensity_pick as f64)
        };
        let threads = THREADS[t_pick];
        let serial = sim_case(&preset, nodes, ppn, alg, bytes, &plan, Parallelism::Serial);
        let par = sim_case(&preset, nodes, ppn, alg, bytes, &plan, Parallelism::Intra(threads));
        expect_identical(&scenario(&preset, nodes, ppn, &alg_spec, bytes), &plan, threads, &serial, &par);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Family 2: silent-data-corruption plans. Wire corruption, drops,
    /// and shm bit-flips drive the engine's retransmission machinery;
    /// small retry budgets push some cases onto the
    /// `RetryBudgetExhausted` error path, so both the recovered-report
    /// bytes and the structured failures get compared.
    #[test]
    fn frontier_matches_serial_under_data_faults(
        nodes in 1u32..5,
        ppn in 1u32..5,
        bytes in 64u64..32_768,
        alg_pick in 0usize..7,
        flat_pick in 0usize..3,
        l_seed in 0u32..8,
        seed in 0u64..1_000_000,
        corrupt_pm in 0u32..80,
        drop_pm in 0u32..40,
        flip_pm in 0u32..20,
        retries in 1u32..64,
        burst_pick in 0usize..3,
        t_pick in 0usize..3,
    ) {
        let preset = cluster_b();
        let (alg, alg_spec) = pick_algorithm(alg_pick, flat_pick, 1 + l_seed % ppn, 2);
        let mut data = DataFaults::wire(corrupt_pm as f64 / 1000.0, drop_pm as f64 / 1000.0);
        data.shm_flip_rate = flip_pm as f64 / 1000.0;
        data.max_retransmits = retries;
        data.burst = match burst_pick {
            0 => None,
            1 => Some((0.0, 50e-6)),
            _ => Some((10e-6, 200e-6)),
        };
        let plan = FaultPlan { seed, data, ..FaultPlan::zero() };
        let threads = THREADS[t_pick];
        let serial = sim_case(&preset, nodes, ppn, alg, bytes, &plan, Parallelism::Serial);
        let par = sim_case(&preset, nodes, ppn, alg, bytes, &plan, Parallelism::Intra(threads));
        expect_identical(&scenario(&preset, nodes, ppn, &alg_spec, bytes), &plan, threads, &serial, &par);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(56))]

    /// Family 3: hard failures. Severed links and fail-stop rank
    /// crashes surface structured `LinkDown` / `RankDead` errors — the
    /// frontier scheduler must diagnose the identical node/rank at the
    /// identical virtual time, not merely "an" error. Late crash times
    /// also exercise the run-completed-before-the-crash success path.
    #[test]
    fn frontier_matches_serial_under_link_and_process_faults(
        preset_pick in 0usize..3,
        nodes in 2u32..6,
        ppn in 1u32..5,
        bytes in 1u64..8_192,
        alg_pick in 0usize..7,
        flat_pick in 0usize..3,
        l_seed in 0u32..8,
        seed in 0u64..1_000_000,
        sever_pick in 0usize..3,
        crash_rank_seed in 0u32..64,
        crash_at_us in 0u32..400,
        t_pick in 0usize..3,
    ) {
        let preset = pick_preset(preset_pick);
        let (alg, alg_spec) = pick_algorithm(alg_pick, flat_pick, 1 + l_seed % ppn, 3);
        let mut plan = FaultPlan { seed, ..FaultPlan::zero() };
        match sever_pick {
            // Sever one node's link from t=0.
            0 => plan.links.push(LinkFault {
                node: Some(nodes - 1),
                start: 0.0,
                end: None,
                bw_factor: 0.0,
                msg_rate_factor: 1.0,
            }),
            // Crash one rank at a randomized virtual time.
            1 => plan.process.crashes.push(ProcessFault {
                rank: crash_rank_seed % (nodes * ppn),
                crash_at: crash_at_us as f64 * 1e-6,
            }),
            // Both at once: whichever fault bites first must win
            // identically under both executors.
            _ => {
                plan.links.push(LinkFault {
                    node: Some(0),
                    start: 30e-6,
                    end: None,
                    bw_factor: 0.0,
                    msg_rate_factor: 1.0,
                });
                plan.process.crashes.push(ProcessFault {
                    rank: crash_rank_seed % (nodes * ppn),
                    crash_at: crash_at_us as f64 * 1e-6,
                });
            }
        }
        let threads = THREADS[t_pick];
        let serial = sim_case(&preset, nodes, ppn, alg, bytes, &plan, Parallelism::Serial);
        let par = sim_case(&preset, nodes, ppn, alg, bytes, &plan, Parallelism::Intra(threads));
        expect_identical(&scenario(&preset, nodes, ppn, &alg_spec, bytes), &plan, threads, &serial, &par);
    }
}

/// Distinguishes the per-case temp dirs of concurrent test binaries and
/// successive proptest cases.
static STORE_TAG: AtomicU64 = AtomicU64::new(0);

/// Drive a full checkpointed sweep under `parallelism`, persisting every
/// chunk through a fault-injected [`CheckpointStore`]. Returns the
/// serialized final checkpoint, the per-save outcome log, and whatever
/// the store recovers afterwards — all of which must be invariant under
/// the parallelism knob, because the storage fault schedule is pure in
/// `(seed, op, len)` and the frontier scheduler feeds it identical bytes.
fn checkpointed_sweep(
    scenarios: &[(Algorithm, u64)],
    chunk: u32,
    storage_seed: u64,
    torn_pm: u32,
    flip_pm: u32,
    parallelism: Parallelism,
) -> (String, Vec<String>, Option<String>) {
    let preset = cluster_b();
    let spec = preset.spec(3, 2).unwrap();
    let dir = std::env::temp_dir().join(format!(
        "dpml-pdiff-{}-{}",
        std::process::id(),
        STORE_TAG.fetch_add(1, Ordering::Relaxed)
    ));
    let faults = StorageFaults::new(StorageFaultPlan {
        torn_write_rate: torn_pm as f64 / 100.0,
        bit_flip_rate: flip_pm as f64 / 100.0,
        ..StorageFaultPlan::quiet(storage_seed)
    });
    let store = CheckpointStore::new(&dir, 1).with_faults(Some(Arc::new(faults)));
    let mut ckpt = SweepCheckpoint::new("pdiff".into(), scenarios.len() as u32, chunk);
    let mut saves = Vec::new();
    let end = run_allreduce_checkpointed(
        &preset,
        &spec,
        scenarios,
        &mut ckpt,
        |_| ChunkControl::Proceed {
            event_budget: None,
            time_budget_s: None,
            parallelism,
        },
        |snapshot| {
            saves.push(match store.save(9, snapshot) {
                Ok(()) => "ok".to_string(),
                Err(e) => format!("err: {e}"),
            });
        },
    );
    assert_eq!(end, SweepEnd::Completed);
    let recovered = store
        .load(9, "pdiff", scenarios.len() as u32, chunk)
        .map(|l| {
            format!(
                "fallbacks={} ckpt={}",
                l.fallbacks,
                serde_json::to_string(&l.ckpt).unwrap()
            )
        });
    std::fs::remove_dir_all(&dir).ok();
    (serde_json::to_string(&ckpt).unwrap(), saves, recovered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Family 4: storage-fault plans through the checkpoint pipeline.
    /// A serial and a frontier-parallel sweep persist their chunks
    /// through stores driven by the *same* seeded storage-fault plan:
    /// the save outcome log (which writes tore, which bits flipped),
    /// the final in-memory checkpoint, and the post-hoc recovery result
    /// must all be identical — storage chaos composes with intra-run
    /// parallelism without disturbing determinism.
    #[test]
    fn checkpointed_sweep_with_storage_faults_is_parallelism_invariant(
        storage_seed in 0u64..1_000_000,
        torn_pm in 0u32..35,
        flip_pm in 0u32..35,
        chunk in 1u32..4,
        size_pick in 0usize..3,
        t_pick in 0usize..3,
    ) {
        let bytes = [512u64, 4_096, 16_384][size_pick];
        let scenarios = vec![
            (Algorithm::Ring, bytes),
            (Algorithm::RecursiveDoubling, bytes),
            (Algorithm::Dpml { leaders: 2, inner: FlatAlg::RecursiveDoubling }, bytes),
            (Algorithm::Rabenseifner, bytes / 2 + 1),
            (Algorithm::DpmlPipelined { leaders: 2, chunks: 2 }, bytes),
            (Algorithm::BinomialReduceBcast, bytes),
        ];
        let threads = THREADS[t_pick];
        let serial = checkpointed_sweep(&scenarios, chunk, storage_seed, torn_pm, flip_pm, Parallelism::Serial);
        let par = checkpointed_sweep(&scenarios, chunk, storage_seed, torn_pm, flip_pm, Parallelism::Intra(threads));
        prop_assert_eq!(
            &serial.0, &par.0,
            "final checkpoint diverged under intra({}) with storage seed {}", threads, storage_seed
        );
        prop_assert_eq!(
            &serial.1, &par.1,
            "storage-fault save log diverged under intra({})", threads
        );
        prop_assert_eq!(
            &serial.2, &par.2,
            "recovered checkpoint diverged under intra({})", threads
        );
    }
}
