//! Panic-free library surface: every `Algorithm` variant, over arbitrary
//! (nodes, ppn, leaders, chunks, bytes), either compiles a schedule or
//! returns a structured `BuildError` — it never panics. Likewise
//! `ClusterSpec::new` and `SimConfig::new` return typed errors for
//! degenerate shapes.

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::engine::SimConfig;
use dpml::fabric::presets::{all_presets, cluster_b};
use dpml::topology::{ClusterSpec, RankMap};
use proptest::prelude::*;

fn flat_of(ix: u8) -> FlatAlg {
    match ix % 3 {
        0 => FlatAlg::RecursiveDoubling,
        1 => FlatAlg::Rabenseifner,
        _ => FlatAlg::Ring,
    }
}

/// All algorithm variants for a generated parameter tuple, including
/// deliberately out-of-range leader/chunk counts.
fn variants(leaders: u32, chunks: u32, flat: u8) -> Vec<Algorithm> {
    vec![
        Algorithm::RecursiveDoubling,
        Algorithm::Rabenseifner,
        Algorithm::Ring,
        Algorithm::BinomialReduceBcast,
        Algorithm::SingleLeader {
            inner: flat_of(flat),
        },
        Algorithm::Dpml {
            leaders,
            inner: flat_of(flat),
        },
        Algorithm::DpmlPipelined { leaders, chunks },
        Algorithm::SharpNodeLeader,
        Algorithm::SharpSocketLeader,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_variant_builds_or_errors(
        nodes in 1u32..9,
        ppn in 1u32..17,
        leaders in 0u32..33,
        chunks in 0u32..9,
        flat in 0u8..3,
        bytes in 0u64..(1 << 21),
    ) {
        let spec = ClusterSpec::new(nodes, 2, 14, ppn);
        prop_assert!(spec.is_ok(), "ClusterSpec::new({nodes}, 2, 14, {ppn}): {spec:?}");
        let map = RankMap::block(&spec.unwrap());
        for alg in variants(leaders, chunks, flat) {
            // Must return Ok or a structured BuildError; any panic fails
            // the whole proptest case.
            let r = alg.build(&map, bytes);
            if let Ok(w) = &r {
                prop_assert_eq!(w.programs.len() as u64, u64::from(nodes) * u64::from(ppn));
            }
        }
    }

    #[test]
    fn degenerate_cluster_shapes_are_typed_errors(
        nodes in 0u32..3,
        sockets in 0u32..3,
        cores in 0u32..3,
        ppn in 0u32..9,
    ) {
        // Whatever the outcome, it must arrive as Result, not a panic.
        let r = ClusterSpec::new(nodes, sockets, cores, ppn);
        if nodes == 0 || sockets == 0 || cores == 0 || ppn == 0 || ppn > sockets * cores {
            prop_assert!(r.is_err(), "degenerate shape accepted: {r:?}");
        } else {
            prop_assert!(r.is_ok(), "valid shape rejected: {r:?}");
        }
    }

    #[test]
    fn sim_config_is_fallible_not_panicky(nodes in 1u32..17, ppn in 1u32..9) {
        let preset = cluster_b();
        let spec = ClusterSpec::new(nodes, 2, 14, ppn).unwrap();
        let cfg = SimConfig::new(RankMap::block(&spec), preset.fabric, preset.switch);
        prop_assert!(cfg.is_ok(), "SimConfig::new({nodes}x{ppn}): {:?}", cfg.err());
    }
}

#[test]
fn build_never_panics_on_preset_matrix() {
    // Deterministic sweep over all presets and the exact boundary shapes
    // the random sweep may miss (leaders == ppn, leaders == ppn + 1,
    // non-power-of-two worlds).
    for preset in all_presets() {
        for (nodes, ppn) in [(1u32, 1u32), (2, 1), (3, 2), (4, 4), (5, 3)] {
            let Ok(spec) = preset.spec(nodes, ppn) else {
                continue;
            };
            let map = RankMap::block(&spec);
            for leaders in [1, ppn, ppn + 1] {
                for bytes in [0u64, 1, 7, 4096] {
                    for alg in variants(leaders, 2, 0) {
                        let _ = alg.build(&map, bytes);
                    }
                }
            }
        }
    }
}
