//! The paper's headline qualitative claims, asserted against the simulator.
//! Each test names the paper section it reproduces; EXPERIMENTS.md records
//! the quantitative values.

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::run::run_allreduce;
use dpml::core::selector::Library;
use dpml::fabric::presets::{cluster_a, cluster_b, cluster_c, cluster_d};

fn dpml_l(l: u32) -> Algorithm {
    Algorithm::Dpml {
        leaders: l,
        inner: FlatAlg::RecursiveDoubling,
    }
}

/// Section 6.2: "with 512KB message size, Cluster B shows 4.9x lower
/// latency with 16 leaders compared to single leader per node."
#[test]
fn claim_leader_scaling_cluster_b_512kb() {
    let p = cluster_b();
    let spec = p.default_spec(16).unwrap();
    let t1 = run_allreduce(&p, &spec, dpml_l(1), 512 * 1024)
        .unwrap()
        .latency_us;
    let t16 = run_allreduce(&p, &spec, dpml_l(16), 512 * 1024)
        .unwrap()
        .latency_us;
    let speedup = t1 / t16;
    assert!(
        (3.0..12.0).contains(&speedup),
        "expected a paper-like (4.9x) speedup, got {speedup:.2}x"
    );
}

/// Section 6.2: "increasing the number of leaders for small messages does
/// not improve performance and sometimes causes slight degradation."
#[test]
fn claim_small_messages_do_not_want_many_leaders() {
    let p = cluster_b();
    let spec = p.default_spec(16).unwrap();
    let t1 = run_allreduce(&p, &spec, dpml_l(1), 64).unwrap().latency_us;
    let t16 = run_allreduce(&p, &spec, dpml_l(16), 64).unwrap().latency_us;
    assert!(t16 >= t1, "16 leaders should not win at 64B: {t16} vs {t1}");
}

/// Section 6.3 / Fig. 8: SHArP wins for small messages; the host-based
/// design overtakes it by 4KB (at moderate ppn); the socket-level leader
/// beats the node-level leader at full subscription.
#[test]
fn claim_sharp_crossover_and_socket_leader() {
    let p = cluster_a();
    let spec = p.spec(16, 4).unwrap();
    let host = |bytes| {
        run_allreduce(
            &p,
            &spec,
            Algorithm::SingleLeader {
                inner: FlatAlg::RecursiveDoubling,
            },
            bytes,
        )
        .unwrap()
        .latency_us
    };
    let sharp = |bytes| {
        run_allreduce(&p, &spec, Algorithm::SharpNodeLeader, bytes)
            .unwrap()
            .latency_us
    };
    assert!(sharp(64) < host(64), "SHArP must win small messages");
    assert!(sharp(4096) > host(4096), "host-based must win at 4KB");

    let full = p.spec(16, 28).unwrap();
    let node = run_allreduce(&p, &full, Algorithm::SharpNodeLeader, 256)
        .unwrap()
        .latency_us;
    let socket = run_allreduce(&p, &full, Algorithm::SharpSocketLeader, 256)
        .unwrap()
        .latency_us;
    assert!(
        socket < node,
        "socket-leader must beat node-leader at 28 ppn"
    );
}

/// Section 6.4 / Fig. 9: the tuned DPML dispatch beats both emulated
/// libraries for medium and large messages on every cluster.
#[test]
fn claim_dpml_beats_libraries_medium_large() {
    for preset in [cluster_b(), cluster_c(), cluster_d()] {
        let spec = preset.default_spec(8).unwrap();
        for bytes in [16 * 1024u64, 512 * 1024] {
            let dpml_alg = Library::DpmlTuned.choose(&preset, &spec, bytes);
            let dpml = run_allreduce(&preset, &spec, dpml_alg, bytes)
                .unwrap()
                .latency_us;
            for lib in [Library::Mvapich2, Library::IntelMpi] {
                let alg = lib.choose(&preset, &spec, bytes);
                let other = run_allreduce(&preset, &spec, alg, bytes)
                    .unwrap()
                    .latency_us;
                assert!(
                    dpml < other,
                    "cluster {} {}B: DPML {dpml:.1}us !< {} {other:.1}us",
                    preset.id,
                    bytes,
                    lib.name()
                );
            }
        }
    }
}

/// Abstract: "up to 3.5 times performance improvement for MPI_Allreduce".
#[test]
fn claim_overall_speedup_magnitude() {
    let p = cluster_b();
    let spec = p.default_spec(16).unwrap();
    let bytes = 512 * 1024u64;
    let mva = Library::Mvapich2.choose(&p, &spec, bytes);
    let base = run_allreduce(&p, &spec, mva, bytes).unwrap().latency_us;
    let tuned = Library::DpmlTuned.choose(&p, &spec, bytes);
    let ours = run_allreduce(&p, &spec, tuned, bytes).unwrap().latency_us;
    let speedup = base / ours;
    assert!(
        speedup > 2.0,
        "expected paper-magnitude (3.5x) win, got {speedup:.2}x"
    );
}

/// Section 4.2: DPML-Pipelined helps very large messages on Omni-Path but
/// is not expected to be beneficial on InfiniBand (Section 4.3).
#[test]
fn claim_pipelining_is_fabric_specific() {
    let big = 4 << 20;
    let c = cluster_c();
    let spec = c.default_spec(8).unwrap();
    let plain = run_allreduce(
        &c,
        &spec,
        Algorithm::DpmlPipelined {
            leaders: 16,
            chunks: 1,
        },
        big,
    )
    .unwrap()
    .latency_us;
    let piped = run_allreduce(
        &c,
        &spec,
        Algorithm::DpmlPipelined {
            leaders: 16,
            chunks: 8,
        },
        big,
    )
    .unwrap()
    .latency_us;
    assert!(
        piped < plain,
        "pipelining must help on Omni-Path: {piped} vs {plain}"
    );

    let b = cluster_b();
    let spec = b.default_spec(8).unwrap();
    let plain_ib = run_allreduce(
        &b,
        &spec,
        Algorithm::DpmlPipelined {
            leaders: 16,
            chunks: 1,
        },
        big,
    )
    .unwrap()
    .latency_us;
    let piped_ib = run_allreduce(
        &b,
        &spec,
        Algorithm::DpmlPipelined {
            leaders: 16,
            chunks: 8,
        },
        big,
    )
    .unwrap()
    .latency_us;
    let gain = plain_ib / piped_ib;
    assert!(
        gain < 1.5,
        "no large pipelining win expected on IB, got {gain:.2}x"
    );
}

/// Section 3: hierarchical designs beat flat recursive doubling at full
/// subscription for latency-bound sizes (lg h instead of lg p steps; no
/// intra-node bounce-buffer copies). Already by a few KB the single
/// leader's `ppn - 1` reduction passes erase the advantage — which is
/// DPML's whole motivation — so the claim is asserted at 512B.
#[test]
fn claim_hierarchy_beats_flat_at_full_subscription() {
    let p = cluster_b();
    let spec = p.default_spec(8).unwrap();
    let flat = run_allreduce(&p, &spec, Algorithm::RecursiveDoubling, 512)
        .unwrap()
        .latency_us;
    let hier = run_allreduce(
        &p,
        &spec,
        Algorithm::SingleLeader {
            inner: FlatAlg::RecursiveDoubling,
        },
        512,
    )
    .unwrap()
    .latency_us;
    assert!(hier < flat, "hierarchy {hier} !< flat {flat}");

    // And at 64KB the single-leader advantage is gone (ties or loses),
    // while DPML with 16 leaders still wins comfortably.
    let flat64 = run_allreduce(&p, &spec, Algorithm::RecursiveDoubling, 65536)
        .unwrap()
        .latency_us;
    let dpml64 = run_allreduce(
        &p,
        &spec,
        Algorithm::Dpml {
            leaders: 16,
            inner: FlatAlg::RecursiveDoubling,
        },
        65536,
    )
    .unwrap()
    .latency_us;
    assert!(
        dpml64 * 2.0 < flat64,
        "DPML {dpml64} should crush flat {flat64} at 64KB"
    );
}
