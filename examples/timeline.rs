//! Trace a DPML allreduce and export a Chrome-tracing timeline: see the
//! four phases of the paper's Figure 2 laid out across ranks.
//!
//! Run with: `cargo run --release --example timeline`
//! then load `results/dpml_timeline.json` in chrome://tracing or
//! ui.perfetto.dev. (`dpml profile` writes the same artifact plus a
//! critical-path attribution table.)

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::engine::{SimConfig, Simulator, SpanKind};
use dpml::fabric::presets::cluster_b;
use dpml::topology::RankMap;

fn main() {
    let preset = cluster_b();
    let spec = preset.spec(4, 8).expect("4 nodes x 8 ranks");
    let map = RankMap::block(&spec);
    let cfg = SimConfig::new(map.clone(), preset.fabric.clone(), preset.switch).expect("topology");
    let alg = Algorithm::Dpml {
        leaders: 4,
        inner: FlatAlg::RecursiveDoubling,
    };
    let world = alg.build(&map, 256 * 1024).expect("schedule");

    let rep = Simulator::new(&cfg)
        .with_trace()
        .run(&world)
        .expect("simulate");
    rep.verify_allreduce().expect("verified");
    let trace = rep.trace.as_ref().expect("trace enabled");

    println!(
        "{} on {} ranks: {:.1}us, {} spans, {} messages traced",
        alg.name(),
        spec.world_size(),
        rep.latency_us(),
        trace.spans.len(),
        trace.messages.len()
    );
    println!("\ntime by activity (all ranks):");
    for kind in [
        SpanKind::Copy,
        SpanKind::Reduce,
        SpanKind::SendInject,
        SpanKind::Wait,
        SpanKind::Barrier,
    ] {
        println!(
            "  {:<8} {:>10.1} us",
            kind.name(),
            trace.total_time(kind) * 1e6
        );
    }

    std::fs::create_dir_all("results").expect("results dir");
    let path = "results/dpml_timeline.json";
    std::fs::write(path, trace.to_chrome_json()).expect("write trace");
    println!("\nwrote {path} — open it in chrome://tracing or ui.perfetto.dev");
}
