//! The paper's central experiment in miniature: how the leader count `l`
//! shapes allreduce latency, simulated and analytic side by side.
//!
//! Run with: `cargo run --release --example leader_sweep`

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::run::run_allreduce;
use dpml::fabric::presets::cluster_b;
use dpml::model::{best_leader_count, CostParams};

fn main() {
    let preset = cluster_b();
    let spec = preset.default_spec(16).expect("cluster spec");
    println!(
        "leader sweep on {} ({} ranks)\n",
        preset.fabric.name,
        spec.world_size()
    );

    for bytes in [512u64, 16 * 1024, 512 * 1024] {
        println!("message size: {bytes} bytes");
        println!(
            "{:>8} {:>14} {:>14}",
            "leaders", "simulated (us)", "model Eq.7 (us)"
        );
        let mut best = (0u32, f64::INFINITY);
        for l in [1u32, 2, 4, 8, 16] {
            let sim = run_allreduce(
                &preset,
                &spec,
                Algorithm::Dpml {
                    leaders: l,
                    inner: FlatAlg::RecursiveDoubling,
                },
                bytes,
            )
            .expect("verified run")
            .latency_us;
            let model =
                CostParams::from_fabric(&preset.fabric, &spec, l, bytes, 1).t_allreduce() * 1e6;
            println!("{l:>8} {sim:>14.1} {model:>14.1}");
            if sim < best.1 {
                best = (l, sim);
            }
        }
        let cp = CostParams::from_fabric(&preset.fabric, &spec, 1, bytes, 1);
        println!(
            "  → simulated best: l={}, model (Section 5) predicts: l={}\n",
            best.0,
            best_leader_count(&cp)
        );
    }
}
