//! miniAMR's mesh-refinement step under three MPI libraries — the paper's
//! Fig. 11(b), on the Omni-Path cluster models.
//!
//! Run with: `cargo run --release --example miniamr_refine`

use dpml::core::selector::Library;
use dpml::fabric::presets::{cluster_c, cluster_d};
use dpml::workloads::app::run_app;
use dpml::workloads::MiniAmrConfig;

fn main() {
    let cfg = MiniAmrConfig {
        refinements: 10,
        ..Default::default()
    };
    for preset in [cluster_c(), cluster_d()] {
        let spec = preset.default_spec(16).expect("spec");
        let profile = cfg.profile(spec.world_size());
        println!(
            "{} — {} ranks, {} refinements, {}-byte refinement allreduces",
            preset.fabric.name,
            spec.world_size(),
            cfg.refinements,
            cfg.refinement_bytes(spec.world_size())
        );
        let mut base = 0.0;
        for lib in [Library::Mvapich2, Library::IntelMpi, Library::DpmlTuned] {
            let rep = run_app(&preset, &spec, &profile, &|bytes| {
                lib.choose(&preset, &spec, bytes)
            })
            .expect("app run");
            if lib == Library::Mvapich2 {
                base = rep.comm_us;
            }
            println!(
                "  {:<16} refinement comm {:>10.1}us   {:>5.2}x vs MVAPICH2",
                lib.name(),
                rep.comm_us,
                base / rep.comm_us
            );
        }
        println!();
    }
    println!(
        "Refinement allreduces grow with the global block count, landing in\n\
         DPML's medium/large sweet spot — the 20-60% application-level wins\n\
         of the paper's Section 6.6."
    );
}
