//! HPCG's DDOT kernel under the three designs of the paper's Fig. 11(a):
//! host-based, SHArP node-leader, SHArP socket-leader — on the SHArP-capable
//! Cluster A model.
//!
//! Run with: `cargo run --release --example hpcg_ddot`

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::fabric::presets::cluster_a;
use dpml::workloads::app::run_app;
use dpml::workloads::HpcgConfig;

fn main() {
    let preset = cluster_a();
    let cfg = HpcgConfig {
        iterations: 25,
        ..Default::default()
    };
    println!(
        "HPCG skeleton: {} CG iterations, 2 x 8-byte DDOT allreduces each,\n\
         {:.1}us of stencil compute per iteration\n",
        cfg.iterations,
        cfg.compute_per_iteration() * 1e6
    );

    let designs: [(&str, Algorithm); 3] = [
        (
            "host-based",
            Algorithm::SingleLeader {
                inner: FlatAlg::RecursiveDoubling,
            },
        ),
        ("SHArP node-leader", Algorithm::SharpNodeLeader),
        ("SHArP socket-leader", Algorithm::SharpSocketLeader),
    ];

    for nodes in [2u32, 8, 16] {
        let spec = preset.spec(nodes, 28).expect("spec");
        let profile = cfg.profile();
        println!(
            "{} processes ({} nodes x 28 ppn):",
            spec.world_size(),
            nodes
        );
        let mut host_comm = 0.0;
        for (name, alg) in designs {
            let rep = run_app(&preset, &spec, &profile, &|_| alg).expect("app run");
            if name == "host-based" {
                host_comm = rep.comm_us;
            }
            println!(
                "  {:<20} total {:>9.1}us  ddot/comm {:>8.1}us  improvement {:>5.1}%",
                name,
                rep.total_us,
                rep.comm_us,
                (host_comm - rep.comm_us) / host_comm * 100.0
            );
        }
        println!();
    }
    println!(
        "The DDOT payload is 8 bytes regardless of scale, so the SHArP win on\n\
         communication is constant while compute grows — the paper's shrinking\n\
         35% → 10% overall improvement (Section 6.5)."
    );
}
