//! Five-minute tour: simulate a DPML allreduce against the classic designs
//! on a modeled 16-node Xeon + Omni-Path cluster.
//!
//! Run with: `cargo run --release --example quickstart`

use dpml::core::algorithms::{Algorithm, FlatAlg};
use dpml::core::run::run_allreduce;
use dpml::fabric::presets::cluster_c;

fn main() {
    // A cluster model: 16 nodes x 2 sockets x 14 cores, Omni-Path fabric
    // (the paper's Cluster C hardware).
    let preset = cluster_c();
    let spec = preset.default_spec(16).expect("16 nodes of 28 ranks");
    println!(
        "cluster: {} — {} nodes x {} ppn = {} ranks\n",
        preset.fabric.name,
        spec.num_nodes,
        spec.ppn,
        spec.world_size()
    );

    let candidates = [
        Algorithm::RecursiveDoubling,
        Algorithm::Rabenseifner,
        Algorithm::SingleLeader {
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::Dpml {
            leaders: 4,
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::Dpml {
            leaders: 16,
            inner: FlatAlg::RecursiveDoubling,
        },
        Algorithm::DpmlPipelined {
            leaders: 16,
            chunks: 8,
        },
    ];

    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "algorithm", "4KB (us)", "64KB (us)", "1MB (us)"
    );
    for alg in candidates {
        print!("{:<22}", alg.name());
        for bytes in [4 * 1024u64, 64 * 1024, 1 << 20] {
            // Every run is verified: the simulator proves each rank ended
            // with every rank's contribution over the whole vector.
            let rep = run_allreduce(&preset, &spec, alg, bytes).expect("verified allreduce");
            print!(" {:>12.1}", rep.latency_us);
        }
        println!();
    }

    println!(
        "\nDPML parallelizes the intra-node reduction across leaders and the\n\
         inter-node transfer across concurrent flows — the win grows with\n\
         message size, exactly the trend of the paper's Figures 4-7."
    );
}
