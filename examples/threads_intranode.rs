//! DPML on real threads: run the intra-node multi-leader allreduce
//! (phases 1/2/4 of the paper's Figure 2) with genuine shared memory on
//! this machine, validate it against a serial reference, and time the
//! leader counts — then run the full four-phase algorithm on a virtual
//! thread cluster.
//!
//! Run with: `cargo run --release --example threads_intranode`

use dpml::shm::kernels::assert_close;
use dpml::shm::{IntraAlgo, NodeRuntime, ThreadCluster};
use std::time::Instant;

fn main() {
    // Use real core count when available; keep at least 4 rank-threads so
    // the multi-leader structure is exercised even on small machines
    // (oversubscribed threads are still a valid correctness demo — the
    // wall-clock leader trend only shows on a real multicore).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let ppn = cores.clamp(4, 8);
    let elems = 1 << 20; // 8 MB of f64 per rank
    let inputs: Vec<Vec<f64>> = (0..ppn)
        .map(|r| {
            (0..elems)
                .map(|i| ((r * 2654435761 + i) % 1000) as f64 / 8.0)
                .collect()
        })
        .collect();
    let rt = NodeRuntime::new(ppn);
    let reference = rt.serial(&inputs);

    println!(
        "intra-node allreduce on {ppn} threads, {} MB vector:",
        elems * 8 / (1 << 20)
    );
    let mut counts = vec![1usize, 2, 4, ppn];
    counts.dedup();
    for leaders in counts {
        let start = Instant::now();
        let results = rt.allreduce(&inputs, IntraAlgo::MultiLeader { leaders });
        let wall = start.elapsed();
        for r in &results {
            assert_close(r, &reference[0], 1e-9);
        }
        println!(
            "  leaders = {leaders:<2}  {:>8.2?}  (verified against serial sum)",
            wall
        );
    }

    // Full four-phase DPML across virtual "nodes" (thread groups talking
    // through channels for phase 3).
    let nodes = 4;
    let cluster = ThreadCluster::new(nodes, ppn.min(4));
    let small = 1 << 14;
    let cluster_inputs: Vec<Vec<f64>> = (0..cluster.world_size())
        .map(|r| (0..small).map(|i| (r * small + i) as f64).collect())
        .collect();
    let got = cluster.allreduce_dpml(&cluster_inputs, 2);
    let expect = cluster.serial(&cluster_inputs);
    for g in &got {
        assert_close(g, &expect, 1e-9);
    }
    println!(
        "\nfull DPML across {} virtual nodes x {} ranks: verified on {} elements/rank",
        nodes,
        cluster.world_size() / nodes,
        small
    );
}
